"""LogStructuredStore: mount/commit/compact, recycling, crash safety."""

import random

import pytest

from toy import RangePredicate, ToyMax, ToyPrioritized, make_toy_elements
from repro.core.theorem2 import ExpectedTopKIndex
from repro.durability.durable import DurableTopKIndex
from repro.durability.logstore import (
    LogStructuredStore,
    is_log_structured,
    open_store,
)
from repro.durability.store import DurableStore
from repro.em.model import Disk, EMContext
from repro.flash.disk import FlashDisk
from repro.flash.ftl import FlashConfig
from repro.resilience.errors import SimulatedCrash
from repro.resilience.faults import FaultPlan


def restore_fn(state):
    return ExpectedTopKIndex.restore(state, ToyPrioritized, ToyMax)


def build_fn(elements):
    return ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=0)


def top_k_of(elements, predicate, k):
    matching = [e for e in elements if predicate.matches(e.obj)]
    matching.sort(key=lambda e: -e.weight)
    return matching[:k]


def log_victim(device="flash", config=None, commit_interval=4):
    plan = FaultPlan(armed=False)
    if device == "flash":
        disk = FlashDisk(config=config or FlashConfig(
            pages_per_block=8, capacity_pages=320, overprovision=0.25,
        ))
    else:
        disk = Disk()
    ctx = EMContext(B=8, disk=disk, fault_plan=plan)
    store = LogStructuredStore(ctx=ctx, B=8)
    inner = ExpectedTopKIndex(
        make_toy_elements(30, seed=1), ToyPrioritized, ToyMax, seed=3
    )
    durable = DurableTopKIndex(inner, store=store, commit_interval=commit_interval)
    return durable, plan


def assert_matches_oracle(recovered, oracle_elements):
    assert set(recovered.recovery.elements) == set(oracle_elements)
    rng = random.Random(41)
    for _ in range(15):
        a, b = sorted((rng.uniform(-5, 2500), rng.uniform(-5, 2500)))
        k = rng.randint(1, 8)
        assert recovered.query(RangePredicate(a, b), k) == top_k_of(
            oracle_elements, RangePredicate(a, b), k
        )


class TestLayoutDetection:
    @pytest.mark.parametrize("device", ["plain", "flash"])
    def test_log_formatted_disks_are_detected(self, device):
        durable, _ = log_victim(device=device)
        assert is_log_structured(durable.store.disk)
        mounted = open_store(durable.store.disk, B=8)
        assert isinstance(mounted, LogStructuredStore)

    def test_plain_formatted_disks_mount_as_plain(self):
        store = DurableStore(ctx=EMContext(B=8), B=8)
        store.commit_superblock()
        assert not is_log_structured(store.disk)
        mounted = open_store(store.disk, B=8)
        assert isinstance(mounted, DurableStore)
        assert not isinstance(mounted, LogStructuredStore)


class TestRootPublication:
    @pytest.mark.parametrize("device", ["plain", "flash"])
    def test_checkpointed_state_survives_a_remount(self, device):
        durable, _ = log_victim(device=device)
        extras = make_toy_elements(24, seed=2, weight_offset=0.5)
        for element in extras:
            durable.insert(element)
        durable.checkpoint()
        recovered = DurableTopKIndex.recover(
            durable.store.disk, restore_fn, build_fn, B=8
        )
        assert isinstance(recovered.store, LogStructuredStore)
        assert_matches_oracle(
            recovered, make_toy_elements(30, seed=1) + extras
        )

    def test_anchors_are_cold_under_checkpoints(self):
        # The whole point of the layout: commits append to the manifest
        # and never touch blocks 0/1 — only compaction flips an anchor.
        durable, _ = log_victim()
        store = durable.store
        anchors_before = [
            list(store.disk.raw_read(bid)) for bid in (0, 1)
        ]
        for element in make_toy_elements(16, seed=2, weight_offset=0.5):
            durable.insert(element)
            durable.checkpoint()
        assert [
            list(store.disk.raw_read(bid)) for bid in (0, 1)
        ] == anchors_before
        seq_before = store.anchor_seq
        durable.compact_store()
        assert store.anchor_seq == seq_before + 1

    def test_commit_promotes_limbo_to_free(self):
        durable, _ = log_victim()
        store = durable.store
        for element in make_toy_elements(12, seed=2, weight_offset=0.5):
            durable.insert(element)
        durable.checkpoint()  # first extra snapshot: nothing expires yet
        free_before = store.free_blocks
        durable.checkpoint()  # now a snapshot + old WAL chain retire
        assert store.limbo_blocks == 0, "commit left blocks stuck in limbo"
        assert store.free_blocks > free_before

    def test_allocate_wipes_recycled_blocks(self):
        durable, _ = log_victim()
        store = durable.store
        for element in make_toy_elements(12, seed=2, weight_offset=0.5):
            durable.insert(element)
        durable.checkpoint()
        durable.checkpoint()
        assert store.free_blocks > 0
        block_id = store._free[0]
        store.allocate()
        # Wipe-on-reuse: the stale sealed chain contents are gone before
        # the id re-enters service — recovery can never splice the
        # retired chain into a live one.
        assert list(store.disk.raw_read(block_id)) == []

    def test_fingerprints_report_healthy_seals(self):
        durable, _ = log_victim()
        for element in make_toy_elements(12, seed=2, weight_offset=0.5):
            durable.insert(element)
        durable.checkpoint()
        prints = durable.store.fingerprints()
        assert prints, "no blocks fingerprinted"
        assert all(seal_ok for _, seal_ok in prints.values())


class TestCompaction:
    @pytest.mark.parametrize("device", ["plain", "flash"])
    def test_compact_trims_dead_blocks_and_preserves_state(self, device):
        durable, _ = log_victim(device=device)
        extras = make_toy_elements(30, seed=2, weight_offset=0.5)
        for i, element in enumerate(extras):
            durable.insert(element)
            if i % 10 == 9:
                durable.checkpoint()
        trimmed = durable.compact_store()
        assert trimmed > 0
        assert durable.store.compactions == 1
        recovered = DurableTopKIndex.recover(
            durable.store.disk, restore_fn, build_fn, B=8
        )
        assert recovered.recovery.audit.ok
        assert_matches_oracle(
            recovered, make_toy_elements(30, seed=1) + extras
        )

    def test_compaction_bounds_manifest_growth(self):
        durable, _ = log_victim()
        store = durable.store
        for element in make_toy_elements(20, seed=2, weight_offset=0.5):
            durable.insert(element)
            durable.checkpoint()
        long_chain = len(store._chain_blocks(store._mani_head))
        assert long_chain > 2  # one manifest block per commit piled up
        durable.compact_store()
        # compact_store checkpoints first (one more root), then folds.
        assert len(store._chain_blocks(store._mani_head)) <= 2

    def test_compaction_trims_reach_the_ftl(self):
        durable, _ = log_victim(device="flash")
        disk = durable.store.disk
        for i, element in enumerate(
            make_toy_elements(30, seed=2, weight_offset=0.5)
        ):
            durable.insert(element)
            if i % 10 == 9:
                durable.checkpoint()
        trims_before = disk.ftl.stats.trims
        valid_before = disk.ftl.valid_pages
        trimmed = durable.compact_store()
        assert disk.ftl.stats.trims >= trims_before + trimmed
        assert disk.ftl.valid_pages < valid_before


class TestCrashSafety:
    @pytest.mark.parametrize("at_io", [1, 3, 7, 12, 20])
    def test_crash_mid_compaction_recovers_exactly(self, at_io):
        durable, plan = log_victim()
        extras = make_toy_elements(24, seed=2, weight_offset=0.5)
        for i, element in enumerate(extras):
            durable.insert(element)
            if i % 8 == 7:
                durable.checkpoint()
        plan.schedule_crash(at_io=at_io, torn_fraction=0.5)
        try:
            durable.compact_store()
        except SimulatedCrash:
            pass
        else:
            pytest.skip(f"compaction finished before transfer {at_io}")
        recovered = DurableTopKIndex.recover(
            durable.store.disk, restore_fn, build_fn, B=8
        )
        assert recovered.recovery.audit.ok
        assert not recovered.recovery.rebuilt
        assert_matches_oracle(
            recovered, make_toy_elements(30, seed=1) + extras
        )

    @pytest.mark.parametrize("after_copies", [0, 1, 3, 6])
    def test_crash_mid_gc_recovers_exactly(self, after_copies):
        config = FlashConfig(
            pages_per_block=4, capacity_pages=48, overprovision=0.1,
        )
        durable, _ = log_victim(config=config, commit_interval=4)
        disk = durable.store.disk
        extras = make_toy_elements(32, seed=2, weight_offset=0.5)
        applied = 0
        disk.ftl.schedule_gc_crash(after_copies)
        try:
            for i, element in enumerate(extras):
                durable.insert(element)
                applied += 1
                if i % 8 == 7:
                    durable.checkpoint()
        except SimulatedCrash as crash:
            assert "garbage collection" in str(crash)
        else:
            pytest.skip("workload never entered garbage collection")
        recovered = DurableTopKIndex.recover(
            durable.store.disk, restore_fn, build_fn, B=8
        )
        assert recovered.recovery.audit.ok
        n_extra = recovered.n - 30
        assert 0 <= n_extra <= applied
        assert n_extra % 4 == 0, "partial commit group resurrected"
        assert_matches_oracle(
            recovered, make_toy_elements(30, seed=1) + extras[:n_extra]
        )
