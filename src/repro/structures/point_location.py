"""Planar point location by persistence (Sarnak–Tarjan [31]).

The query the paper's Section 5.4 max structure needs is *vertical ray
shooting*: among a set of interior-disjoint x-monotone segments, find
the first segment straight above a query point.  The classic solution
sweeps a vertical line left to right, maintaining the segments that
cross it ordered bottom-to-top in a **persistent** balanced BST
(:mod:`repro.structures.persistent`); each slab between consecutive
endpoints gets a version, and a query binary-searches its slab then
searches that version — ``O(log n)`` time, ``O(n log n)`` space from
path copying (Sarnak–Tarjan shave the log with limited-node-copying;
the query bound is identical).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.interfaces import OpCounter
from repro.structures.persistent import PersistentTreap


@dataclass(frozen=True)
class PLSegment:
    """An x-monotone (here: straight) segment with a payload.

    Segments handed to :class:`SlabPointLocation` must be interior
    disjoint: they may share endpoints but never properly cross, so
    comparing two overlapping segments at an interior point of their
    common x-range yields a consistent vertical order.
    """

    x1: float
    y1: float
    x2: float
    y2: float
    payload: Any = field(default=None, compare=False)
    # Optional exact evaluator (an object with ``.at(x)``, e.g. the
    # supporting Line2D).  Endpoint interpolation loses precision when a
    # conceptually unbounded segment was clipped at huge abscissae; the
    # support evaluates heights exactly.
    support: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.x1 >= self.x2:
            raise ValueError(f"segment must have x1 < x2: {self.x1} >= {self.x2}")

    def y_at(self, x: float) -> float:
        """Height of the segment at abscissa ``x`` (clamped inside)."""
        x = min(max(x, self.x1), self.x2)
        if self.support is not None:
            return self.support.at(x)
        t = (x - self.x1) / (self.x2 - self.x1)
        return self.y1 + t * (self.y2 - self.y1)

    @property
    def slope(self) -> float:
        return (self.y2 - self.y1) / (self.x2 - self.x1)


def _vertical_order(a: PLSegment, b: PLSegment) -> int:
    """Bottom-to-top order of two non-crossing overlapping segments.

    Compared at the midpoint of the common x-range; ties (segments
    touching along their shared endpoint) break by slope and then by
    coordinates so the order is a strict total order.
    """
    if a is b or a == b:
        return 0
    lo = max(a.x1, b.x1)
    hi = min(a.x2, b.x2)
    x = (lo + hi) / 2.0
    ya, yb = a.y_at(x), b.y_at(x)
    if ya < yb:
        return -1
    if ya > yb:
        return 1
    if a.slope != b.slope:
        return -1 if a.slope < b.slope else 1
    key_a = (a.x1, a.y1, a.x2, a.y2)
    key_b = (b.x1, b.y1, b.x2, b.y2)
    return -1 if key_a < key_b else 1


class SlabPointLocation:
    """Vertical ray shooting over interior-disjoint segments.

    ``shoot_up(x, y)`` returns the lowest segment whose height at ``x``
    is ``>= y`` among segments whose x-range contains ``x`` (``None``
    when the ray escapes).  Preprocessing sweeps the endpoints once,
    taking a persistent-tree version per slab.
    """

    def __init__(self, segments: Sequence[PLSegment]) -> None:
        self.ops = OpCounter()
        self._n = len(segments)
        events: List[Tuple[float, int, PLSegment]] = []
        for segment in segments:
            events.append((segment.x1, 1, segment))  # open
            events.append((segment.x2, 0, segment))  # close (before opens at same x)
        events.sort(key=lambda ev: (ev[0], ev[1]))
        self._slab_starts: List[float] = []
        self._versions: List[PersistentTreap] = []
        tree = PersistentTreap(_vertical_order)
        index = 0
        while index < len(events):
            x = events[index][0]
            while index < len(events) and events[index][0] == x:
                _, kind, segment = events[index]
                if kind == 0:
                    tree = tree.delete(segment)
                else:
                    tree = tree.insert(segment)
                index += 1
            self._slab_starts.append(x)
            self._versions.append(tree)

    @property
    def n(self) -> int:
        return self._n

    def shoot_up(self, x: float, y: float) -> Optional[PLSegment]:
        """The first segment hit by the upward ray from ``(x, y)``."""
        slab = bisect.bisect_right(self._slab_starts, x) - 1
        self.ops.node_visits += max(1, len(self._slab_starts)).bit_length()  # the bisect
        if slab < 0:
            return None
        version = self._versions[slab]

        def goes_right(segment: PLSegment) -> bool:
            self.ops.scanned += 1  # one tree comparison
            return segment.y_at(x) < y

        return version.first_satisfying(goes_right)

    def shoot_up_candidates(self, x: float, y: float) -> List[PLSegment]:
        """All segments achieving the *minimal* height ``>= y`` at ``x``.

        Handles the degenerate cases exactly:

        * ``x`` on a slab boundary — segments ending there live in the
          previous version, segments starting there in the current one;
          both still contain ``x`` (segments are closed), so both
          versions are consulted;
        * several segments through one subdivision vertex — all
          equal-minimal-height segments are returned so the caller can
          apply its own tie rule (the envelope-onion consumer picks the
          heaviest, which is the correct region at a vertex).
        """
        slab = bisect.bisect_right(self._slab_starts, x) - 1
        self.ops.node_visits += max(1, len(self._slab_starts)).bit_length()
        versions: List[PersistentTreap] = []
        if slab >= 0:
            versions.append(self._versions[slab])
        if slab >= 1 and self._slab_starts[slab] == x:
            versions.append(self._versions[slab - 1])
        best_height: Optional[float] = None
        candidates: List[PLSegment] = []
        seen = set()
        for version in versions:

            def goes_right(segment: PLSegment) -> bool:
                self.ops.scanned += 1
                return segment.y_at(x) < y

            for segment in version.iter_from(goes_right):
                height = segment.y_at(x)
                if best_height is not None and height > best_height:
                    break
                if best_height is None or height < best_height:
                    best_height = height
                    candidates = []
                    seen = set()
                key = (segment.x1, segment.y1, segment.x2, segment.y2)
                if key not in seen:
                    seen.add(key)
                    candidates.append(segment)
        return candidates

    def segments_crossing(self, x: float) -> List[PLSegment]:
        """All segments whose slab at ``x`` contains them (diagnostics)."""
        slab = bisect.bisect_right(self._slab_starts, x) - 1
        if slab < 0:
            return []
        return list(self._versions[slab].items())

    def space_units(self) -> int:
        """Versions x path-copied nodes: ``O(n log n)`` words."""
        import math

        return max(1, self._n) * max(1, int(math.log2(max(2, self._n)))) * 2
