"""Mitigation planning: existing levers only, state-aware escalation.

The planner owns **no new repair machinery** — every lever is a public
method PRs 2–5 already shipped (plus the thin operator plumbing this PR
added around them):

=================  ====================================================
``force_failover``  :meth:`ReplicaSet.force_failover` — move traffic
                    off a degraded-but-alive primary.
``reboot_replica``  :meth:`ReplicaSet.recover_replica` — power-cycle a
                    machine onto a fresh context over its own disk
                    (snapshot + WAL tail); adoption attaches a fresh,
                    disarmed fault plan, so this is the lever that
                    actually clears a machine whose environment keeps
                    injecting faults.
``scrub``           :meth:`ReplicaSet.scrub(repair=True)` — anti-
                    entropy digest comparison + resync; also the lag
                    lever, since it aligns every live replica first.
``recover_shard``   :meth:`ShardedTopKIndex.recover_shard` — proactive
                    reboot of a dead shard, off the query path.
``rebalance``       :meth:`ShardedTopKIndex.rebalance` — move buckets
                    off a hot shard.
``flush_cache``     :meth:`ServingEngine.flush_cache` — drop cached
                    answers on staleness suspicion.
``split_shard``     :meth:`ShardedTopKIndex.split_shard` — scale *out*:
                    one more shard means one more parallel server, the
                    overload lever (targets the largest still-splittable
                    shard at fire time).
``recover_replica`` :meth:`ReplicaSet.recover_replica` on the first
                    dead replica — restore lost serving fan-out.
``heal_partition``  :meth:`NetworkFabric.heal` — clear every scheduled
                    partition window (reconnect the topology; loss and
                    reorder rates stay, they are hardware).
``compact_store``   :meth:`DurableTopKIndex.compact_store` — checkpoint,
                    then fold the log-structured store's dead segments
                    and TRIM them back to the flash device; the
                    write-amplification / wear lever.
=================  ====================================================

Planning is **state-aware**: the same blamed machine gets
``force_failover`` while it is an alive primary, ``scrub`` first when
the dominant symptom is corruption, and ``reboot_replica`` once it is
dead (or once gentler rungs failed to quiet the symptoms).  Because the
ladder is rebuilt from *live* state on every escalation (a failover
turns the blamed primary into a follower, a reboot revives a dead
machine), the planner walks it by skipping levers this incident already
pulled rather than indexing by rung; when nothing unattempted remains
it returns ``None`` and the operator marks the incident exhausted
rather than thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.ops.detector import (
    SCOPE_MACHINE,
    SCOPE_REPLICA,
    SCOPE_SHARD,
    SCOPE_SUBSYSTEM,
)
from repro.ops.incidents import Incident

LEVER_FAILOVER = "force_failover"
LEVER_REBOOT = "reboot_replica"
LEVER_SCRUB = "scrub"
LEVER_RECOVER_SHARD = "recover_shard"
LEVER_REBALANCE = "rebalance"
LEVER_FLUSH_CACHE = "flush_cache"
LEVER_SPLIT_SHARD = "split_shard"
LEVER_RECOVER_REPLICA = "recover_replica"
LEVER_HEAL = "heal_partition"
LEVER_COMPACT = "compact_store"

_CORRUPTION_KINDS = ("corruption_drip",)
_LAG_KINDS = ("lag_growth",)
# Network-scope symptoms: first reconnect the topology; if the rejects
# persist after a heal, a deposed-but-talking primary needs deposing
# *again* via a forced failover (which re-announces the epoch).
_PARTITION_KINDS = ("ack_timeout_spike", "epoch_reject_spike")
# Subsystem symptoms whose root cause is capacity, not state: the
# remedy is scale-out, and flushing the cache would make them *worse*.
_OVERLOAD_KINDS = (
    "slo_breach",
    "queue_growth",
    "shed_rate_spike",
    "shed_spike",
    "queue_depth",
    "latency_regression",
)
# Storage-scope symptoms from a flash-backed durable store: the store's
# layout (dead segments, concentrated erase load), not its machine, is
# sick — the remedy is a compaction, never a reboot or cache flush.
_FLASH_KINDS = ("write_amp_spike", "wear_imbalance")


@dataclass
class PlannedAction:
    """One lever, bound to its target, ready to fire."""

    lever: str
    target: str
    apply: Callable[[], str]  # returns a short outcome description


class MitigationPlanner:
    """Blame + live state -> the next lever on the escalation ladder."""

    def __init__(
        self, cluster=None, sharded=None, engine=None, fabric=None,
        stores=None,
    ) -> None:
        self.cluster = cluster
        self.sharded = sharded
        self.engine = engine
        if fabric is None and cluster is not None:
            fabric = getattr(cluster, "fabric", None)
        self.fabric = fabric
        #: Mapping ``label -> DurableTopKIndex`` (anything exposing
        #: ``compact_store()``); ``"storage"`` matches the scope the
        #: flash detector rules blame.
        self.stores = dict(stores) if stores else {}

    # ------------------------------------------------------------------
    # Ladder construction
    # ------------------------------------------------------------------
    def _machine_ladder(self, incident: Incident, replica) -> List[str]:
        kinds = {a.kind for a in incident.anomalies}
        corruption = bool(kinds.intersection(_CORRUPTION_KINDS))
        if replica is None:
            return []
        if not replica.alive:
            # A dead machine has exactly one way back: reboot from its
            # disk.  Scrub afterwards if symptoms somehow persist.
            return [LEVER_REBOOT, LEVER_SCRUB]
        if corruption:
            # In-flight corruption first gets the cheap integrity pass;
            # if the drip continues, the machine itself is sick — reboot
            # replaces its (inherited!) fault environment wholesale.
            return [LEVER_SCRUB, LEVER_REBOOT]
        if replica.is_primary:
            return [LEVER_FAILOVER, LEVER_REBOOT, LEVER_SCRUB]
        return [LEVER_REBOOT, LEVER_SCRUB]

    def _shard_ladder(self, incident: Incident, shard) -> List[str]:
        if shard is None:
            return []
        if not shard.alive:
            return [LEVER_RECOVER_SHARD]
        kinds = {a.kind for a in incident.anomalies}
        if "hot_shard" in kinds:
            return [LEVER_REBALANCE]
        return [LEVER_RECOVER_SHARD]

    def _subsystem_ladder(self, incident: Incident) -> List[str]:
        kinds = {a.kind for a in incident.anomalies}
        if kinds.intersection(_FLASH_KINDS):
            return [LEVER_COMPACT] if self.stores else []
        if kinds.intersection(_PARTITION_KINDS):
            ladder = []
            if self.fabric is not None:
                ladder.append(LEVER_HEAL)
            if self.cluster is not None:
                ladder.append(LEVER_FAILOVER)
            return ladder
        if kinds.intersection(_OVERLOAD_KINDS):
            # Overload is a capacity problem: scale out (each split adds
            # one parallel server), even the load across what exists,
            # recover lost fan-out.  The cache lever stays OFF this
            # ladder — under overload the cache *is* the capacity, and
            # flushing it turns a brownout into a blackout.
            ladder: List[str] = []
            if (
                self.sharded is not None
                and self.sharded.splittable_shard() is not None
            ):
                ladder.append(LEVER_SPLIT_SHARD)
            if self.sharded is not None:
                ladder.append(LEVER_REBALANCE)
            if self.cluster is not None and any(
                not r.alive for r in self.cluster.replicas
            ):
                ladder.append(LEVER_RECOVER_REPLICA)
            return ladder
        if self.engine is None:
            return []
        return [LEVER_FLUSH_CACHE]

    # ------------------------------------------------------------------
    def plan(self, incident: Incident) -> Optional[PlannedAction]:
        """The next unattempted lever on the live ladder, or ``None``."""
        scope_type, scope_id = incident.scope
        if scope_type in (SCOPE_MACHINE, SCOPE_REPLICA):
            replica = self._find_replica(scope_id)
            ladder = self._machine_ladder(incident, replica)
            if scope_type == SCOPE_REPLICA and set(
                a.kind for a in incident.anomalies
            ) <= set(_LAG_KINDS):
                # Pure lag on a live replica: align/resync is the fix.
                ladder = [LEVER_SCRUB, LEVER_REBOOT]
        elif scope_type == SCOPE_SHARD:
            shard = (
                self.sharded.router.shards.get(scope_id)
                if self.sharded is not None
                else None
            )
            ladder = self._shard_ladder(incident, shard)
        elif scope_type == SCOPE_SUBSYSTEM:
            ladder = self._subsystem_ladder(incident)
        else:
            ladder = []
        attempted = {
            m.lever for m in incident.mitigations if m.lever != "(deferred)"
        }
        # split_shard is the one repeatable rung: every pull targets a
        # *fresh* donor (the currently-largest splittable shard), so its
        # mere presence on the live ladder — which already requires a
        # splittable shard to remain — means another pull adds capacity.
        remaining = [
            lever
            for lever in ladder
            if lever not in attempted or lever == LEVER_SPLIT_SHARD
        ]
        if not remaining:
            return None
        return self._bind(remaining[0], scope_id)

    def _find_replica(self, name: str):
        if self.cluster is None:
            return None
        return next(
            (r for r in self.cluster.replicas if r.name == name), None
        )

    # ------------------------------------------------------------------
    # Lever bindings
    # ------------------------------------------------------------------
    def _bind(self, lever: str, target: str) -> PlannedAction:
        if lever == LEVER_FAILOVER:
            def apply() -> str:
                successor = self.cluster.force_failover()
                return f"primary moved to {successor.name}"
        elif lever == LEVER_REBOOT:
            def apply() -> str:
                reborn = self.cluster.recover_replica(target)
                return f"{reborn.name} rebooted from disk, lag 0"
        elif lever == LEVER_SCRUB:
            def apply() -> str:
                report = self.cluster.scrub(repair=True)
                return (
                    f"scrubbed: {len(report.repaired)} repaired, "
                    f"{len(report.divergent)} divergent"
                )
        elif lever == LEVER_RECOVER_SHARD:
            def apply() -> str:
                rebooted = self.sharded.recover_shard(target)
                return "shard rebooted" if rebooted else "shard already healthy"
        elif lever == LEVER_REBALANCE:
            def apply() -> str:
                moves = self.sharded.rebalance()
                return f"{len(moves)} rebalance actions"
        elif lever == LEVER_FLUSH_CACHE:
            def apply() -> str:
                dropped = self.engine.flush_cache()
                return f"{dropped} cached answers dropped"
        elif lever == LEVER_SPLIT_SHARD:
            def apply() -> str:
                name = self.sharded.splittable_shard()
                if name is None:
                    return "no splittable shard remains"
                donor, newborn = self.sharded.split_shard(name)
                return f"split {donor} -> {newborn} (+1 server)"
        elif lever == LEVER_HEAL:
            def apply() -> str:
                healed = self.fabric.heal()
                self.fabric.flush_all_holdback()
                return f"{healed} links reconnected"
        elif lever == LEVER_COMPACT:
            def apply() -> str:
                store = self.stores.get(target)
                if store is None:
                    store = self.stores[sorted(self.stores)[0]]
                trimmed = store.compact_store()
                return f"store compacted, {trimmed} dead blocks trimmed"
        elif lever == LEVER_RECOVER_REPLICA:
            def apply() -> str:
                dead = next(
                    (r for r in self.cluster.replicas if not r.alive), None
                )
                if dead is None:
                    return "no dead replica to recover"
                reborn = self.cluster.recover_replica(dead.name)
                return f"{reborn.name} recovered, fan-out restored"
        else:  # pragma: no cover - planner only emits known levers
            raise ValueError(f"unknown lever {lever!r}")
        return PlannedAction(lever=lever, target=target, apply=apply)


__all__ = [
    "MitigationPlanner",
    "PlannedAction",
    "LEVER_FAILOVER",
    "LEVER_REBOOT",
    "LEVER_SCRUB",
    "LEVER_RECOVER_SHARD",
    "LEVER_REBALANCE",
    "LEVER_FLUSH_CACHE",
    "LEVER_SPLIT_SHARD",
    "LEVER_RECOVER_REPLICA",
    "LEVER_HEAL",
    "LEVER_COMPACT",
]
