"""E18 — Serving throughput: batching, LSN-stamped caching, dispatch.

Two throughput claims about :class:`repro.serving.engine.ServingEngine`
over a 3-replica :class:`~repro.replication.cluster.ReplicaSet`, both
measured against the serial baseline (one ``cluster.query`` per
request, primary reads — the PR-3 serving story).  The serial baseline
is pinned to the legacy Element path (``columnar_disabled``) so it
stays comparable across releases; the columnar-vs-legacy delta on an
otherwise identical stack is E23's job
(``benchmarks/bench_e23_columnar_hotpath.py``):

1. **Skewed traffic with a warm cache is >= 3x faster.**  A Zipf
   workload repeats hot predicates; after the first batch stamps the
   cache, repeats cost one dict probe instead of a reduction
   traversal.
2. **Uniform traffic is >= 1.5x faster with the cache OFF.**  The win
   is attributable to batched execution alone (grouped predicates pay
   one traversal at the group's max k) plus parallel dispatch; no
   request is ever served from cache.

Exactness is not negotiable: every answer of every mode is compared to
the brute-force oracle (``top_k_of``), and the engine runs at
``max_staleness=0`` — answers are exactly as fresh as the primary.

Results also land as JSON in
``benchmarks/results/e18_serving.json`` (the CI serving-throughput job
uploads it as an artifact).

Set ``REPRO_BENCH_QUICK=1`` to run a reduced workload (CI smoke mode).
"""

import json
import os
import random
import time
from pathlib import Path

from repro.bench.tables import render_table
from repro.core.columnar import columnar_disabled
from repro.core.problem import Element, top_k_of
from repro.replication import replicated_index
from repro.serving import ServingEngine
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
N = 300 if QUICK else 1000
REQUESTS = 384 if QUICK else 1536
BATCH = 128
POOL = 24 if QUICK else 48      # distinct predicates in the workload
MAX_K = 12
ROUNDS = 2 if QUICK else 3      # timing repeats; best round wins
RESULTS_JSON = Path(__file__).resolve().parent / "results" / "e18_serving.json"

SPAN = 50 * (N + 10)


def point_elements(n):
    rng = random.Random(99)
    coords = rng.sample(range(SPAN), n)
    return [Element(float(coords[i]), float(i) + 0.25) for i in range(n)]


def make_cluster(elements):
    return replicated_index(
        elements, DynamicRangeTreap, DynamicRangeTreap,
        num_replicas=3, seed=5, B=16,
    )


def predicate_pool(count, seed):
    rng = random.Random(seed)
    pool = []
    for _ in range(count):
        a, b = sorted(rng.sample(range(SPAN), 2))
        pool.append(RangePredicate1D(float(a), float(b)))
    return pool


def skewed_requests(pool, count, seed):
    """Zipf-ish predicate choice: rank r drawn with weight 1/(r+1)."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(len(pool))]
    predicates = rng.choices(pool, weights=weights, k=count)
    return [(p, rng.randint(1, MAX_K)) for p in predicates]


def uniform_requests(pool, count, seed):
    rng = random.Random(seed)
    return [(rng.choice(pool), rng.randint(1, MAX_K)) for _ in range(count)]


def _serial_answers(cluster, requests):
    return [cluster.query(p, k, mode="primary") for p, k in requests]


def _engine_answers(engine, requests):
    answers = []
    for start in range(0, len(requests), BATCH):
        answers.extend(engine.serve(requests[start:start + BATCH]))
    return answers


def _best_time(fn, rounds=ROUNDS):
    """Best-of-N wall time — the jitter-resistant point estimate."""
    best, result = float("inf"), None
    for _ in range(rounds):
        began = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - began)
    return best, result


def _measure(workload_name, requests, elements, cache_capacity, floor):
    cluster = make_cluster(elements)
    cluster.align()
    oracle = [top_k_of(elements, p, k) for p, k in requests]

    # The serial baseline is a legacy-path cluster (columnar disabled at
    # build, so its reductions run Element-at-a-time rounds): a fixed
    # reference across releases.  E23 measures columnar vs legacy.
    with columnar_disabled():
        legacy = make_cluster(elements)
        legacy.align()
    serial_seconds, serial = _best_time(
        lambda: _serial_answers(legacy, requests)
    )
    assert serial == oracle, f"{workload_name}: serial baseline inexact"

    engine = ServingEngine(
        cluster,
        cache_capacity=cache_capacity,
        max_staleness=0,
        max_batch=BATCH,
        parallel_threshold=4,
        read_kwargs={"mode": "primary"},
    )
    with engine:
        if cache_capacity:
            _engine_answers(engine, requests)  # warm the cache
        engine_seconds, served = _best_time(
            lambda: _engine_answers(engine, requests)
        )
        stats, cache = engine.stats, engine.cache.stats
    assert served == oracle, f"{workload_name}: engine served inexact answers"

    speedup = serial_seconds / engine_seconds if engine_seconds > 0 else float("inf")
    assert speedup >= floor, (
        f"{workload_name}: speedup {speedup:.2f}x below the {floor}x floor "
        f"(serial {serial_seconds * 1e3:.1f}ms, engine {engine_seconds * 1e3:.1f}ms)"
    )
    return {
        "requests": len(requests),
        "distinct_predicates": len({id(p) for p, _ in requests}),
        "serial_ms": round(serial_seconds * 1e3, 2),
        "engine_ms": round(engine_seconds * 1e3, 2),
        "speedup": round(speedup, 2),
        "floor": floor,
        "traversals": stats.traversals,
        "shared_answers": stats.shared_answers,
        "cache_hit_rate": round(cache.hit_rate, 3),
        "parallel_batches": stats.parallel_batches,
        "qps": round(stats.qps),
        "exact_fraction": 1.0,
    }


def bench_e18_serving_throughput(benchmark, results_sink):
    elements = point_elements(N)
    pool = predicate_pool(POOL, seed=21)

    skewed = _measure(
        "skewed/warm-cache",
        skewed_requests(pool, REQUESTS, seed=31),
        elements,
        cache_capacity=1024,
        floor=3.0,
    )
    uniform = _measure(
        "uniform/no-cache",
        uniform_requests(pool, REQUESTS, seed=37),
        elements,
        cache_capacity=0,
        floor=1.5,
    )

    results_sink(
        render_table(
            f"E18 Serving throughput vs serial baseline "
            f"(n={N}, {REQUESTS} requests, batch={BATCH})",
            ["workload", "serial ms", "engine ms", "speedup",
             "traversals", "hit rate", "exact"],
            [
                ["skewed (cache warm)", skewed["serial_ms"],
                 skewed["engine_ms"], f"{skewed['speedup']}x",
                 skewed["traversals"], skewed["cache_hit_rate"], "100%"],
                ["uniform (cache off)", uniform["serial_ms"],
                 uniform["engine_ms"], f"{uniform['speedup']}x",
                 uniform["traversals"], "-", "100%"],
            ],
            note="floors: 3x skewed / 1.5x uniform; every answer equals "
            "the brute-force oracle at max_staleness=0",
        )
    )

    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(
        json.dumps(
            {"quick": QUICK, "n": N, "batch": BATCH,
             "e18a_skewed_warm_cache": skewed,
             "e18b_uniform_batching": uniform},
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Timing hook: one warm skewed batch through the full engine.
    cluster = make_cluster(elements)
    cluster.align()
    requests = skewed_requests(pool, BATCH, seed=41)
    engine = ServingEngine(
        cluster, max_batch=BATCH, read_kwargs={"mode": "primary"}
    )
    engine.serve(requests)

    def run_warm_batch():
        engine.serve(requests)

    benchmark(run_warm_batch)
    engine.close()
