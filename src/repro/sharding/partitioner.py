"""`Partitioner`: deterministic element-to-bucket placement for sharding.

Partitioning is split into two pure functions so shard maps can evolve
without ever re-hashing the world:

* the **partitioner** maps an element to one of ``num_buckets`` fixed
  virtual buckets — a function of the element alone, never of the
  current shard layout;
* the **shard map** (:class:`~repro.sharding.router.ShardMap`) maps
  buckets to shard names — the part that changes on a split or merge,
  one epoch bump at a time.

Moving a shard's load therefore means reassigning *buckets*, and the
set of elements that moves is exactly the set whose buckets moved —
recomputable from the partitioner at any time, with no per-element
routing table to keep durable.

Two strategies:

* ``hash`` — a *seeded* BLAKE2b digest of the element object's repr.
  Python's builtin ``hash`` is process-salted for strings, so it would
  make shard placement differ between runs; the keyed digest is stable
  across processes for a fixed seed, which the determinism story
  (reproducible chaos tests, bit-for-bit shard rebuilds) requires.
* ``range`` — weight-aware: bucket boundaries are equal-count weight
  quantiles of the build-time data, assigned by binary search on the
  element's weight.  Contiguous bucket ranges then give each shard a
  contiguous weight band, which concentrates the heavy elements in few
  shards — exactly the layout under which the scatter-gather
  executor's max-probe threshold pruning contacts the fewest shards
  (the top-k of a skewed workload lives almost entirely in the top
  band).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import List, Optional, Sequence

from repro.core.problem import Element
from repro.resilience.errors import InvalidConfiguration

STRATEGY_HASH = "hash"
STRATEGY_RANGE = "range"
_STRATEGIES = (STRATEGY_HASH, STRATEGY_RANGE)

DEFAULT_BUCKETS = 64


class Partitioner:
    """Element -> bucket placement (see module docstring).

    Parameters
    ----------
    strategy:
        ``"hash"`` (seeded digest of the object) or ``"range"``
        (weight-quantile bands; requires ``boundaries``).
    num_buckets:
        Number of virtual buckets.  Fixed for the partitioner's
        lifetime — splits move buckets between shards, they never
        re-bucket elements.
    seed:
        Keys the hash digest; two partitioners with different seeds
        place the same data differently (and two with the same seed
        identically, across processes).
    boundaries:
        For ``range``: ``num_buckets - 1`` non-decreasing weight cut
        points; bucket ``j`` holds weights in
        ``(boundaries[j-1], boundaries[j]]``-style bands via
        ``bisect_right``.  Built from data by :meth:`for_elements`.
    """

    def __init__(
        self,
        strategy: str = STRATEGY_HASH,
        num_buckets: int = DEFAULT_BUCKETS,
        seed: int = 0,
        boundaries: Optional[Sequence[float]] = None,
    ) -> None:
        if strategy not in _STRATEGIES:
            raise InvalidConfiguration(f"unknown partition strategy {strategy!r}")
        if num_buckets < 1:
            raise InvalidConfiguration(
                f"num_buckets must be >= 1, got {num_buckets}"
            )
        self.strategy = strategy
        self.num_buckets = num_buckets
        self.seed = seed
        self._key = f"repro-shard-{seed}".encode("utf-8")[:64]
        if strategy == STRATEGY_RANGE:
            if boundaries is None:
                raise InvalidConfiguration(
                    "range partitioning needs boundaries; build with "
                    "Partitioner.for_elements(...)"
                )
            boundaries = list(boundaries)
            if len(boundaries) != num_buckets - 1:
                raise InvalidConfiguration(
                    f"range partitioning over {num_buckets} buckets needs "
                    f"{num_buckets - 1} boundaries, got {len(boundaries)}"
                )
            if any(
                later < earlier
                for earlier, later in zip(boundaries, boundaries[1:])
            ):
                raise InvalidConfiguration("boundaries must be non-decreasing")
            self.boundaries: Optional[List[float]] = boundaries
        else:
            self.boundaries = None

    @classmethod
    def for_elements(
        cls,
        elements: Sequence[Element],
        strategy: str = STRATEGY_HASH,
        num_buckets: int = DEFAULT_BUCKETS,
        seed: int = 0,
    ) -> "Partitioner":
        """Build a partitioner fitted to ``elements``.

        For ``hash`` the data is ignored (placement is content-keyed).
        For ``range`` the boundaries are equal-count weight quantiles,
        so the initial buckets carry ~``n / num_buckets`` elements each
        — balanced by construction even under arbitrarily skewed weight
        values.  Inserts landing outside the fitted range clamp to the
        extreme buckets; :meth:`ShardedTopKIndex.rebalance` splits any
        shard that grows hot.
        """
        if strategy != STRATEGY_RANGE:
            return cls(strategy=strategy, num_buckets=num_buckets, seed=seed)
        weights = sorted(element.weight for element in elements)
        n = len(weights)
        # boundaries[j] is the smallest weight of bucket j+1: bucket_of
        # uses bisect_right, so bucket j spans [boundaries[j-1], boundaries[j])
        # and each bucket gets ~n/num_buckets of the fitted weights.
        boundaries = [
            weights[min(n - 1, (j + 1) * n // num_buckets)] if n else 0.0
            for j in range(num_buckets - 1)
        ]
        return cls(
            strategy=strategy,
            num_buckets=num_buckets,
            seed=seed,
            boundaries=boundaries,
        )

    # ------------------------------------------------------------------
    def bucket_of(self, element: Element) -> int:
        """The element's virtual bucket — pure, stable across processes."""
        if self.strategy == STRATEGY_RANGE:
            assert self.boundaries is not None
            return bisect_right(self.boundaries, element.weight)
        digest = hashlib.blake2b(
            repr(element.obj).encode("utf-8", "backslashreplace"),
            digest_size=8,
            key=self._key,
        ).digest()
        return int.from_bytes(digest, "big") % self.num_buckets

    def initial_assignment(self, num_shards: int) -> List[int]:
        """Bucket -> shard index for a fresh ``num_shards``-way layout.

        Contiguous bucket ranges, as even as possible.  Contiguity is
        what makes ``range`` partitioning weight-aware at the shard
        level (each shard owns one weight band); for ``hash`` the
        bucket order carries no meaning, so contiguity is merely tidy.
        """
        if not 1 <= num_shards <= self.num_buckets:
            raise InvalidConfiguration(
                f"num_shards must be in [1, {self.num_buckets}], got {num_shards}"
            )
        return [b * num_shards // self.num_buckets for b in range(self.num_buckets)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Partitioner({self.strategy!r}, buckets={self.num_buckets}, "
            f"seed={self.seed})"
        )


__all__ = [
    "Partitioner",
    "STRATEGY_HASH",
    "STRATEGY_RANGE",
    "DEFAULT_BUCKETS",
]
