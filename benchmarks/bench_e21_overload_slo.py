"""E21 — Overload & SLO-driven remediation: the flash-crowd grading.

Runs the :mod:`repro.loadgen` open-loop traffic suite against the
serving stack and records the robustness claims the subsystem exists
to earn:

* **flash-crowd SLO** — the same seeded 8x crowd hits a static 2-shard
  topology and an identical stack with the control plane armed (SLO
  detection -> ``split_shard`` scale-out, plus the engine's brownout
  ladder).  Acceptance: the static topology's p99 violates the SLO,
  the autoscaled one's p99 stays inside it, and goodput improves;
* **retry amplification** — a fault-overlap brownout (armed latency
  plan) under sustained load, with clients resubmitting shed requests
  through a :class:`~repro.resilience.guard.RetryBudget`.  Acceptance:
  offered/fresh amplification < 1.2x while capacity is scarcest;
* **exactness under pressure** — every scenario spot-checks served
  answers against the brute-force oracle; answers the engine did not
  flag as degraded must be exact, always.

Everything is virtual-time and seeded, so CI grades identical runs.
Results land in ``benchmarks/results/e21_overload_slo.json`` (the CI
overload-slo job uploads it as an artifact).

Set ``REPRO_BENCH_QUICK=1`` to shorten the diurnal/storm soaks (the
acceptance pair always runs in full).
"""

import json
import os
from dataclasses import replace
from pathlib import Path

from repro.bench.tables import render_table
from repro.loadgen import (
    DEFAULT_LOAD_SCENARIOS,
    SHAPE_FLASH_CROWD,
    LoadScenarioRunner,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
AMPLIFICATION_CAP = 1.2
RESULTS_JSON = (
    Path(__file__).resolve().parent / "results" / "e21_overload_slo.json"
)


def _scenario_payload(result):
    report = result.report
    return {
        "name": report.name,
        "shape": result.spec.shape,
        "slo": result.spec.p99_slo,
        "slo_met": result.slo_met,
        "fresh_arrivals": report.fresh_arrivals,
        "served": report.served,
        "sheds": report.sheds,
        "queue_sheds": report.queue_sheds,
        "deadline_sheds": report.deadline_sheds,
        "retries": report.retries,
        "retries_denied": report.retries_denied,
        "amplification": report.amplification,
        "goodput": report.goodput,
        "p50": report.latency.p50,
        "p99": report.latency.p99,
        "p999": report.latency.p999,
        "reduced_k_served": report.reduced_k_served,
        "partial_served": report.partial_served,
        "exact_checked": report.exact_checked,
        "exact_ok": report.exact_ok,
        "brownout_escalations": result.brownout_escalations,
        "incidents": result.incidents,
        "levers": result.levers,
        "final_shards": result.final_shards,
    }


def _row(result):
    report = result.report
    return [
        report.name,
        report.fresh_arrivals,
        f"{report.latency.p50:.3f}",
        f"{report.latency.p99:.3f}",
        "yes" if result.slo_met else "NO",
        f"{report.goodput:.1%}",
        f"{report.amplification:.3f}x",
        result.final_shards,
        f"{report.exact_ok}/{report.exact_checked}",
    ]


def bench_e21_overload_slo(benchmark, results_sink):
    runner = LoadScenarioRunner()
    flash_spec = next(
        s for s in DEFAULT_LOAD_SCENARIOS if s.shape == SHAPE_FLASH_CROWD
    )

    # --- the headline pair: identical crowd, control plane off/on ---
    static, scaled = runner.flash_crowd_comparison(flash_spec)

    # --- the supporting scenarios (diurnal, storm, fault overlap) ---
    others = []
    for spec in DEFAULT_LOAD_SCENARIOS:
        if spec.shape == SHAPE_FLASH_CROWD:
            continue
        if QUICK:
            spec = replace(spec, duration=min(spec.duration, 24.0))
        others.append(runner.run(spec))

    results = [static, scaled, *others]

    # Acceptance 1: the SLO separation the control plane is for.
    assert static.report.latency.p99 > flash_spec.p99_slo, (
        "static topology must measurably violate the SLO",
        static.report.latency.p99,
    )
    assert scaled.report.latency.p99 <= flash_spec.p99_slo, (
        "autoscaled+brownout run must meet the SLO",
        scaled.report.latency.p99,
    )
    assert "split_shard" in scaled.levers and scaled.final_shards > (
        flash_spec.num_shards
    ), "the win must come from real scale-out"
    assert scaled.report.goodput > static.report.goodput

    # Acceptance 2: the retry budget bounds amplification everywhere,
    # including the brownout-under-load scenario.
    for result in results:
        assert result.report.amplification < AMPLIFICATION_CAP, (
            result.report.name,
            result.report.amplification,
        )

    # Acceptance 3: no unflagged answer ever diverges from the oracle.
    for result in results:
        assert result.report.exact_checked > 0, result.report.name
        assert result.report.exact_ok == result.report.exact_checked, (
            result.report.name
        )

    results_sink(
        render_table(
            f"E21 Overload & SLO-driven remediation ({len(results)} runs, "
            f"SLO p99 <= {flash_spec.p99_slo:.1f}s)",
            [
                "scenario", "offered", "p50", "p99", "slo",
                "goodput", "amplif", "shards", "exact",
            ],
            [_row(result) for result in results],
            note=(
                "acceptance: static flash crowd violates the p99 SLO, the "
                "autoscaled+brownout twin meets it via split_shard scale-"
                f"out, amplification < {AMPLIFICATION_CAP}x under brownout, "
                "and every non-flagged answer is oracle-exact; latencies "
                "are virtual seconds (counted, not slept)"
            ),
        )
    )

    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(
        json.dumps(
            {
                "quick": QUICK,
                "slo_p99": flash_spec.p99_slo,
                "amplification_cap": AMPLIFICATION_CAP,
                "flash_crowd": {
                    "static": _scenario_payload(static),
                    "autoscaled": _scenario_payload(scaled),
                    "slo_separation": [
                        static.report.latency.p99,
                        scaled.report.latency.p99,
                    ],
                },
                "scenarios": [_scenario_payload(result) for result in results],
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Timing hook: one full static flash-crowd run.
    benchmark(
        lambda: LoadScenarioRunner().run(
            replace(flash_spec, name="bench-timing")
        )
    )
