"""Open-loop arrival schedules: traffic that does not wait for you.

The defining property of real traffic is that *users do not coordinate
with the server*: request number ``i+1`` arrives when the rate function
says it does, whether or not request ``i`` has been answered.  A
closed-loop generator (issue, wait, issue) silently throttles itself
exactly when the server slows down — the "coordinated omission" blind
spot wrk2 was built to fix — and can never produce queueing collapse.
:class:`OpenLoopSchedule` therefore generates the full arrival
timestamp sequence **up front from the rate function alone**; the
harness then replays it against the engine, letting the backlog grow
wherever capacity falls short.

Rate shapes (`requests per unit time` as a function of time):

* :class:`ConstantRate` — the wrk2 staple;
* :class:`DiurnalRate` — a sinusoidal day/night cycle around a base;
* :class:`FlashCrowdRate` — a base rate with a burst window at
  ``spike`` multiples (linear ramp in, cliff out), the autoscaling
  acceptance scenario.

All schedules are seeded: optional jitter perturbs inter-arrival gaps
reproducibly, so two runs of the same (shape, seed) produce identical
timestamp sequences.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List

from repro.resilience.errors import InvalidConfiguration


@dataclass(frozen=True)
class ConstantRate:
    """``rate`` requests per unit time, forever."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise InvalidConfiguration(f"rate must be > 0, got {self.rate}")

    def __call__(self, t: float) -> float:
        return self.rate


@dataclass(frozen=True)
class DiurnalRate:
    """A day/night cycle: ``base * (1 + amplitude * sin(2*pi*t/period))``.

    Starts at the base rate, peaks at ``base * (1 + amplitude)`` a
    quarter-period in, troughs three quarters in.  ``amplitude`` must
    stay below 1 so the rate never reaches zero.
    """

    base: float
    amplitude: float = 0.5
    period: float = 100.0

    def __post_init__(self) -> None:
        if self.base <= 0.0:
            raise InvalidConfiguration(f"base must be > 0, got {self.base}")
        if not 0.0 <= self.amplitude < 1.0:
            raise InvalidConfiguration(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )
        if self.period <= 0.0:
            raise InvalidConfiguration(
                f"period must be > 0, got {self.period}"
            )

    def __call__(self, t: float) -> float:
        import math

        return self.base * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )


@dataclass(frozen=True)
class FlashCrowdRate:
    """Base rate with a flash-crowd window at ``spike`` multiples.

    The crowd arrives fast but not instantaneously: the rate ramps
    linearly from ``base`` to ``base * spike`` over the first
    ``ramp`` fraction of the window, holds, then drops back to base at
    the window's end (crowds leave when the event ends — a cliff).
    """

    base: float
    spike: float = 5.0
    start: float = 20.0
    duration: float = 30.0
    ramp: float = 0.2

    def __post_init__(self) -> None:
        if self.base <= 0.0:
            raise InvalidConfiguration(f"base must be > 0, got {self.base}")
        if self.spike < 1.0:
            raise InvalidConfiguration(
                f"spike must be >= 1, got {self.spike}"
            )
        if self.duration <= 0.0:
            raise InvalidConfiguration(
                f"duration must be > 0, got {self.duration}"
            )
        if not 0.0 <= self.ramp <= 1.0:
            raise InvalidConfiguration(
                f"ramp must be in [0, 1], got {self.ramp}"
            )

    def __call__(self, t: float) -> float:
        if not self.start <= t < self.start + self.duration:
            return self.base
        ramp_span = self.ramp * self.duration
        if ramp_span > 0.0 and t < self.start + ramp_span:
            fraction = (t - self.start) / ramp_span
            return self.base * (1.0 + (self.spike - 1.0) * fraction)
        return self.base * self.spike


class OpenLoopSchedule:
    """Arrival timestamps from a rate function, independent of service.

    ``t_{i+1} = t_i + jitter_draw / rate(t_i)`` — the classic
    quasi-deterministic pacing: mean inter-arrival gap tracks the rate
    function, seeded jitter (uniform in ``[1 - jitter, 1 + jitter]``)
    decorrelates arrivals from tick boundaries without Poisson
    burstiness obscuring the scripted shape.  ``jitter=0`` is exact
    constant pacing.
    """

    def __init__(self, rate_fn, seed: int = 0, jitter: float = 0.1) -> None:
        if not 0.0 <= jitter < 1.0:
            raise InvalidConfiguration(
                f"jitter must be in [0, 1), got {jitter}"
            )
        self.rate_fn = rate_fn
        self.seed = seed
        self.jitter = jitter

    def between(self, start: float, end: float) -> Iterator[float]:
        """Arrival timestamps in ``[start, end)``, ascending.

        The stream is generated fresh from ``start`` each call; for a
        windowed replay use one generator and consume it incrementally
        (see :meth:`windows`).
        """
        rng = random.Random(f"arrivals-{self.seed}-{start!r}")
        t = start
        while True:
            rate = self.rate_fn(t)
            if rate <= 0.0:
                raise InvalidConfiguration(
                    f"rate function returned {rate} at t={t}; open-loop "
                    "schedules need a strictly positive rate"
                )
            gap = 1.0 / rate
            if self.jitter > 0.0:
                gap *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            t += gap
            if t >= end:
                return
            yield t

    def windows(
        self, start: float, end: float, tick: float
    ) -> Iterator[List[float]]:
        """Arrival timestamps grouped per ``tick``-sized window.

        One contiguous stream (a single RNG), chunked at tick
        boundaries — the shape the harness's tick loop consumes.
        """
        if tick <= 0.0:
            raise InvalidConfiguration(f"tick must be > 0, got {tick}")
        stream = self.between(start, end)
        pending: List[float] = []
        window_end = start + tick
        for t in stream:
            while t >= window_end:
                yield pending
                pending = []
                window_end += tick
            pending.append(t)
        # Flush the tail, padding empty windows to cover [start, end).
        while window_end <= end + 1e-12:
            yield pending
            pending = []
            window_end += tick


__all__ = [
    "ConstantRate",
    "DiurnalRate",
    "FlashCrowdRate",
    "OpenLoopSchedule",
]
