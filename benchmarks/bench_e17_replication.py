"""E17 — Replicated serving: crash sweeps, loss tolerance, anti-entropy.

Three claims about :class:`repro.replication.cluster.ReplicaSet`:

1. **Failover is invisible to clients.**  A deterministic sweep kills
   the primary machine at every durability transfer of a mixed
   insert/delete/query workload over a 3-replica set.  Every answer of
   every swept run must match the never-crashed oracle run
   bit-for-bit, and after each promotion the new primary's applied LSN
   must equal its durable LSN — the committed-but-unapplied tail was
   fully replayed.
2. **Losing one replica is cheap.**  With one of three machines dead,
   the median per-query latency (counted reduction-operation units
   across every consulted replica) inflates by less than 3x.
3. **Anti-entropy converges.**  Rotting a sealed block on one replica
   is detected by the scrub and repaired by resync; the repaired
   machine is bit-for-bit equal to the primary.

Results also land as JSON in ``benchmarks/results/e17_replication.json``
(the CI chaos job uploads it as an artifact).

Set ``REPRO_BENCH_QUICK=1`` to run a reduced sweep (CI smoke mode).
"""

import json
import os
import random
import statistics
from pathlib import Path

from repro.bench.tables import render_table
from repro.core.problem import Element, top_k_of
from repro.replication import ReplicaSet, replicated_index
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SWEEP_POINTS = 30 if QUICK else 200
BASE_N = 48 if QUICK else 64
WORKLOAD_STEPS = 18 if QUICK else 24
LOSS_N = 200 if QUICK else 500
LOSS_QUERIES = 20 if QUICK else 50
K = 8
RESULTS_JSON = Path(__file__).resolve().parent / "results" / "e17_replication.json"


def point_elements(n, start=0):
    rng = random.Random(99)
    coords = rng.sample(range(50 * (LOSS_N + 200)), LOSS_N + 200)
    return [Element(float(coords[i]), float(i) + 0.25) for i in range(start, start + n)]


def make_cluster(n, **kwargs):
    kwargs.setdefault("B", 16)
    return replicated_index(
        point_elements(n), DynamicRangeTreap, DynamicRangeTreap,
        num_replicas=3, seed=5, **kwargs,
    )


def _range_queries(count, seed):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        a, b = sorted(rng.sample(range(50 * (LOSS_N + 200)), 2))
        out.append(RangePredicate1D(float(a), float(b)))
    return out


# ----------------------------------------------------------------------
# E17a — primary-crash sweep vs the never-crashed oracle
# ----------------------------------------------------------------------
def _run_workload(crash_at=None):
    """The fixed mixed workload; returns (answers, cluster)."""
    cluster = make_cluster(BASE_N)
    if crash_at is not None:
        cluster.primary.plan.schedule_crash(at_io=crash_at)
    predicates = _range_queries(6, seed=17)
    extras = point_elements(WORKLOAD_STEPS, start=BASE_N)
    answers = []
    for step, element in enumerate(extras):
        cluster.insert(element)
        if step % 4 == 3:
            cluster.delete(point_elements(BASE_N)[step])
        if step % 3 == 2:
            answers.append(cluster.query(predicates[step % len(predicates)], K))
    answers.append(cluster.query(predicates[0], 2 * K))
    return answers, cluster


def _crash_sweep():
    oracle, _ = _run_workload(None)
    crashed = exact = 0
    replayed_total = 0
    queries_checked = 0
    for at_io in range(1, SWEEP_POINTS + 1):
        answers, cluster = _run_workload(at_io)
        queries_checked += len(answers)
        assert answers == oracle, (
            f"crash at transfer {at_io}: an answer diverged from the "
            "never-crashed oracle"
        )
        exact += 1
        if cluster.stats.primary_crashes:
            crashed += 1
            assert cluster.stats.promotions >= 1
            # Promotion replayed the whole committed-but-unapplied tail.
            primary = cluster.primary
            assert primary.applied_lsn == primary.durable_lsn, (
                f"crash at {at_io}: promoted primary left "
                f"{primary.durable_lsn - primary.applied_lsn} committed "
                "records unapplied"
            )
            replayed_total += cluster.stats.failover_records_replayed
    assert crashed >= SWEEP_POINTS // 3, (
        f"sweep degenerated: only {crashed}/{SWEEP_POINTS} points crashed"
    )
    return {
        "sweep_points": SWEEP_POINTS,
        "crashed_runs": crashed,
        "queries_checked": queries_checked,
        "exact_runs": exact,
        "exact_fraction": 1.0,
        "failover_records_replayed": replayed_total,
    }


# ----------------------------------------------------------------------
# E17b — latency under single-replica loss
# ----------------------------------------------------------------------
def _query_units(cluster, predicate, k):
    """Counted latency of one read: reduction ops over consulted replicas.

    Each live replica's :class:`ReductionStats` delta (probes, fetches,
    scans) plus one RPC unit per replica that did work.
    """
    inners = [r.durable.inner for r in cluster.live_replicas]
    before = [
        (i.stats.monitored_probes, i.stats.threshold_fetches, i.stats.full_scans)
        for i in inners
    ]
    cluster.query(predicate, k)
    units = 0
    for inner, (probes, fetches, scans) in zip(inners, before):
        delta = (
            (inner.stats.monitored_probes - probes)
            + (inner.stats.threshold_fetches - fetches)
            + (inner.stats.full_scans - scans)
        )
        if delta:
            units += delta + 1  # +1: the RPC round trip itself
    return max(units, 1)


def _loss_inflation():
    cluster = make_cluster(LOSS_N)
    predicates = _range_queries(LOSS_QUERIES, seed=43)
    cluster.align()
    healthy = [_query_units(cluster, p, K) for p in predicates]
    casualty = [r for r in cluster.replicas if not r.is_primary][0]
    casualty.mark_dead()
    degraded = [_query_units(cluster, p, K) for p in predicates]
    inflations = [d / h for d, h in zip(degraded, healthy)]
    median = statistics.median(inflations)
    assert median < 3.0, (
        f"median latency inflation under single-replica loss is {median:.2f}x"
    )
    # Exactness is not negotiable while degraded.
    want = top_k_of(point_elements(LOSS_N), predicates[0], K)
    assert cluster.query(predicates[0], K) == want
    return {
        "queries": LOSS_QUERIES,
        "median_units_healthy": statistics.median(healthy),
        "median_units_one_dead": statistics.median(degraded),
        "median_inflation": round(median, 3),
    }


# ----------------------------------------------------------------------
# E17c — anti-entropy convergence
# ----------------------------------------------------------------------
def _antientropy_convergence():
    cluster = make_cluster(BASE_N)
    for element in point_elements(20, start=BASE_N):
        cluster.insert(element)
    victim = [r for r in cluster.replicas if not r.is_primary][0]
    block_id = victim.store.snapshots[0].head_block
    victim.store.disk.raw_write(block_id, ["rot"])
    victim.store.ctx.drop_cache()
    report = cluster.scrub()
    assert report.divergent == [victim.name]
    assert report.repaired == [victim.name]
    reborn = next(r for r in cluster.replicas if r.name == victim.name)
    primary = cluster.primary
    assert reborn.state_digest() == primary.state_digest()
    assert (
        reborn.durable.inner.snapshot_state()
        == primary.durable.inner.snapshot_state()
    ), "repaired replica is not bit-for-bit equal to the primary"
    assert cluster.scrub().clean
    return {
        "bad_blocks_detected": sum(len(b) for b in report.bad_blocks.values()),
        "repaired": report.repaired,
        "records_resynced": report.records_resynced,
        "converged_bit_for_bit": True,
    }


def bench_e17_replication(benchmark, results_sink):
    sweep = _crash_sweep()
    results_sink(
        render_table(
            "E17a Primary-crash sweep over a 3-replica set",
            ["crash points", "crashed runs", "queries checked",
             "exact", "failover records replayed"],
            [[sweep["sweep_points"], sweep["crashed_runs"],
              sweep["queries_checked"], "100%",
              sweep["failover_records_replayed"]]],
            note="primary killed at every durability transfer of a mixed "
            "workload; every answer matched the never-crashed oracle and "
            "every promotion replayed its full committed-but-unapplied tail",
        )
    )

    loss = _loss_inflation()
    results_sink(
        render_table(
            "E17b Quorum-read latency under single-replica loss "
            f"({LOSS_QUERIES} queries, n={LOSS_N})",
            ["median units (healthy)", "median units (one dead)", "inflation"],
            [[loss["median_units_healthy"], loss["median_units_one_dead"],
              f"{loss['median_inflation']}x"]],
            note="counted reduction-operation units across consulted "
            "replicas; the bound is < 3x",
        )
    )

    entropy = _antientropy_convergence()
    results_sink(
        render_table(
            "E17c Anti-entropy: rot one sealed block, scrub, resync",
            ["bad blocks", "repaired", "records resynced", "bit-for-bit"],
            [[entropy["bad_blocks_detected"], ",".join(entropy["repaired"]),
              entropy["records_resynced"], "yes"]],
            note="repaired machine digest-equal and state-equal to the "
            "primary; a second scrub is clean",
        )
    )

    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(
        json.dumps(
            {"quick": QUICK, "e17a_crash_sweep": sweep,
             "e17b_loss_inflation": loss, "e17c_antientropy": entropy},
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Timing: one quorum read on a healthy, aligned 3-replica set.
    cluster = make_cluster(LOSS_N)
    cluster.align()
    predicate = _range_queries(1, seed=7)[0]

    def run_quorum_read():
        cluster.query(predicate, K)

    benchmark(run_quorum_read)
