"""Operator loop: detect → localize → mitigate → verify, end to end."""

from dataclasses import replace

from repro.core.problem import Element
from repro.ops.incidents import STATUS_MITIGATING, STATUS_RESOLVED
from repro.ops.mitigation import LEVER_FAILOVER, LEVER_RECOVER_SHARD
from repro.ops.operator import Operator, OperatorPolicy

from ops_util import replicated_stack, sharded_stack


def drive(operator, cluster, pool, elements, ticks, writes=2):
    """Operator ticks interleaved with a small write workload."""
    for _ in range(ticks):
        operator.tick()
        for _ in range(writes):
            if pool:
                element = pool.pop(0)
                cluster.insert(element)
                elements.append(element)


class TestBrownoutLifecycle:
    def test_slow_primary_is_failed_over_then_resolved(self):
        elements, pool, cluster, guard, plan, probes = replicated_stack(
            read_latency=4, write_latency=4, seed=31
        )
        operator = Operator(guard=guard, probes=probes, elements=elements)
        drive(operator, cluster, pool, elements, ticks=2)  # warm baselines
        assert operator.log.incidents == []
        plan.arm()
        drive(operator, cluster, pool, elements, ticks=14)

        assert len(operator.log.incidents) >= 1
        incident = operator.log.incidents[0]
        assert incident.scope == ("machine", "replica-0")
        assert incident.kind == "latency_storm"
        assert incident.levers_fired[0] == LEVER_FAILOVER
        assert cluster.replicas[cluster.primary_index].name != "replica-0"
        assert all(not i.open for i in operator.log.incidents)
        assert operator.verifications >= 1


class TestDoNoHarm:
    def test_defers_under_topology_flux_then_acts(self):
        _, _, sharded, guard, probes = sharded_stack()
        elements = None  # structural verification only
        operator = Operator(guard=guard, probes=probes, elements=elements)
        sharded.router.shards["shard-1"].machine.mark_dead()

        collect = operator.collector.collect
        operator.collector.collect = (
            lambda tick: replace(collect(tick), topology_in_flux=True)
        )
        operator.tick()
        operator.tick()
        incident = operator.log.incidents[0]
        assert incident.status != STATUS_RESOLVED
        assert operator.deferrals >= 1
        assert incident.levers_fired == []  # nothing fired under flux
        assert not sharded.router.shards["shard-1"].alive

        operator.collector.collect = collect  # flux clears
        for _ in range(4):
            operator.tick()
        assert incident.levers_fired == [LEVER_RECOVER_SHARD]
        assert incident.status == STATUS_RESOLVED
        assert sharded.router.shards["shard-1"].alive

    def test_deferrals_do_not_exhaust_the_incident(self):
        _, _, sharded, guard, probes = sharded_stack()
        operator = Operator(
            guard=guard, probes=probes,
            policy=OperatorPolicy(max_rungs=2),
        )
        sharded.router.shards["shard-1"].machine.mark_dead()
        collect = operator.collector.collect
        operator.collector.collect = (
            lambda tick: replace(collect(tick), topology_in_flux=True)
        )
        for _ in range(6):  # more deferred ticks than max_rungs
            operator.tick()
        incident = operator.log.incidents[0]
        assert incident.open  # still waiting, not exhausted


class TestVerification:
    def test_failed_verification_keeps_incident_open(self):
        elements, pool, cluster, guard, _, probes = replicated_stack(seed=17)
        operator = Operator(guard=guard, probes=probes, elements=elements)
        follower = next(r for r in cluster.replicas if not r.is_primary)
        follower.mark_dead()
        # Poison the oracle: phantom heavyweights shadow every element
        # position, so any non-empty probe disagrees with the index.
        phantoms = [
            Element(e.obj + 0.25, 10**9 + i)
            for i, e in enumerate(list(elements))
        ]
        elements.extend(phantoms)
        drive(operator, cluster, pool, elements, ticks=4, writes=0)
        incident = operator.log.incidents[0]
        assert incident.status == STATUS_MITIGATING  # lever fired, not closed
        assert operator.verification_failures >= 1

        del elements[-len(phantoms):]  # oracle repaired: re-verify closes
        drive(operator, cluster, pool, elements, ticks=4)
        assert incident.status == STATUS_RESOLVED

    def test_verification_is_deterministic(self):
        def run():
            elements, pool, cluster, guard, plan, probes = replicated_stack(
                read_latency=4, write_latency=4, seed=31
            )
            operator = Operator(guard=guard, probes=probes, elements=elements)
            drive(operator, cluster, pool, elements, ticks=2)
            plan.arm()
            drive(operator, cluster, pool, elements, ticks=14)
            return operator.log.timeline()

        assert run() == run()


class TestExhaustion:
    def test_unplannable_incident_is_exhausted_not_looped(self):
        _, _, _, guard, _, probes = replicated_stack()
        operator = Operator(guard=guard, probes=probes)
        # A subsystem blame with no serving engine has an empty ladder.
        operator.log.fold(("subsystem", "serving"), "shed_spike", [], tick=1)
        operator.tick()
        assert operator.log.incidents[0].status == "exhausted"
