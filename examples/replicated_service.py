"""A replicated top-k service that survives losing its primary machine.

Three simulated machines — each with its own disk, fault plan, and
durable index — serve one logical top-k index through
:class:`repro.replication.ReplicaSet`:

1. every update commits to the primary's write-ahead log and is
   *shipped* to both followers, whose acknowledgement is their own
   durable commit;
2. the primary machine is then killed mid-workload; the cluster
   promotes the follower with the highest durable LSN, replays its
   committed-but-unapplied tail, and the interrupted insert retries
   idempotently — clients never see the difference;
3. one replica's disk silently rots a sealed block; the anti-entropy
   scrub detects it, resyncs the machine from a clean source, and
   proves bit-for-bit convergence;
4. the whole cluster rides inside a :class:`ResilientTopKIndex`, so
   the ladder's health summary reports promotions, hedge wins, scrub
   repairs, and per-replica lag in one place.

Run:  python examples/replicated_service.py
"""

import random

from repro.core.problem import Element, top_k_of
from repro.replication import ReplicaSet, replicated_index
from repro.resilience.guard import ResilientTopKIndex
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap


def main() -> None:
    rng = random.Random(21)
    coords = rng.sample(range(200_000), 900)
    listings = [Element(float(c), float(i) + 0.5) for i, c in enumerate(coords[:600])]
    arrivals = [
        Element(float(c), 600.0 + i) for i, c in enumerate(coords[600:])
    ]

    # ------------------------------------------------------------------
    # 1. Three machines, one index.
    # ------------------------------------------------------------------
    cluster = replicated_index(
        listings, DynamicRangeTreap, DynamicRangeTreap,
        num_replicas=3, seed=4, B=16,
    )
    print(f"cluster up: {cluster!r}")

    hot = RangePredicate1D(0.0, 200_000.0)
    for element in arrivals[:40]:
        cluster.insert(element)
    print(f"replica lag (lazy followers): {cluster.replica_lag()}")
    answer = cluster.query(hot, 5, mode="primary")
    print(f"top-5 weights: {[e.weight for e in answer]}")

    # ------------------------------------------------------------------
    # 2. Kill the primary mid-stream.
    # ------------------------------------------------------------------
    doomed = cluster.primary.name
    cluster.primary.plan.schedule_crash(at_io=3)
    for element in arrivals[40:80]:
        cluster.insert(element)  # one of these dies mid-commit and retries
    print(
        f"\n{doomed} died; promoted {cluster.primary.name} "
        f"(replayed {cluster.stats.failover_records_replayed} unapplied records)"
    )
    everything = listings + arrivals[:80]
    got = cluster.query(hot, 8)
    assert got == top_k_of(everything, hot, 8), "failover lost an update!"
    print("post-failover top-8 matches the brute-force oracle exactly")

    # ------------------------------------------------------------------
    # 3. Silent disk rot, caught and repaired.
    # ------------------------------------------------------------------
    victim = [r for r in cluster.replicas if not r.is_primary and r.alive][0]
    block = victim.store.snapshots[0].head_block
    victim.store.disk.raw_write(block, ["cosmic ray"])
    victim.store.ctx.drop_cache()
    report = cluster.scrub()
    reborn = next(r for r in cluster.replicas if r.name == victim.name)
    assert reborn.state_digest() == cluster.primary.state_digest()
    print(
        f"\nscrub: divergent={report.divergent} repaired={report.repaired} "
        f"({report.records_resynced} WAL records resynced); digests agree again"
    )

    # ------------------------------------------------------------------
    # 4. The cluster as a ladder rung.
    # ------------------------------------------------------------------
    guard = ResilientTopKIndex(cluster, elements=everything)
    guard.query(hot, 5)
    health = guard.health
    print(
        f"\nhealth: promotions={health.promotions} "
        f"scrub_repairs={health.scrub_repairs} replica_lag={health.replica_lag}"
    )


if __name__ == "__main__":
    main()
