"""Deterministic failure detection and primary promotion.

The :class:`FailoverController` decides two things, both
deterministically so chaos sweeps are exactly reproducible:

* **when a machine is dead** — a :class:`SimulatedCrash` is immediately
  fatal (the machine's fault plan refuses all further I/O), and
  ``max_consecutive_faults`` non-crash faults in a row without an
  intervening success also condemn it (a machine that can no longer
  complete any I/O is operationally dead even if it never "crashed");
* **who takes over** — among the surviving followers, the one whose
  *durable* LSN is highest; ties break on the lexicographically
  smallest name.  Choosing by durable LSN is what makes synchronous
  WAL shipping safe: every acknowledged record is durable on the
  freshest follower, so promoting it loses nothing that was ever
  acknowledged.

Promotion replays the winner's committed-but-unapplied WAL tail
(:meth:`DurableTopKIndex.replay_unapplied`) *before* the new primary
admits any operation — a lazily-applying follower may be arbitrarily
far behind in memory while fully caught up on disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.replication.replica import ROLE_PRIMARY, Replica
from repro.resilience.errors import (
    FailoverError,
    InvalidConfiguration,
    SimulatedCrash,
)


@dataclass(frozen=True)
class FailoverPolicy:
    """Knobs of the failure detector.

    ``max_consecutive_faults`` is the number of back-to-back non-crash
    faults (no success in between) after which a machine is declared
    dead.  Crashes are always immediately fatal.
    """

    max_consecutive_faults: int = 3

    def __post_init__(self) -> None:
        if self.max_consecutive_faults < 1:
            raise InvalidConfiguration(
                "max_consecutive_faults must be >= 1, got "
                f"{self.max_consecutive_faults}"
            )


class FailoverController:
    """Failure detector + deterministic successor election."""

    def __init__(self, policy: Optional[FailoverPolicy] = None) -> None:
        self.policy = policy if policy is not None else FailoverPolicy()
        self._consecutive: Dict[str, int] = {}
        self.promotions = 0
        self.records_replayed = 0
        # Fenced-lease state (counted virtual time; see ReplicaSet).
        # lease_ttl == 0 means leases are off and every lease check is
        # vacuously false — the pre-fencing behaviour.
        self.lease_ttl = 0
        self.lease_holder: Optional[str] = None
        self.lease_expires = 0

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------
    def note_success(self, name: str) -> None:
        """An operation on ``name`` completed; reset its fault streak."""
        self._consecutive[name] = 0

    def note_fault(self, name: str, error: Exception) -> bool:
        """Record one fault on ``name``; ``True`` if it is now dead.

        A :class:`SimulatedCrash` condemns the machine outright; any
        other fault extends the consecutive streak and condemns it once
        the streak reaches the policy threshold.
        """
        if isinstance(error, SimulatedCrash):
            return True
        streak = self._consecutive.get(name, 0) + 1
        self._consecutive[name] = streak
        return streak >= self.policy.max_consecutive_faults

    def fault_streak(self, name: str) -> int:
        return self._consecutive.get(name, 0)

    def evict(self, active_names) -> List[str]:
        """Drop fault streaks of machines no longer in the cluster.

        A replaced replica's streak must not outlive it: the
        anti-entropy rebuild that swapped it out produced a *new*
        machine, and a stale streak would condemn the newcomer (or a
        later same-named replacement) for its predecessor's sins.
        Returns the evicted names.
        """
        active = set(active_names)
        gone = [name for name in self._consecutive if name not in active]
        for name in gone:
            del self._consecutive[name]
        return gone

    # ------------------------------------------------------------------
    # Fenced leases (counted virtual time)
    # ------------------------------------------------------------------
    def configure_lease(self, ttl: int) -> None:
        """Turn leases on with a TTL in fabric clock units."""
        if ttl < 1:
            raise InvalidConfiguration(f"lease ttl must be >= 1, got {ttl}")
        self.lease_ttl = ttl

    def grant_lease(self, name: str, now: int) -> None:
        """Grant (or renew) the primary lease to ``name`` at time ``now``."""
        self.lease_holder = name
        self.lease_expires = now + self.lease_ttl

    def lease_valid(self, name: str, now: int) -> bool:
        """Whether ``name`` holds an unexpired lease at time ``now``."""
        return (
            self.lease_ttl > 0
            and self.lease_holder == name
            and now < self.lease_expires
        )

    # ------------------------------------------------------------------
    # Election
    # ------------------------------------------------------------------
    def pick_successor(self, candidates: List[Replica]) -> Replica:
        """The surviving replica with the highest durable LSN.

        Deterministic: ties on durable LSN break toward the smallest
        name, so a sweep that kills the primary at every possible I/O
        always elects the same successor for the same history.
        """
        alive = [r for r in candidates if r.alive]
        if not alive:
            raise FailoverError("no surviving replica to promote")
        best = max(r.durable_lsn for r in alive)
        return min(
            (r for r in alive if r.durable_lsn == best), key=lambda r: r.name
        )

    def promote(self, replica: Replica) -> int:
        """Make ``replica`` primary; returns WAL records replayed.

        The committed-but-unapplied tail of the winner's own durable
        log is folded into its in-memory index *before* the role flips
        — the new primary answers from (and extends) exactly the state
        every acknowledged record produced.
        """
        replica.require_alive()
        replayed = replica.durable.replay_unapplied()
        replica.role = ROLE_PRIMARY
        self.promotions += 1
        self.records_replayed += replayed
        self.note_success(replica.name)
        return replayed


__all__ = ["FailoverController", "FailoverPolicy"]
