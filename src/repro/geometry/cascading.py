"""Fractional cascading over binary trees (Chazelle–Guibas [14]).

The paper deploys fractional cascading twice: to bring the 2D stabbing
max query from ``O(log^2 n)`` to ``O(log n)`` (Section 5.2) and the 2D
prioritized halfplane query from ``O(log^2 n + t)`` to ``O(log n + t)``
(Section 5.4).  Both uses share one shape: descend a root-to-leaf path
of a balanced binary tree, and at every visited node run a predecessor
search over that node's own sorted list.  Cascading replaces the
``O(log n)`` search per node with one ``O(log n)`` search at the root
plus ``O(1)`` pointer-following per step.

Construction: each node's *augmented list* merges its own keys with
every second entry of each child's augmented list; every augmented
entry carries (a) the predecessor position among the node's own keys
and (b) for each child, the predecessor position in that child's
augmented list.  Because only every second child entry is promoted, the
child pointer is off by at most two positions, fixed by a bounded
forward walk.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple


@dataclass
class CascadeNode:
    """A binary-tree node carrying a sorted key list to cascade over.

    ``keys`` must be sorted ascending; ``payloads`` aligns with ``keys``
    (the 1D stabbing-max structures store the running max weight of each
    subinterval here).
    """

    keys: List[float]
    payloads: List[Any] = field(default_factory=list)
    left: Optional["CascadeNode"] = None
    right: Optional["CascadeNode"] = None

    # Filled in by FractionalCascading._augment:
    aug_keys: List[float] = field(default_factory=list, repr=False)
    aug_own: List[int] = field(default_factory=list, repr=False)
    aug_left: List[int] = field(default_factory=list, repr=False)
    aug_right: List[int] = field(default_factory=list, repr=False)


class FractionalCascading:
    """Prepares a binary tree for cascaded root-to-leaf predecessor search."""

    def __init__(self, root: CascadeNode) -> None:
        self.root = root
        self._augment(root)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _augment(self, node: CascadeNode) -> None:
        for child in (node.left, node.right):
            if child is not None:
                self._augment(child)
        left_sample = _every_second(node.left.aug_keys) if node.left else []
        right_sample = _every_second(node.right.aug_keys) if node.right else []
        merged = sorted(
            [(key, 0) for key in node.keys]
            + [(key, 1) for key in left_sample]
            + [(key, 2) for key in right_sample]
        )
        node.aug_keys = [key for key, _ in merged]
        node.aug_own = _predecessor_positions(node.aug_keys, node.keys)
        node.aug_left = (
            _predecessor_positions(node.aug_keys, node.left.aug_keys) if node.left else []
        )
        node.aug_right = (
            _predecessor_positions(node.aug_keys, node.right.aug_keys) if node.right else []
        )

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def descend(
        self,
        x: float,
        chooser: Callable[[CascadeNode], Optional[str]],
    ) -> Iterator[Tuple[CascadeNode, int]]:
        """Walk the path selected by ``chooser``, yielding ``(node, pred)``.

        ``pred`` is the index of the largest own key ``<= x`` at each
        visited node (``-1`` when every own key exceeds ``x``).  One
        binary search happens at the root; every subsequent step costs
        ``O(1)`` via the cascade pointers.  ``chooser`` returns
        ``"left"``, ``"right"`` or ``None`` (stop after this node).
        """
        node: Optional[CascadeNode] = self.root
        aug_pos = bisect_right(self.root.aug_keys, x) - 1
        while node is not None:
            own_pred = node.aug_own[aug_pos] if aug_pos >= 0 else -1
            yield node, own_pred
            direction = chooser(node)
            if direction is None:
                return
            child = node.left if direction == "left" else node.right
            if child is None:
                return
            pointers = node.aug_left if direction == "left" else node.aug_right
            child_pos = pointers[aug_pos] if aug_pos >= 0 else -1
            # The pointer lags the true predecessor by O(1) positions.
            child_keys = child.aug_keys
            while child_pos + 1 < len(child_keys) and child_keys[child_pos + 1] <= x:
                child_pos += 1
            node, aug_pos = child, child_pos

    def path_predecessors(
        self,
        x: float,
        chooser: Callable[[CascadeNode], Optional[str]],
    ) -> List[Tuple[CascadeNode, int]]:
        """Materialised form of :meth:`descend` (convenience for callers)."""
        return list(self.descend(x, chooser))


def _every_second(keys: Sequence[float]) -> List[float]:
    """Promote every second entry (odd positions) of a child list."""
    return list(keys[1::2])


def _predecessor_positions(outer: Sequence[float], inner: Sequence[float]) -> List[int]:
    """For each key of ``outer``, the predecessor index in ``inner``.

    Linear two-pointer merge: both lists are sorted, so the whole table
    costs ``O(|outer| + |inner|)``.
    """
    positions: List[int] = []
    j = -1
    for key in outer:
        while j + 1 < len(inner) and inner[j + 1] <= key:
            j += 1
        positions.append(j)
    return positions
