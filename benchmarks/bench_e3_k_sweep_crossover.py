"""E3 — output term: Theorem 2's O(k/B) vs the baseline's O((k/B) log n).

The motivating deficiency (Section 1.2): the prior reduction [28]
multiplies the output term by ``log n`` — "essentially prevents the
reduction from producing any structure with linear output-sensitive
cost".  Both theorems remove it.

Measured: I/Os per query as ``k`` doubles at fixed ``n``.  The
baseline/theorem-2 I/O ratio must *grow* with k toward ``Theta(log n)``
— the crossover the paper's analysis predicts.
"""

from repro.bench.tables import render_table
from repro.core.baseline import BinarySearchTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex

from helpers import em_context, em_interval_factories, interval_elements, measure_ios, stab_queries

N = 4_000
KS = (8, 32, 128, 512, 1024)
QUERIES = 16


def _build():
    elements = list(interval_elements(N, seed=3))
    ctx2 = em_context()
    pri2, max2 = em_interval_factories(ctx2)
    theorem2 = ExpectedTopKIndex(elements, pri2, max2, B=ctx2.B, seed=4)
    ctxb = em_context()
    prib, _ = em_interval_factories(ctxb)
    baseline = BinarySearchTopKIndex(elements, prib)
    return ctx2, theorem2, ctxb, baseline


def _sweep():
    ctx2, theorem2, ctxb, baseline = _build()
    predicates = stab_queries(QUERIES, seed=5)
    rows = []
    ratios = []
    for k in KS:
        t2 = measure_ios(ctx2, lambda: [theorem2.query(p, k) for p in predicates]) / QUERIES
        bl = measure_ios(ctxb, lambda: [baseline.query(p, k) for p in predicates]) / QUERIES
        ratio = bl / max(t2, 1e-9)
        rows.append([k, round(t2, 1), round(bl, 1), round(ratio, 2)])
        ratios.append(ratio)
    return rows, ratios


def bench_e3_k_sweep_crossover(benchmark, results_sink):
    rows, ratios = _sweep()
    results_sink(
        render_table(
            f"E3  Output term: Theorem 2 vs binary-search baseline [28] (n={N})",
            ["k", "Thm2 I/Os", "baseline I/Os", "baseline/Thm2"],
            rows,
            note="the ratio must grow with k: the baseline pays (k/B) log n, Thm2 pays k/B",
        )
    )
    assert ratios[-1] > ratios[0], "baseline's log-factor on k/B not observed"
    assert ratios[-1] > 2.0, f"large-k ratio too small: {ratios[-1]:.2f}"

    ctx2, theorem2, _, _ = _build()
    predicates = stab_queries(QUERIES, seed=6)

    def run_batch():
        for p in predicates:
            theorem2.query(p, KS[-1])

    benchmark(run_batch)
