"""Shared builders for loadgen tests: tiny deterministic serving stacks.

Same convention as ``tests/serving/serving_util.py`` — a helper module
imported by name, not a conftest.
"""

from __future__ import annotations

import random

from repro.core.problem import Element
from repro.serving import BrownoutPolicy, ServingEngine
from repro.sharding import sharded_index
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap


def make_elements(n=48, seed=7):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    positions = rng.sample(range(10 * n), n)
    return [Element(float(positions[i]), float(weights[i])) for i in range(n)]


def make_pool(elements, count=16, seed=7):
    rng = random.Random(seed + 7)
    span = int(max(e.obj for e in elements)) + 10
    pool = []
    for _ in range(count):
        lo = rng.randrange(-5, span)
        hi = rng.randrange(lo, span + 5)
        pool.append(RangePredicate1D(float(lo), float(hi)))
    return pool


def make_stack(
    n=48,
    seed=7,
    num_shards=2,
    max_pending=64,
    max_batch=16,
    cache_capacity=64,
    brownout=None,
):
    """(elements, sharded, engine) — serial dispatch, deterministic."""
    elements = make_elements(n, seed)
    sharded = sharded_index(
        elements, DynamicRangeTreap, DynamicRangeTreap,
        num_shards=num_shards, strategy="range", seed=seed,
    )
    engine = ServingEngine(
        sharded,
        cache_capacity=cache_capacity,
        max_batch=max_batch,
        max_pending=max_pending,
        pool_size=0,
        brownout=brownout,
    )
    return elements, sharded, engine


def tight_brownout(queue_high=8, queue_low=1):
    return BrownoutPolicy(
        queue_high=queue_high,
        queue_low=queue_low,
        sustain_drains=1,
        recover_drains=1,
        staleness_budget=32,
        k_cap=2,
    )
