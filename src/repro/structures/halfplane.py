"""2D halfplane structures (Theorem 3, first bullet).

Problem: ``D`` is a set of weighted points in the plane; a predicate is
a halfplane ``{x : normal . x >= c}``, matched by every point inside.

Structures:

* :class:`ConvexLayerReporting` — *unweighted* halfplane reporting in
  the shape of Chazelle–Guibas–Lee [15]: convex layers; per layer find
  the extreme vertex in the normal direction by the prepared-hull
  binary search, walk the hull both ways while inside, stop at the
  first empty layer (inner layers are then empty too).  Query
  ``O((1 + L) log n + t)`` where ``L <= t`` is the number of layers
  intersected.
* :class:`HalfplanePrioritized` — the paper's Section 5.4 construction:
  a balanced tree over weights whose canonical suffix nodes each carry
  a :class:`ConvexLayerReporting` over their points.
* :class:`HalfplaneMax` — a weight-partition tree: each node covers a
  weight range and stores the convex hull of its points; a query
  descends greedily into the heaviest half whose hull still meets the
  halfplane (an emptiness test = one extreme-vertex probe), reaching
  the answer in ``O(log^2 n)``.  Substitutes for the planar
  point-location structure of [31]; Theorem 2's "bootstrapping power"
  erases the extra log (bench E8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import register_predicate_compiler
from repro.core.interfaces import MaxIndex, OpCounter, PrioritizedIndex, PrioritizedResult
from repro.core.problem import Element, Predicate
from repro.geometry.convexhull import PreparedHull, convex_hull, convex_layers
from repro.geometry.primitives import Halfplane, Point


@dataclass(frozen=True)
class HalfplanePredicate(Predicate):
    """Matches every point inside the halfplane."""

    halfplane: Halfplane

    def matches(self, obj: Point) -> bool:
        return self.halfplane.contains(obj)


@register_predicate_compiler(HalfplanePredicate)
def _compile_halfplane(predicate: HalfplanePredicate):
    """Closure-specialized halfplane test; 2D unrolls the dot product."""
    normal, c = predicate.halfplane.normal, predicate.halfplane.c
    if len(normal) == 2:
        a, b = normal
        return lambda obj: a * obj[0] + b * obj[1] >= c
    return predicate.halfplane.contains


class ConvexLayerReporting:
    """Unweighted halfplane reporting over convex layers.

    Points are reported (not their weights filtered) — this is the
    building block the prioritized structure composes per weight node.
    Duplicate coordinates are collapsed at build and re-expanded at
    report time so multi-element points report correctly.
    """

    def __init__(self, elements: Sequence[Element]) -> None:
        self.ops = OpCounter()
        self._by_point: Dict[Point, List[Element]] = {}
        for element in elements:
            self._by_point.setdefault(element.obj, []).append(element)
        self._layers: List[PreparedHull] = [
            PreparedHull(layer) for layer in convex_layers(list(self._by_point))
        ]

    @property
    def n(self) -> int:
        return sum(len(group) for group in self._by_point.values())

    def report(self, halfplane: Halfplane, limit: Optional[int] = None) -> Tuple[List[Element], bool]:
        """All elements inside ``halfplane``; truncation at ``limit``.

        Accepts either a bare :class:`Halfplane` or a predicate carrying
        one (so the structure plugs directly into
        :class:`~repro.structures.weight_suffix.WeightSuffixPrioritized`).
        Returns ``(elements, truncated)`` with the same cost-monitoring
        contract as prioritized queries.
        """
        halfplane = getattr(halfplane, "halfplane", halfplane)
        direction = (halfplane.normal[0], halfplane.normal[1])
        out: List[Element] = []
        for hull in self._layers:
            self.ops.node_visits += 1
            if len(hull) == 0:
                continue
            start = hull.extreme_index(direction)
            if not halfplane.contains(hull.hull[start]):
                # This layer misses the halfplane; inner layers are
                # inside this layer's hull, so they miss it too.
                break
            size = len(hull.hull)
            # Walk both ways from the extreme vertex while inside.
            indices = [start]
            step = 1
            while step < size:
                index = (start + step) % size
                if not halfplane.contains(hull.hull[index]):
                    break
                indices.append(index)
                step += 1
            covered = set(indices)
            step = 1
            while step < size:
                index = (start - step) % size
                if index in covered:
                    break
                if not halfplane.contains(hull.hull[index]):
                    break
                indices.append(index)
                covered.add(index)
                step += 1
            for index in indices:
                for element in self._by_point[hull.hull[index]]:
                    out.append(element)
                    self.ops.scanned += 1
                    if limit is not None and len(out) > limit:
                        return out, True
        return out, False


class HalfplanePrioritized(PrioritizedIndex):
    """Prioritized halfplane reporting (Section 5.4's weight tree).

    A balanced binary tree over weights; each node stores a
    :class:`ConvexLayerReporting` over the points in its weight range.
    The canonical suffix cover of ``{w >= tau}`` has ``O(log n)``
    nodes, each answered by one layer query.
    """

    def __init__(self, elements: Sequence[Element]) -> None:
        self.ops = OpCounter()
        self._n = len(elements)
        ordered = sorted(elements, key=lambda e: e.weight)
        self._root = self._build(ordered)

    class _Node:
        __slots__ = ("min_weight", "max_weight", "structure", "left", "right")

        def __init__(self) -> None:
            self.min_weight = 0.0
            self.max_weight = 0.0
            self.structure: Optional[ConvexLayerReporting] = None
            self.left = None
            self.right = None

    def _build(self, ordered: List[Element]) -> Optional["HalfplanePrioritized._Node"]:
        if not ordered:
            return None
        node = HalfplanePrioritized._Node()
        node.min_weight = ordered[0].weight
        node.max_weight = ordered[-1].weight
        node.structure = ConvexLayerReporting(ordered)
        if len(ordered) > 1:
            mid = len(ordered) // 2
            node.left = self._build(ordered[:mid])
            node.right = self._build(ordered[mid:])
        return node

    @property
    def n(self) -> int:
        return self._n

    def query_cost_bound(self) -> float:
        """``Q_pri = O(log^2 n)`` (canonical nodes x extreme searches)."""
        log_n = max(1.0, math.log2(max(2, self._n)))
        return log_n * log_n

    def query(
        self, predicate: HalfplanePredicate, tau: float, limit: Optional[int] = None
    ) -> PrioritizedResult:
        canonical: List[ConvexLayerReporting] = []
        node = self._root
        while node is not None:
            self.ops.node_visits += 1
            if node.min_weight >= tau:
                canonical.append(node.structure)
                break
            if node.left is None and node.right is None:
                break  # single element below tau
            if node.right is not None and node.right.min_weight >= tau:
                canonical.append(node.right.structure)
                node = node.left
            else:
                node = node.right
        out: List[Element] = []
        for structure in canonical:
            # report() may return up to its limit + 1 elements (the one
            # that trips the monitor), so hand it the slack before ours.
            remaining = None if limit is None else limit - len(out)
            elements, truncated = structure.report(predicate.halfplane, remaining)
            out.extend(elements)
            if truncated:
                return PrioritizedResult(out, truncated=True)
        return PrioritizedResult(out, truncated=False)

    def space_units(self) -> int:
        """``O(n log n)`` words: each point on every level of the tree."""
        log_n = max(1, int(math.log2(max(2, self._n))))
        return self._n * log_n


class HalfplaneMax(MaxIndex):
    """Max-weight point in a halfplane via a weight-partition tree.

    The hull emptiness test "does this weight class contain a point of
    the halfplane?" is one extreme-vertex probe (``O(log n)``); the
    greedy descent visits ``O(log n)`` nodes, always preferring the
    heavier half, so the first leaf reached is the answer.
    """

    def __init__(self, elements: Sequence[Element]) -> None:
        self.ops = OpCounter()
        self._n = len(elements)
        ordered = sorted(elements, key=lambda e: e.weight)
        self._root = self._build(ordered)

    class _Node:
        __slots__ = ("element", "hull", "left", "right")

        def __init__(self) -> None:
            self.element: Optional[Element] = None  # leaf only
            self.hull: Optional[PreparedHull] = None
            self.left = None
            self.right = None

    def _build(self, ordered: List[Element]) -> Optional["HalfplaneMax._Node"]:
        if not ordered:
            return None
        node = HalfplaneMax._Node()
        node.hull = PreparedHull(convex_hull([e.obj for e in ordered]))
        if len(ordered) == 1:
            node.element = ordered[0]
        else:
            mid = len(ordered) // 2
            node.left = self._build(ordered[:mid])  # lighter half
            node.right = self._build(ordered[mid:])  # heavier half
        return node

    @property
    def n(self) -> int:
        return self._n

    def query_cost_bound(self) -> float:
        """``Q_max = O(log^2 n)`` (descent x hull probes)."""
        log_n = max(1.0, math.log2(max(2, self._n)))
        return log_n * log_n

    def query(self, predicate: HalfplanePredicate) -> Optional[Element]:
        halfplane = predicate.halfplane
        node = self._root
        if node is None or not self._hull_hits(node, halfplane):
            return None
        while node.element is None:
            self.ops.node_visits += 1
            if node.right is not None and self._hull_hits(node.right, halfplane):
                node = node.right  # the heavier half wins if non-empty
            else:
                node = node.left
        return node.element

    def _hull_hits(self, node: "HalfplaneMax._Node", halfplane: Halfplane) -> bool:
        """Emptiness test: does the node's point set meet the halfplane?"""
        hull = node.hull
        if hull is None or len(hull.hull) == 0:
            return False
        direction = (halfplane.normal[0], halfplane.normal[1])
        extreme = hull.hull[hull.extreme_index(direction)]
        return halfplane.contains(extreme)

    def space_units(self) -> int:
        """``O(n log n)`` words: hulls on every level."""
        log_n = max(1, int(math.log2(max(2, self._n))))
        return self._n * log_n
