"""Columnar hot path: flat weight arrays, compiled predicates, match scans.

The reductions' asymptotics are dominated by a handful of prioritized
probes, but the *constant factor* of a probe in CPython is dominated by
per-:class:`~repro.core.problem.Element` object traffic: attribute
lookups, ``matches()`` dispatch, heap pushes.  The related top-k range
structures (Tao, arXiv 1208.4516; Brodal et al., arXiv 1509.08240) get
their practical speed from weight-sorted contiguous storage scanned by
rank/offset arithmetic — this module brings that layout to the RAM-model
hot path:

* :class:`ColumnSet` — one element set stored as parallel
  weight-descending columns: an ``array('d')`` of weights (negated, so
  the array is ascending and ``bisect`` works directly), an aligned list
  of raw ``obj`` values for predicate tests, and the aligned
  :class:`Element` list materialized only at the answer boundary.
  Rank-vs-weight conversions (``count_at_least``) are a single bisect.
* :class:`MatchScan` — an incremental scan of one predicate over one
  :class:`ColumnSet`.  It remembers its frontier and every match found
  so far, so a monitored probe, a thresholded fetch, and a larger-``k``
  retry over the same predicate all *resume* one traversal instead of
  repeating it — this is the array-backed representation behind
  ``batched()`` memo windows (a scan is a ``(ColumnSet ref, prefix)``
  pair, not a copied element list).
* a **compiled-predicate cache** — per ``predicate_key``, a closure
  specialized to the concrete predicate shape (fields hoisted into
  locals) replaces virtual ``matches()`` dispatch inside scan chunks.
  Structures register compilers next to their predicate classes with
  :func:`register_predicate_compiler`; unregistered predicates fall
  back to the bound ``matches`` method, so the fast path never changes
  *which* elements match, only how fast the test runs.

Answers are identical to the Element paths by construction: weights are
distinct (the repo's standing precondition), so the first ``k`` matches
of a weight-descending scan *are* the unique top-k answer, and a
truncated probe truncates under exactly the legacy condition (strictly
more than ``limit`` matches exist).

Columnar execution engages automatically only for RAM-resident ground
structures: external-memory structures carry an
:class:`~repro.em.model.EMContext` in their ``ctx`` attribute, and
bypassing them would silently zero the I/O accounting that the EM
benches and fault-injection sweeps measure (see :func:`auto_columnar`).
"""

from __future__ import annotations

import itertools
from array import array
from bisect import bisect_left, bisect_right
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Type,
)

from repro.core.interfaces import PrioritizedResult
from repro.core.problem import Element, Predicate

#: Elements per scan chunk: one listcomp frame amortized over this many
#: membership tests keeps interpreter overhead per element low while
#: early exits still stop within one chunk of the needed prefix.
_CHUNK = 512

#: Monotonic ids for structures that key shared memo windows.  ``id()``
#: is unusable for this: a window outlives structures (guard rebuilds,
#: ladder reconstruction) and CPython reuses freed addresses, so two
#: structures alive at *different* times could alias one another's
#: memoized answers.  A process-wide counter can never collide.
_structure_ids = itertools.count(1)


def next_structure_id() -> int:
    """A process-unique monotonic id for memo-window keying."""
    return next(_structure_ids)


# ----------------------------------------------------------------------
# Global enable switch (tests and --compare runs flip it)
# ----------------------------------------------------------------------
_ENABLED = True


def columnar_enabled() -> bool:
    """Whether columnar fast paths may engage at all."""
    return _ENABLED


def set_columnar_enabled(on: bool) -> bool:
    """Flip the global switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    return previous


@contextmanager
def columnar_disabled():
    """Force the legacy Element paths within the block (tests, --compare)."""
    previous = set_columnar_enabled(False)
    try:
        yield
    finally:
        set_columnar_enabled(previous)


def auto_columnar(ground: object) -> bool:
    """Whether a reduction over ``ground`` should run columnar.

    RAM-model structures qualify; EM-backed structures (anything
    carrying an ``EMContext`` as ``.ctx``) do not — their I/O charging
    and fault injection live in the block-transfer layer a flat-array
    bypass would skip.
    """
    return _ENABLED and getattr(ground, "ctx", None) is None


# ----------------------------------------------------------------------
# Predicate keys (canonical home; repro.serving.batch re-exports)
# ----------------------------------------------------------------------
def predicate_key(predicate: Predicate) -> Hashable:
    """A stable grouping/caching key for a predicate.

    Frozen-dataclass predicates (the repo convention) are hashable and
    key as themselves; unhashable predicates fall back to their type
    and ``repr`` — deterministic as long as the repr is (dataclasses'
    generated reprs are).
    """
    try:
        hash(predicate)
    except TypeError:
        return (type(predicate).__qualname__, repr(predicate))
    return predicate


# ----------------------------------------------------------------------
# Compiled predicates
# ----------------------------------------------------------------------
_COMPILERS: Dict[type, Callable[[Predicate], Callable[[Any], bool]]] = {}
_MATCHER_CACHE: Dict[Hashable, Callable[[Any], bool]] = {}
_MATCHER_CACHE_MAX = 2048


def register_predicate_compiler(cls: Type[Predicate]):
    """Class decorator target: register a closure compiler for ``cls``.

    A compiler takes one predicate instance and returns a plain
    ``obj -> bool`` callable with the predicate's fields captured in
    the closure — the specialized form :class:`MatchScan` calls in its
    chunk loop.  The compiled test must be *extensionally identical* to
    ``cls.matches``; the property tests in ``tests/core/test_columnar``
    sweep every registered shape against the virtual path.
    """

    def decorator(compiler: Callable[[Predicate], Callable[[Any], bool]]):
        _COMPILERS[cls] = compiler
        return compiler

    return decorator


def compiled_matcher(predicate: Predicate) -> Callable[[Any], bool]:
    """The specialized membership test for ``predicate`` (cached).

    Falls back to the bound ``matches`` method when no compiler is
    registered — still a win over re-binding per call, and always
    semantically exact.
    """
    key = predicate_key(predicate)
    matcher = _MATCHER_CACHE.get(key)
    if matcher is None:
        compiler = _COMPILERS.get(type(predicate))
        matcher = compiler(predicate) if compiler is not None else predicate.matches
        if len(_MATCHER_CACHE) >= _MATCHER_CACHE_MAX:
            _MATCHER_CACHE.clear()
        _MATCHER_CACHE[key] = matcher
    return matcher


# ----------------------------------------------------------------------
# Columns and scans
# ----------------------------------------------------------------------
class DescendingElements(list):
    """A list of elements known to be in strictly descending weight order.

    :func:`repro.em.selection.select_top_k` recognizes the marker and
    answers by slicing instead of heap selection — the columnar paths
    produce their candidates already ordered, so re-selecting them
    would pay ``O(m log k)`` for nothing.
    """

    __slots__ = ()


class ColumnSet:
    """One element set as parallel weight-descending columns.

    ``elements[i]`` has weight ``-neg_weights[i]`` and object
    ``objs[i]``; ``neg_weights`` ascends, so ``bisect`` gives the
    rank/weight conversions directly.  Supports ``O(n)`` positional
    insert/delete for the dynamic reduction (bisect finds the slot;
    at bench scale the array move is far cheaper than what it saves
    per query, and rebuilds re-sort from scratch anyway).
    """

    __slots__ = ("elements", "objs", "neg_weights", "version")

    def __init__(self, elements: Sequence[Element], presorted: bool = False) -> None:
        ordered = list(elements)
        if not presorted:
            ordered.sort(key=_neg_weight)
        self.elements: List[Element] = ordered
        self.objs: List[Any] = [element.obj for element in ordered]
        self.neg_weights = array("d", [-element.weight for element in ordered])
        #: Bumped on every mutation so cached scans can detect staleness.
        self.version = 0

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self.elements)

    def count_at_least(self, tau: float) -> int:
        """How many elements have weight ``>= tau`` — one bisect."""
        return bisect_right(self.neg_weights, -tau)

    def position_of(self, element: Element) -> int:
        """Rank (0-based) of ``element``; the stable index map.

        Distinct weights make the position a single bisect; raises
        ``KeyError`` when the element is not present.
        """
        position = bisect_left(self.neg_weights, -element.weight)
        if (
            position < len(self.elements)
            and self.elements[position] == element
        ):
            return position
        raise KeyError(f"element not present: {element!r}")

    def insert(self, element: Element) -> None:
        """Keep the columns sorted through a dynamic insert."""
        position = bisect_left(self.neg_weights, -element.weight)
        self.neg_weights.insert(position, -element.weight)
        self.objs.insert(position, element.obj)
        self.elements.insert(position, element)
        self.version += 1

    def delete(self, element: Element) -> None:
        """Remove one element (``KeyError`` when absent)."""
        position = self.position_of(element)
        del self.neg_weights[position]
        del self.objs[position]
        del self.elements[position]
        self.version += 1

    def scan(self, predicate: Predicate) -> "MatchScan":
        """A fresh incremental scan of ``predicate`` over these columns."""
        return MatchScan(self, predicate)


def _neg_weight(element: Element) -> float:
    return -element.weight


class MatchScan:
    """Incremental evaluation of one predicate over one :class:`ColumnSet`.

    The scan advances a frontier ``upto`` through the weight-descending
    columns and records the *positions* of matches (ascending position
    == descending weight).  Every query primitive the reductions need —
    monitored probe, thresholded fetch, direct top-k — is a resumption
    of the same traversal, so repeats over one predicate (different
    ``k`` values in a batch, a probe followed by its thresholded fetch,
    a guard retry) never rescan a prefix.  Holding ``(columns, upto,
    positions)`` instead of copied element lists is what makes
    ``batched()`` memo windows array-backed.
    """

    __slots__ = (
        "columns", "predicate", "_match", "upto", "positions", "_version",
        "_pending",
    )

    def __init__(self, columns: ColumnSet, predicate: Predicate) -> None:
        self.columns = columns
        self.predicate = predicate
        self._match = compiled_matcher(predicate)
        self.upto = 0
        self.positions: List[int] = []
        self._version = columns.version
        #: A recorded-but-unapplied :meth:`seed_prefix`, installed only
        #: if the scan is consulted again (most predicates never are).
        self._pending: Optional[tuple] = None

    # ------------------------------------------------------------------
    def fresh(self) -> bool:
        """Whether the underlying columns are unchanged since creation."""
        return self._version == self.columns.version

    @property
    def exhausted(self) -> bool:
        self._apply_pending()
        return self.upto >= len(self.columns)

    def matches_found(self) -> int:
        self._apply_pending()
        return len(self.positions)

    # ------------------------------------------------------------------
    def _advance_to(self, stop: int) -> None:
        """Scan columns[upto:stop] in chunks, recording match positions."""
        objs = self.columns.objs
        match = self._match
        positions = self.positions
        upto = self.upto
        while upto < stop:
            hi = min(upto + _CHUNK, stop)
            block = objs[upto:hi]
            positions.extend(
                [i for i, obj in enumerate(block, upto) if match(obj)]
            )
            upto = hi
        self.upto = upto

    def ensure_prefix(self, stop: int) -> None:
        """Extend the frontier to cover the first ``stop`` positions."""
        self._apply_pending()
        n = len(self.columns)
        if stop > n:
            stop = n
        if stop > self.upto:
            self._advance_to(stop)

    def ensure_matches(self, m: int) -> int:
        """Scan until ``m`` matches are known or the columns end."""
        self._apply_pending()
        n = len(self.columns)
        positions = self.positions
        while len(positions) < m and self.upto < n:
            self._advance_to(min(self.upto + _CHUNK, n))
        return len(positions)

    def seed_prefix(self, elements: Sequence[Element], upto: int) -> None:
        """Record externally computed knowledge of a prefix.

        ``elements`` must be *exactly* the matches among the first
        ``upto`` positions (any order) — e.g. a non-truncated legacy
        probe (``upto = len(columns)``) or a non-truncated thresholded
        fetch (``upto = count_at_least(tau)``).  Sublinear structures
        compute these in ``O(log + t)``; seeding hands the scan that
        knowledge so repeats materialize instead of re-traversing.

        Recording is O(1): the positions are resolved lazily, only if
        the scan is consulted again — one-shot predicates (the common
        cold case) never pay for it.
        """
        upto = min(upto, len(self.columns))
        if upto <= self.upto:
            return  # the scan already knows at least this much
        if self._pending is None or upto > self._pending[1]:
            self._pending = (list(elements), upto)

    def _apply_pending(self) -> None:
        pending = self._pending
        if pending is None:
            return
        self._pending = None
        elements, upto = pending
        if upto > self.upto:
            position_of = self.columns.position_of
            self.positions = sorted(
                position_of(element) for element in elements
            )
            self.upto = upto

    # ------------------------------------------------------------------
    def _materialize(self, m: int) -> DescendingElements:
        """The first ``m`` known matches as Elements, heaviest first."""
        elements = self.columns.elements
        return DescendingElements([elements[p] for p in self.positions[:m]])

    def first(self, k: int) -> DescendingElements:
        """The top-``k`` matches — the direct columnar top-k answer.

        Early exit: scanning stops as soon as ``k`` matches are known,
        because under distinct weights the first ``k`` matches of a
        weight-descending scan are exactly the unique top-k answer.
        """
        if k <= 0:
            return DescendingElements()
        found = self.ensure_matches(k)
        return self._materialize(min(k, found))

    def probe(self, limit: int) -> PrioritizedResult:
        """The monitored probe: everything, or truncation past ``limit``.

        Identical to ``index.query(predicate, -inf, limit=limit)`` on a
        legacy prioritized structure: ``truncated`` iff strictly more
        than ``limit`` elements match, and a non-truncated result holds
        every match.
        """
        self.ensure_matches(limit + 1)
        found = len(self.positions)
        return PrioritizedResult(self._materialize(found), truncated=found > limit)

    def fetch(self, tau: float, limit: Optional[int] = None) -> PrioritizedResult:
        """The thresholded fetch: matches with weight ``>= tau``.

        The weight threshold becomes a *positional* bound by one bisect
        on the weight column, so the scan never leaves the qualifying
        prefix.  With ``limit``, truncates under the legacy condition
        (strictly more than ``limit`` qualifying matches).
        """
        self._apply_pending()
        stop = self.columns.count_at_least(tau)
        positions = self.positions
        if limit is None:
            self.ensure_prefix(stop)
            m = bisect_left(positions, stop)
            return PrioritizedResult(self._materialize(m), truncated=False)
        while self.upto < stop and bisect_left(positions, stop) <= limit:
            self._advance_to(min(self.upto + _CHUNK, stop))
        m = bisect_left(positions, stop)
        return PrioritizedResult(self._materialize(m), truncated=m > limit)

    def all_matches(self) -> DescendingElements:
        """Every match, heaviest first (the exact-fallback scan)."""
        n = len(self.columns)
        self.ensure_prefix(n)
        return self._materialize(len(self.positions))


# ----------------------------------------------------------------------
# Scan caches (per-index, bounded)
# ----------------------------------------------------------------------
class ScanCache:
    """A bounded per-index table of live :class:`MatchScan` objects.

    Keyed by ``predicate_key``; cleared wholesale on any index update
    (a scan must never survive a state change) and whenever it grows
    past ``max_entries`` — scans are pure accelerations, so dropping
    them is always safe.

    Two acquisition modes:

    * :meth:`get` — always returns a scan, creating one if needed.  For
      sites where flat scanning is the right plan regardless (direct
      top-k answers, exact fallbacks that traverse everything anyway).
    * :meth:`visit` — returns a scan only from the *second* visit for a
      predicate.  A sublinear ground structure beats a cold flat scan
      on selective predicates, so first visits stay on the structure;
      the visit is recorded in O(1), and any complete legacy result the
      caller reports via :meth:`record_seed` is carried into the scan
      at promotion — repeats then answer from the columns (dense
      predicates prove truncation by early exit; sparse ones
      materialize their seeded match set).
    """

    __slots__ = ("max_entries", "_scans", "_pending", "_last")

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = max_entries
        self._scans: Dict[Hashable, MatchScan] = {}
        #: First-visit records: key -> [columns, version, seed-or-None].
        self._pending: Dict[Hashable, list] = {}
        #: The record touched by the most recent first-visit, so
        #: :meth:`record_seed` needs no second key computation.
        self._last: Optional[list] = None

    def __len__(self) -> int:
        return len(self._scans)

    def get(self, columns: ColumnSet, predicate: Predicate) -> MatchScan:
        """The cached scan for ``predicate``, or a fresh one (cached)."""
        key = predicate_key(predicate)
        scan = self._scans.get(key)
        if scan is None or scan.columns is not columns or not scan.fresh():
            scan = MatchScan(columns, predicate)
            self._pending.pop(key, None)
            if len(self._scans) >= self.max_entries:
                self._scans.clear()
            self._scans[key] = scan
        return scan

    def visit(self, columns: ColumnSet, predicate: Predicate) -> Optional[MatchScan]:
        """A scan on repeat visits; ``None`` (recorded) on the first."""
        key = predicate_key(predicate)
        scan = self._scans.get(key)
        if scan is not None and scan.columns is columns and scan.fresh():
            self._last = None
            return scan
        record = self._pending.get(key)
        if (
            record is None
            or record[0] is not columns
            or record[1] != columns.version
        ):
            if len(self._pending) >= self.max_entries:
                self._pending.clear()
            self._last = self._pending[key] = [columns, columns.version, None]
            return None
        # Second visit: promote to a live scan, carrying any seed.
        self._last = None
        scan = MatchScan(columns, predicate)
        if record[2] is not None:
            scan.seed_prefix(*record[2])
        del self._pending[key]
        if len(self._scans) >= self.max_entries:
            self._scans.clear()
        self._scans[key] = scan
        return scan

    def record_seed(self, elements: Sequence[Element], upto: int) -> None:
        """Attach a complete-prefix result to the last first-visit record.

        Applies to the record created (or kept) by the most recent
        :meth:`visit` on this cache that returned ``None`` — callers
        report a legacy result right after the visit that routed them
        to the legacy path.  ``elements`` must be exactly the matches
        among the first ``upto`` positions (the
        :meth:`MatchScan.seed_prefix` contract); only a reference is
        stored, resolved at promotion.
        """
        record = self._last
        if record is None:
            return
        seed = record[2]
        if seed is None or upto > seed[1]:
            record[2] = (elements, upto)

    def peek(self, predicate: Predicate) -> Optional[MatchScan]:
        """The cached scan if present and fresh, else ``None``."""
        scan = self._scans.get(predicate_key(predicate))
        if scan is not None and not scan.fresh():
            return None
        return scan

    def clear(self) -> None:
        self._scans.clear()
        self._pending.clear()
        self._last = None


__all__ = [
    "ColumnSet",
    "DescendingElements",
    "MatchScan",
    "ScanCache",
    "auto_columnar",
    "columnar_disabled",
    "columnar_enabled",
    "compiled_matcher",
    "next_structure_id",
    "predicate_key",
    "register_predicate_compiler",
    "set_columnar_enabled",
]
