"""LoadGenerator: open-loop queueing against a real engine, counted."""

from __future__ import annotations

import pytest

from loadgen_util import make_elements, make_pool, make_stack, tight_brownout
from repro.core.problem import top_k_of
from repro.loadgen import (
    ConstantRate,
    LoadGenerator,
    OpenLoopSchedule,
    ServiceModel,
    UniformMix,
)
from repro.resilience.guard import RetryBudget

# Per-request work is ~1 virtual unit under this mix (high hit rate);
# FAST serves hundreds per second per server, SLOW a handful.
FAST = ServiceModel(unit_time=0.001, traversal_cost=1.0, hit_cost=0.1)
SLOW = ServiceModel(unit_time=0.01, traversal_cost=20.0, hit_cost=4.0)


def make_loadgen(engine, elements, rate=50.0, model=FAST, seed=0, **kwargs):
    pool = make_pool(elements)
    return LoadGenerator(
        engine,
        schedule=OpenLoopSchedule(ConstantRate(rate), seed=seed),
        mix=UniformMix(pool, k_range=(1, 6), seed=seed),
        model=model,
        elements=elements,
        exact_check_rate=0.25,
        seed=seed,
        **kwargs,
    )


class TestStableRegime:
    def test_underload_serves_everything_exactly(self):
        elements, _, engine = make_stack()
        loadgen = make_loadgen(engine, elements, rate=40.0)
        report = loadgen.run(duration=5.0, tick=1.0)
        assert report.fresh_arrivals > 150
        assert report.served == report.fresh_arrivals
        assert report.sheds == 0
        assert report.backlog == 0
        assert report.goodput == 1.0
        assert report.exact_checked > 0
        assert report.exact_ok == report.exact_checked

    def test_run_is_deterministic(self):
        results = []
        for _ in range(2):
            elements, _, engine = make_stack()
            loadgen = make_loadgen(engine, elements, rate=60.0)
            results.append(loadgen.run(duration=4.0, tick=0.5).summary())
        assert results[0] == results[1]


class TestOpenLoopProperty:
    def test_arrivals_independent_of_service_speed(self):
        """The defining open-loop property: offered load never adapts."""
        counts = []
        for model in (FAST, SLOW):
            elements, _, engine = make_stack(max_pending=10_000)
            loadgen = make_loadgen(engine, elements, rate=80.0, model=model)
            counts.append(loadgen.run(duration=4.0, tick=1.0).fresh_arrivals)
        assert counts[0] == counts[1]

    def test_slow_service_builds_latency_not_fewer_arrivals(self):
        elements, _, engine = make_stack(max_pending=10_000)
        fast_gen = make_loadgen(engine, elements, rate=80.0, model=FAST)
        fast = fast_gen.run(duration=4.0, tick=1.0)

        elements, _, engine = make_stack(max_pending=10_000)
        slow_gen = make_loadgen(engine, elements, rate=80.0, model=SLOW)
        slow = slow_gen.run(duration=4.0, tick=1.0)

        assert slow.latency.p99 > fast.latency.p99 * 5
        assert slow.backlog > 0          # genuine queueing collapse


class TestOverload:
    def test_queue_full_sheds_when_pending_bound_hit(self):
        elements, _, engine = make_stack(max_pending=16)
        loadgen = make_loadgen(engine, elements, rate=300.0, model=SLOW)
        report = loadgen.run(duration=3.0, tick=1.0)
        assert report.queue_sheds > 0
        assert report.dropped == report.sheds  # no retry budget: all lost
        assert report.served + report.backlog + report.dropped == (
            report.fresh_arrivals
        )

    def test_deadline_sheds_when_projected_wait_exceeds_budget(self):
        elements, _, engine = make_stack(max_pending=10_000)
        loadgen = make_loadgen(
            engine, elements, rate=300.0, model=SLOW, deadline=0.5
        )
        report = loadgen.run(duration=3.0, tick=1.0)
        assert report.deadline_sheds > 0

    def test_served_answers_stay_oracle_exact_under_overload(self):
        elements, _, engine = make_stack(max_pending=32)
        loadgen = make_loadgen(engine, elements, rate=200.0, model=SLOW)
        report = loadgen.run(duration=3.0, tick=1.0)
        assert report.sheds > 0
        assert report.exact_checked > 0
        assert report.exact_ok == report.exact_checked


class TestRetryBudget:
    def test_retries_resubmit_shed_requests(self):
        elements, _, engine = make_stack(max_pending=16)
        budget = RetryBudget(ratio=0.1, burst=8.0)
        loadgen = make_loadgen(
            engine, elements, rate=300.0, model=SLOW, retry_budget=budget
        )
        report = loadgen.run(duration=3.0, tick=1.0)
        assert report.retries > 0
        assert report.submits == report.fresh_arrivals + report.retries

    def test_amplification_stays_bounded(self):
        """Token bucket: retries <= ratio * fresh + burst, so the
        amplification cap the ISSUE demands (< 1.2x) holds even when
        every fresh request is shed."""
        elements, _, engine = make_stack(max_pending=4)
        budget = RetryBudget(ratio=0.1, burst=8.0)
        loadgen = make_loadgen(
            engine, elements, rate=500.0, model=SLOW, retry_budget=budget
        )
        report = loadgen.run(duration=4.0, tick=1.0)
        assert report.sheds > 500          # drowning
        assert report.retries <= 0.1 * report.fresh_arrivals + 8.0
        assert report.amplification < 1.2
        assert report.retries_denied > 0


class TestDegradedServers:
    def test_armed_latency_plan_removes_capacity(self):
        healthy_elements, _, healthy_engine = make_stack(max_pending=10_000)
        healthy_gen = make_loadgen(healthy_engine, healthy_elements, rate=80.0)
        healthy = healthy_gen.run(duration=4.0, tick=1.0)

        elements, sharded, engine = make_stack(max_pending=10_000)
        for shard in sharded.router.shards.values():
            shard.machine.plan.read_latency = 9
            shard.machine.plan.arm()
        degraded_gen = make_loadgen(engine, elements, rate=80.0)
        degraded = degraded_gen.run(duration=4.0, tick=1.0)

        assert degraded.latency.p99 > healthy.latency.p99
        # 1/(1+9) speed per machine -> ~10x less capacity.
        assert degraded_gen._servers() == pytest.approx(
            healthy_gen._servers() / 10.0
        )

    def test_split_shard_adds_capacity(self):
        elements, sharded, engine = make_stack(num_shards=2)
        loadgen = make_loadgen(engine, elements)
        before = loadgen._servers()
        donor = sharded.splittable_shard()
        assert donor is not None
        sharded.split_shard(donor)
        assert loadgen._servers() == before + 1


class TestBrownoutUnderLoad:
    def test_brownout_flags_propagate_to_report(self):
        elements, _, engine = make_stack(
            max_pending=10_000, brownout=tight_brownout(queue_high=4)
        )
        loadgen = make_loadgen(engine, elements, rate=300.0, model=SLOW)
        report = loadgen.run(duration=3.0, tick=1.0)
        assert engine.brownout.stats.escalations > 0
        assert report.reduced_k_served > 0
        # Degraded answers are never counted against the oracle.
        assert report.exact_ok == report.exact_checked

    def test_reduced_k_answers_are_exact_prefixes(self):
        elements, _, engine = make_stack(
            max_pending=10_000, brownout=tight_brownout(queue_high=2)
        )
        pool = make_pool(elements)
        engine.brownout.observe(10)  # force level 1
        engine.brownout.observe(10)  # force level 2 (sustain_drains=1)
        assert engine.brownout.effective_k(6) == 2
        engine.submit(pool[0], 6)
        answers = engine.drain()
        capped = answers[0]
        assert capped == top_k_of(elements, pool[0], 6)[: len(capped)]


class TestTelemetryFeed:
    def test_window_summary_reports_collapse_as_rising_latency(self):
        elements, _, engine = make_stack(max_pending=10_000)
        stall = ServiceModel(unit_time=10.0)  # one batch spans many ticks
        loadgen = make_loadgen(engine, elements, rate=50.0, model=stall)
        loadgen.run(duration=3.0, tick=1.0)
        summary = loadgen.window_summary()
        # Nothing completed, yet p99 reports the oldest waiter's age.
        assert summary["p99"] > 1.0

    def test_service_estimate_feeds_engine_admission(self):
        elements, _, engine = make_stack()
        loadgen = make_loadgen(engine, elements, rate=50.0)
        loadgen.run(duration=3.0, tick=1.0)
        assert engine.service_estimate > 0.0
        assert engine._estimate_pinned
