"""Tests for 1D range reporting structures."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import oracle_max, oracle_prioritized, sorted_desc
from repro.core.problem import Element
from repro.structures.range1d import (
    RangePredicate1D,
    RangeTree1DCounter,
    RangeTree1DMax,
    RangeTree1DPrioritized,
)


def make_points(n, seed=0, universe=1000):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    coords = rng.sample(range(universe * 4), n)
    return [Element(float(coords[i]), float(weights[i]), payload=i) for i in range(n)]


def random_ranges(elements, rng, count):
    """Ranges biased onto exact coordinates (closed-boundary cases)."""
    out = []
    coords = [e.obj for e in elements]
    for _ in range(count):
        if rng.random() < 0.4 and coords:
            a = rng.choice(coords)
            b = rng.choice(coords)
        else:
            a, b = rng.uniform(-10, 4010), rng.uniform(-10, 4010)
        lo, hi = min(a, b), max(a, b)
        out.append(RangePredicate1D(lo, hi))
    return out


class TestPredicate:
    def test_closed_range(self):
        p = RangePredicate1D(2.0, 5.0)
        assert p.matches(2.0) and p.matches(5.0) and p.matches(3.3)
        assert not p.matches(1.999) and not p.matches(5.001)


class TestPrioritized:
    def test_matches_oracle(self):
        elements = make_points(300, 1)
        index = RangeTree1DPrioritized(elements)
        rng = random.Random(2)
        for p in random_ranges(elements, rng, 80):
            tau = rng.uniform(0, 3000)
            assert sorted_desc(index.query(p, tau).elements) == oracle_prioritized(
                elements, p, tau
            )

    def test_limit_truncation(self):
        elements = make_points(200, 3)
        index = RangeTree1DPrioritized(elements)
        p = RangePredicate1D(-math.inf, math.inf)
        r = index.query(p, -math.inf, limit=5)
        assert r.truncated and len(r.elements) == 6

    def test_empty(self):
        index = RangeTree1DPrioritized([])
        assert index.query(RangePredicate1D(0, 1), 0.0).elements == []

    def test_empty_range(self):
        elements = make_points(50, 4)
        index = RangeTree1DPrioritized(elements)
        assert index.query(RangePredicate1D(-100, -50), -math.inf).elements == []

    def test_canonical_node_count_logarithmic(self):
        elements = make_points(1024, 5)
        index = RangeTree1DPrioritized(elements)
        index.ops.reset()
        index.query(RangePredicate1D(100.0, 3900.0), math.inf)
        # O(log n) canonical nodes touched even for a huge range.
        assert index.ops.node_visits <= 2 * math.log2(1024) + 2


class TestMax:
    def test_matches_oracle(self):
        elements = make_points(300, 6)
        index = RangeTree1DMax(elements)
        rng = random.Random(7)
        for p in random_ranges(elements, rng, 100):
            assert index.query(p) == oracle_max(elements, p)

    def test_single_point_range(self):
        elements = make_points(100, 8)
        index = RangeTree1DMax(elements)
        e = elements[0]
        assert index.query(RangePredicate1D(e.obj, e.obj)) is not None

    def test_empty_answer(self):
        elements = make_points(50, 9)
        index = RangeTree1DMax(elements)
        assert index.query(RangePredicate1D(-5, -1)) is None


class TestCounter:
    def test_exact_counts(self):
        elements = make_points(300, 10)
        counter = RangeTree1DCounter(elements)
        rng = random.Random(11)
        for p in random_ranges(elements, rng, 100):
            assert counter.count(p) == sum(1 for e in elements if p.matches(e.obj))

    def test_approximation_factor_is_one(self):
        assert RangeTree1DCounter(make_points(10, 12)).approximation_factor == 1.0

    def test_empty(self):
        assert RangeTree1DCounter([]).count(RangePredicate1D(0, 1)) == 0


coordinate = st.integers(0, 100)


@settings(max_examples=40, deadline=None)
@given(
    coords=st.lists(coordinate, min_size=1, max_size=60, unique=True),
    a=st.integers(-5, 105),
    b=st.integers(-5, 105),
    seed=st.integers(0, 100),
)
def test_property_all_three(coords, a, b, seed):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * len(coords)), len(coords))
    elements = [Element(float(c), float(w)) for c, w in zip(coords, weights)]
    p = RangePredicate1D(float(min(a, b)), float(max(a, b)))
    index = RangeTree1DPrioritized(elements)
    assert sorted_desc(index.query(p, -math.inf).elements) == oracle_prioritized(
        elements, p, -math.inf
    )
    assert RangeTree1DMax(elements).query(p) == oracle_max(elements, p)
    assert RangeTree1DCounter(elements).count(p) == sum(
        1 for e in elements if p.matches(e.obj)
    )
