"""Self-healing operations: detect → localize → mitigate, then grade it.

PRs 1–5 made every failure injectable and every repair mechanical —
but each lever fired *reactively inside a single query*.  This
subsystem closes ROADMAP item 5 by watching the telemetry those layers
already emit and pulling the same levers **proactively**, fleet-wide:

* :mod:`repro.ops.telemetry` — per-tick deltas + gauges over
  :class:`HealthSummary`, per-machine :class:`FaultStats`, replication,
  sharding, and serving state;
* :mod:`repro.ops.detector` — deterministic threshold + EWMA rules
  over the sample stream (no wall clock: simulated ticks);
* :mod:`repro.ops.localizer` — anomalies → blamed machine / replica /
  shard / subsystem scopes;
* :mod:`repro.ops.mitigation` — the escalation ladder over *existing*
  levers only (failover, scrub, disk reboot, shard recovery,
  rebalance, cache flush);
* :mod:`repro.ops.operator` — the tick loop with cooldowns, the
  do-no-harm guard, and post-mitigation verification;
* :mod:`repro.ops.incidents` — detected-at → localized-to → lever →
  resolved-at timelines;
* :mod:`repro.ops.scenarios` — scripted chaos with known ground truth,
  graded on detection latency, localization accuracy, and
  time-to-mitigate (the E20 benchmark's substrate).
"""

from repro.ops.detector import (
    Anomaly,
    AnomalyDetector,
    DetectorPolicy,
    SCOPE_MACHINE,
    SCOPE_REPLICA,
    SCOPE_SHARD,
    SCOPE_SUBSYSTEM,
)
from repro.ops.incidents import (
    Incident,
    IncidentLog,
    MitigationRecord,
    STATUS_EXHAUSTED,
    STATUS_MITIGATING,
    STATUS_OPEN,
    STATUS_RESOLVED,
)
from repro.ops.localizer import Blame, FaultLocalizer
from repro.ops.mitigation import (
    LEVER_RECOVER_REPLICA,
    LEVER_SPLIT_SHARD,
    MitigationPlanner,
    PlannedAction,
)
from repro.ops.operator import Operator, OperatorPolicy, TickReport
from repro.ops.scenarios import (
    ChaosScenarioRunner,
    DEFAULT_SCENARIOS,
    ScenarioResult,
    ScenarioSpec,
    grade_suite,
)
from repro.ops.telemetry import MachineDelta, TelemetryCollector, TelemetrySample

__all__ = [
    "TelemetrySample",
    "TelemetryCollector",
    "MachineDelta",
    "AnomalyDetector",
    "DetectorPolicy",
    "Anomaly",
    "SCOPE_MACHINE",
    "SCOPE_REPLICA",
    "SCOPE_SHARD",
    "SCOPE_SUBSYSTEM",
    "FaultLocalizer",
    "Blame",
    "MitigationPlanner",
    "PlannedAction",
    "LEVER_SPLIT_SHARD",
    "LEVER_RECOVER_REPLICA",
    "Operator",
    "OperatorPolicy",
    "TickReport",
    "Incident",
    "IncidentLog",
    "MitigationRecord",
    "STATUS_OPEN",
    "STATUS_MITIGATING",
    "STATUS_RESOLVED",
    "STATUS_EXHAUSTED",
    "ChaosScenarioRunner",
    "ScenarioSpec",
    "ScenarioResult",
    "DEFAULT_SCENARIOS",
    "grade_suite",
]
