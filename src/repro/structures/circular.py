"""Circular (ball) range structures via the lifting map (Corollary 1).

Top-k circular reporting in ``R^d`` reduces to top-k halfspace
reporting in ``R^{d+1}`` by lifting every point onto the unit
paraboloid (``x -> (x, |x|^2)``) and every query ball to a halfspace
(:func:`repro.geometry.duality.lift_ball_to_halfspace`).  This module
realises the corollary literally: the circular structures *are* the
halfspace kd-tree structures built over the lifted points.

The indexed elements keep their original ``R^d`` objects — the lift is
internal — so the reductions' fallback paths (which evaluate
``predicate.matches`` on original objects) stay correct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.columnar import register_predicate_compiler
from repro.core.interfaces import MaxIndex, OpCounter, PrioritizedIndex, PrioritizedResult
from repro.core.problem import Element, Predicate
from repro.geometry.duality import lift_ball_to_halfspace, lift_point
from repro.geometry.primitives import Ball, Point
from repro.structures.kdtree import HalfspacePredicate, KDTreeIndex


@dataclass(frozen=True)
class CircularPredicate(Predicate):
    """Matches every point inside the closed query ball."""

    ball: Ball

    def matches(self, obj: Point) -> bool:
        return self.ball.contains(obj)


@register_predicate_compiler(CircularPredicate)
def _compile_circular(predicate: CircularPredicate):
    """Closure-specialized ball test; 2D unrolls the squared distance."""
    center, r2 = predicate.ball.center, predicate.ball.radius ** 2
    if len(center) == 2:
        cx, cy = center
        return lambda obj: (cx - obj[0]) ** 2 + (cy - obj[1]) ** 2 <= r2
    return predicate.ball.contains


def _lift_elements(elements: Sequence[Element]) -> List[Element]:
    """Lift each element's point; the payload carries the original."""
    return [
        Element(lift_point(element.obj), element.weight, payload=element)
        for element in elements
    ]


def _unlift(lifted: Sequence[Element]) -> List[Element]:
    return [element.payload for element in lifted]


class LiftedCircularPrioritized(PrioritizedIndex):
    """Prioritized ball reporting = lifted halfspace reporting."""

    def __init__(self, elements: Sequence[Element], leaf_size: int = 8) -> None:
        self.ops = OpCounter()
        self._n = len(elements)
        self._tree = KDTreeIndex(_lift_elements(elements), leaf_size)

    @property
    def n(self) -> int:
        return self._n

    def query_cost_bound(self) -> float:
        """Polynomial, inherited from the lifted kd-tree."""
        return self._tree.query_cost_bound()

    def query(
        self, predicate: CircularPredicate, tau: float, limit: Optional[int] = None
    ) -> PrioritizedResult:
        halfspace = lift_ball_to_halfspace(predicate.ball)
        result = self._tree.query(HalfspacePredicate(halfspace), tau, limit)
        self.ops.node_visits += self._tree.ops.node_visits
        self._tree.ops.reset()
        return PrioritizedResult(_unlift(result.elements), truncated=result.truncated)

    def space_units(self) -> int:
        return self._tree.space_units()


class LiftedCircularMax(MaxIndex):
    """Max-weight point in a ball = lifted halfspace max."""

    def __init__(self, elements: Sequence[Element], leaf_size: int = 8) -> None:
        self.ops = OpCounter()
        self._n = len(elements)
        self._tree = KDTreeIndex(_lift_elements(elements), leaf_size)

    @property
    def n(self) -> int:
        return self._n

    def query_cost_bound(self) -> float:
        return max(1.0, math.log2(max(2, self._n)) ** 2)

    def query(self, predicate: CircularPredicate) -> Optional[Element]:
        halfspace = lift_ball_to_halfspace(predicate.ball)
        hit = self._tree.max_query(HalfspacePredicate(halfspace))
        self.ops.node_visits += self._tree.ops.node_visits
        self._tree.ops.reset()
        return hit.payload if hit is not None else None

    def space_units(self) -> int:
        return self._tree.space_units()
