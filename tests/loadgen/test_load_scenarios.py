"""Scripted scenarios: every shape runs, the acceptance pair holds."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.loadgen import (
    DEFAULT_LOAD_SCENARIOS,
    SHAPE_FAULT_OVERLAP,
    SHAPE_FLASH_CROWD,
    LoadScenarioRunner,
    LoadScenarioSpec,
)
from repro.resilience.errors import InvalidConfiguration


def find_default(shape):
    return next(s for s in DEFAULT_LOAD_SCENARIOS if s.shape == shape)


class TestSpecValidation:
    def test_unknown_shape_rejected(self):
        with pytest.raises(InvalidConfiguration):
            LoadScenarioSpec(name="x", shape="tsunami")

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(InvalidConfiguration):
            LoadScenarioSpec(name="x", duration=0.0)


class TestAllShapesRun:
    @pytest.mark.parametrize(
        "spec", DEFAULT_LOAD_SCENARIOS, ids=[s.name for s in DEFAULT_LOAD_SCENARIOS]
    )
    def test_default_scenario_serves_exactly(self, spec):
        # Shortened duration: shape coverage, not the full experiment.
        short = replace(spec, duration=min(spec.duration, 24.0))
        result = LoadScenarioRunner().run(short)
        report = result.report
        assert report.fresh_arrivals > 0
        assert report.served > 0
        assert report.exact_checked > 0
        assert report.exact_ok == report.exact_checked
        assert report.amplification < 1.2

    def test_runs_are_deterministic(self):
        spec = replace(find_default(SHAPE_FLASH_CROWD), duration=16.0)
        a = LoadScenarioRunner().run(spec).summary()
        b = LoadScenarioRunner().run(spec).summary()
        assert a == b


class TestFaultOverlap:
    def test_fault_window_arms_and_disarms_the_plan(self):
        spec = replace(
            find_default(SHAPE_FAULT_OVERLAP),
            window_start=4.0, window_duration=8.0, duration=20.0,
        )
        runner = LoadScenarioRunner()
        result = runner.run(spec)
        # The brownout ladder engaged under the fault, flagged answers
        # appeared, and the retry budget held amplification.
        assert result.brownout_escalations > 0
        assert result.report.reduced_k_served > 0
        assert result.report.amplification < 1.2
        assert result.report.exact_ok == result.report.exact_checked


class TestFlashCrowdAcceptance:
    def test_autoscaled_meets_the_slo_static_violates(self):
        """The E21 headline: same crowd, same seed — the static
        topology blows through the SLO while the control plane
        (SLO detection -> split_shard scale-out + brownout) stays
        inside it."""
        spec = find_default(SHAPE_FLASH_CROWD)
        static, scaled = LoadScenarioRunner().flash_crowd_comparison(spec)

        assert static.report.latency.p99 > spec.p99_slo
        assert scaled.report.latency.p99 <= spec.p99_slo
        assert not static.slo_met and scaled.slo_met

        # The win came from real scale-out, not luck: splits fired and
        # the topology grew.
        assert "split_shard" in scaled.levers
        assert scaled.final_shards > spec.num_shards
        assert scaled.incidents > 0

        # Quality guarantees held throughout.
        assert scaled.report.amplification < 1.2
        assert static.report.amplification < 1.2
        for result in (static, scaled):
            assert result.report.exact_ok == result.report.exact_checked

    def test_autoscaled_goodput_beats_static(self):
        spec = find_default(SHAPE_FLASH_CROWD)
        static, scaled = LoadScenarioRunner().flash_crowd_comparison(spec)
        assert scaled.report.goodput > static.report.goodput
