"""Tests for rank sampling: Lemmas 1 and 3, empirically and structurally."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import (
    bernoulli_sample,
    chernoff_lower_tail,
    chernoff_upper_tail,
    empirical_rank_window,
    lemma1_conditions_hold,
    lemma1_sample_rank,
    lemma3_success_probability,
    rank_of_max_in_sample,
)


class TestBernoulliSample:
    def test_p_one_keeps_everything(self):
        items = list(range(50))
        assert bernoulli_sample(items, 1.0, random.Random(0)) == items

    def test_p_zero_keeps_nothing(self):
        assert bernoulli_sample(list(range(50)), 0.0, random.Random(0)) == []

    def test_preserves_order(self):
        sample = bernoulli_sample(list(range(1000)), 0.3, random.Random(1))
        assert sample == sorted(sample)

    def test_skip_ahead_path_preserves_order_and_subset(self):
        items = list(range(5000))
        sample = bernoulli_sample(items, 0.01, random.Random(2))  # skip-ahead branch
        assert sample == sorted(sample)
        assert set(sample) <= set(items)

    def test_sample_size_concentrates(self):
        rng = random.Random(3)
        sizes = [len(bernoulli_sample(list(range(2000)), 0.1, rng)) for _ in range(30)]
        mean = sum(sizes) / len(sizes)
        assert 150 <= mean <= 250  # E = 200

    def test_small_p_mean_matches(self):
        rng = random.Random(4)
        sizes = [len(bernoulli_sample(list(range(10000)), 0.005, rng)) for _ in range(40)]
        mean = sum(sizes) / len(sizes)
        assert 30 <= mean <= 70  # E = 50


class TestChernoff:
    def test_lower_tail_formula(self):
        assert chernoff_lower_tail(30.0, 0.5) == pytest.approx(math.exp(-0.25 * 30 / 3))

    def test_lower_tail_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            chernoff_lower_tail(10.0, 1.5)

    def test_upper_tail_formula(self):
        assert chernoff_upper_tail(10.0, 2.0) == pytest.approx(math.exp(-2 * 10 / 6))

    def test_upper_tail_rejects_small_alpha(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(10.0, 1.0)


class TestLemma1:
    def test_conditions(self):
        # kp >= 3 ln(3/delta) and n >= 4k
        assert lemma1_conditions_hold(n=1000, k=100, p=0.5, delta=0.5)
        assert not lemma1_conditions_hold(n=300, k=100, p=0.5, delta=0.5)
        assert not lemma1_conditions_hold(n=1000, k=2, p=0.01, delta=0.5)

    def test_sample_rank(self):
        assert lemma1_sample_rank(k=100, p=0.1) == 20
        assert lemma1_sample_rank(k=1, p=0.001) == 1

    def test_empirical_success_rate_beats_bound(self):
        """Monte-Carlo: observed failure rate must respect 1 - delta."""
        n, k = 4000, 200
        delta = 0.2
        p = 3.0 * math.log(3.0 / delta) / k  # tight working point
        assert lemma1_conditions_hold(n, k, p, delta)
        success, _ = empirical_rank_window(n, k, p, trials=150, rng=random.Random(7))
        assert success >= 1.0 - delta - 0.1  # slack for MC noise

    def test_empirical_sample_size_near_np(self):
        n, k, p = 2000, 100, 0.2
        _, avg_size = empirical_rank_window(n, k, p, trials=60, rng=random.Random(8))
        assert abs(avg_size - n * p) < 0.15 * n * p


class TestLemma3:
    def test_guaranteed_probability(self):
        assert lemma3_success_probability() == pytest.approx(
            1.0 - (2.0 / math.e**4 + (1.0 - 1.0 / math.e**2))
        )
        assert lemma3_success_probability() > 0.09

    def test_rank_of_max_empty_sample(self):
        assert rank_of_max_in_sample([3.0, 2.0, 1.0], []) is None

    def test_rank_of_max_basic(self):
        full = [9.0, 8.0, 7.0, 6.0]
        assert rank_of_max_in_sample(full, [7.0, 6.0]) == 3
        assert rank_of_max_in_sample(full, [9.0]) == 1

    def test_empirical_window(self):
        """Largest sample lands in (K, 4K] at least ~9% of the time."""
        rng = random.Random(11)
        n, K = 4000, 100.0
        weights_desc = [float(n - i) for i in range(n)]
        hits = 0
        trials = 400
        for _ in range(trials):
            sample = [w for w in weights_desc if rng.random() < 1.0 / K]
            rank = rank_of_max_in_sample(weights_desc, sample)
            if rank is not None and K < rank <= 4 * K:
                hits += 1
        assert hits / trials >= 0.09


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 500),
    p=st.floats(0.0, 1.0, allow_nan=False),
    seed=st.integers(0, 10**6),
)
def test_bernoulli_sample_is_ordered_subset(n, p, seed):
    items = list(range(n))
    sample = bernoulli_sample(items, p, random.Random(seed))
    assert sample == sorted(set(sample))
    assert set(sample) <= set(items)
