"""Aligned-text tables: each bench prints the rows EXPERIMENTS.md records."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """Render a fixed-width table with a title banner.

    Floats are shown with three significant decimals; ``None`` renders
    as ``-``.
    """
    cells: List[List[str]] = [[_format(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append(f"   note: {note}")
    return "\n".join(lines)


def _format(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)
