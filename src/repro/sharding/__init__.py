"""Horizontal sharding: partitioned top-k with exact scatter-gather.

The subsystem splits the indexed set ``D`` across S independent shard
machines and answers ``(q, k)`` with a pruned scatter-gather that is
provably exact (see :mod:`repro.sharding.scatter`):

* :class:`Partitioner` — deterministic element -> virtual-bucket
  placement (seeded hash, or weight-aware range quantiles);
* :class:`ShardRouter` / :class:`ShardMap` — the epoch-stamped
  bucket -> shard assignment, bumped on every split/merge so stale
  routes retry instead of answering wrong;
* :class:`ScatterGatherExecutor` — max-probe bounds, descending-order
  visits with a running k-th-weight threshold, geometric per-shard
  escalation, and a ``heapq.merge`` gather;
* :class:`ShardedTopKIndex` — the facade: durable/replicated shard
  machines, WAL-protected online splits and merges, the shard-loss
  degradation ladder, and batch fan-out for the serving engine.
"""

from repro.sharding.partitioner import (
    DEFAULT_BUCKETS,
    STRATEGY_HASH,
    STRATEGY_RANGE,
    Partitioner,
)
from repro.sharding.router import MapSnapshot, Shard, ShardMap, ShardRouter
from repro.sharding.scatter import (
    GatherResult,
    ProbeTrace,
    ScatterGatherExecutor,
    merge_topk,
)
from repro.sharding.sharded import ShardedTopKIndex, ShardingStats, sharded_index

__all__ = [
    "Partitioner",
    "STRATEGY_HASH",
    "STRATEGY_RANGE",
    "DEFAULT_BUCKETS",
    "ShardMap",
    "MapSnapshot",
    "Shard",
    "ShardRouter",
    "ScatterGatherExecutor",
    "GatherResult",
    "ProbeTrace",
    "merge_topk",
    "ShardedTopKIndex",
    "ShardingStats",
    "sharded_index",
]
