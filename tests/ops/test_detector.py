"""AnomalyDetector: every rule, fed synthetic telemetry samples."""

from repro.ops.detector import AnomalyDetector, DetectorPolicy

from ops_util import machine, sample


def kinds(anomalies):
    return [a.kind for a in anomalies]


def detector(**overrides):
    return AnomalyDetector(DetectorPolicy(**overrides))


class TestFaultSpike:
    def test_fires_after_warmup(self):
        det = detector(warmup_ticks=2, fault_spike_min=3)
        quiet = {"m": machine("m", faults=0)}
        storm = {"m": machine("m", faults=9)}
        assert kinds(det.observe(sample(1, machines=quiet))) == []  # warming
        assert kinds(det.observe(sample(2, machines=quiet))) == []
        out = det.observe(sample(3, machines=storm))
        assert kinds(out) == ["fault_spike"]
        assert out[0].scope == ("machine", "m")

    def test_baseline_adapts_to_steady_rate(self):
        # A chronically faulty machine is the baseline, not an anomaly.
        det = detector(warmup_ticks=2, fault_spike_min=3, fault_spike_factor=4.0)
        storm = {"m": machine("m", faults=10)}
        fired = [
            bool(det.observe(sample(t, machines=storm))) for t in range(1, 9)
        ]
        assert not any(fired[4:]), "EWMA baseline should absorb a steady rate"

    def test_below_absolute_floor_never_fires(self):
        det = detector(warmup_ticks=0, fault_spike_min=3)
        dribble = {"m": machine("m", faults=2)}
        for t in range(1, 6):
            assert det.observe(sample(t, machines=dribble)) == []


class TestCorruptionDrip:
    def test_window_accumulates(self):
        det = detector(corruption_min=3, corruption_window=10)
        drip = {"m": machine("m", corruptions=1)}
        assert kinds(det.observe(sample(1, machines=drip))) == []
        assert kinds(det.observe(sample(2, machines=drip))) == []
        assert "corruption_drip" in kinds(det.observe(sample(3, machines=drip)))

    def test_requires_fresh_corruption(self):
        # Old window contents alone must not re-flag a healed machine.
        det = detector(corruption_min=3, corruption_window=10)
        drip = {"m": machine("m", corruptions=3)}
        clean = {"m": machine("m", corruptions=0)}
        assert "corruption_drip" in kinds(det.observe(sample(1, machines=drip)))
        assert kinds(det.observe(sample(2, machines=clean))) == []


class TestGauges:
    def test_machine_crash_and_latency_storm(self):
        det = detector(latency_units_min=12)
        hot = {"m": machine("m", crashes=1, latency_units=20)}
        out = kinds(det.observe(sample(1, machines=hot)))
        assert "machine_crash" in out and "latency_storm" in out

    def test_replica_and_shard_aliveness(self):
        det = detector()
        out = det.observe(sample(
            1,
            replicas_alive={"replica-1": False, "replica-0": True},
            shards_alive={"shard-2": False, "shard-0": True},
        ))
        assert sorted(kinds(out)) == ["replica_down", "shard_down"]
        scopes = {a.kind: a.scope for a in out}
        assert scopes["replica_down"] == ("replica", "replica-1")
        assert scopes["shard_down"] == ("shard", "shard-2")

    def test_hot_shard(self):
        det = detector(imbalance_ratio=4.0)
        sizes = {"shard-0": 100} | {f"shard-{i}": 1 for i in range(1, 5)}
        out = det.observe(sample(1, shard_sizes=sizes))
        assert kinds(out) == ["hot_shard"]
        assert out[0].scope == ("shard", "shard-0")


class TestLagGrowth:
    def test_flat_high_lag_fires(self):
        det = detector(lag_bound=5, lag_flat_ticks=2)
        for t in range(1, 3):
            assert det.observe(sample(t, replica_durable_lag={"r": 6})) == []
        out = det.observe(sample(3, replica_durable_lag={"r": 7}))
        assert kinds(out) == ["lag_growth"]

    def test_shrinking_lag_stays_quiet(self):
        det = detector(lag_bound=5, lag_flat_ticks=2)
        for t, lag in enumerate((9, 8, 7, 6), start=1):
            assert det.observe(sample(t, replica_durable_lag={"r": lag})) == []


class TestQueryAndServing:
    def test_rung_burst_and_staleness(self):
        det = detector(rung_burst_min=2)
        out = kinds(det.observe(sample(
            1, rung_unavailable=1, degraded_queries=1, spot_check_failures=1
        )))
        assert "rung_burst" in out and "staleness_suspect" in out

    def test_shed_and_queue_depth(self):
        det = detector(shed_min=1, queue_depth_max=256)
        out = kinds(det.observe(sample(1, load_sheds=2, queue_depth=300)))
        assert "shed_spike" in out and "queue_depth" in out

    def test_latency_regression_needs_absolute_floor(self):
        # Sub-floor wall-clock jitter must never open an incident.
        det = detector(warmup_ticks=0, latency_floor=0.05, latency_factor=3.0)
        assert det.observe(sample(1, serving_avg_latency=0.001)) == []
        out = det.observe(sample(2, serving_avg_latency=0.2))
        assert kinds(out) == ["latency_regression"]


class TestDeterminism:
    def test_identical_streams_identical_anomalies(self):
        stream = [
            sample(t, machines={"m": machine("m", faults=t % 5)})
            for t in range(1, 10)
        ]
        a = [AnomalyDetector().observe(s) for s in stream]
        b = [AnomalyDetector().observe(s) for s in stream]
        assert a == b
