"""E8 — Theorem 3 (d=2): top-k halfplane reporting.

Paper claim (first bullet): ``O(n log n)`` space and ``O(log n + k)``
expected query via Theorem 2 over the Chazelle–Guibas–Lee-style
reporting structure and a halfplane max structure — beating the prior
``O(log^2 n + k)`` combination.

Measured: query time scaling vs ``n`` (must stay polylog) and the
Theorem 2 index vs the binary-search baseline at fixed n over a k
sweep (who wins, and by how much, as k grows).
"""

import time

from repro.bench.runner import fit_loglog_slope
from repro.bench.tables import render_table
from repro.bench.workloads import make_problem
from repro.core.baseline import BinarySearchTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex

from helpers import bounded_predicates

SIZES = (500, 1_000, 2_000, 4_000)
KS = (1, 16, 128, 512)
K = 10
QUERIES = 20


def _sweep_n():
    rows, costs = [], []
    for n in SIZES:
        problem = make_problem("halfplane2d", n, seed=8)
        index = ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory, problem.max_factory, seed=10
        )
        predicates = bounded_predicates(problem, QUERIES, target=60, seed=n)
        start = time.perf_counter()
        for p in predicates:
            index.query(p, K)
        wall = (time.perf_counter() - start) / QUERIES
        rows.append([n, round(1e6 * wall, 1)])
        costs.append(wall)
    return rows, fit_loglog_slope(list(SIZES), costs)


def _sweep_k():
    n = 2_000
    problem = make_problem("halfplane2d", n, seed=9)
    theorem2 = ExpectedTopKIndex(
        problem.elements, problem.prioritized_factory, problem.max_factory, seed=11
    )
    baseline = BinarySearchTopKIndex(problem.elements, problem.prioritized_factory)
    predicates = problem.predicates(QUERIES, seed=12)
    rows = []
    for k in KS:
        start = time.perf_counter()
        for p in predicates:
            theorem2.query(p, k)
        t2 = (time.perf_counter() - start) / QUERIES
        start = time.perf_counter()
        for p in predicates:
            baseline.query(p, k)
        bl = (time.perf_counter() - start) / QUERIES
        rows.append([k, round(1e6 * t2, 1), round(1e6 * bl, 1), round(bl / max(t2, 1e-9), 2)])
    return rows


def bench_e8_halfplane2d(benchmark, results_sink):
    n_rows, slope = _sweep_n()
    results_sink(
        render_table(
            "E8a  Theorem 3 (d=2): top-k halfplane query time (k=10)",
            ["n", "query us"],
            n_rows,
            note=f"log-log slope {slope:.3f} (polylog expected)",
        )
    )
    assert slope < 0.75, f"halfplane top-k grew like a polynomial (slope {slope:.2f})"

    k_rows = _sweep_k()
    results_sink(
        render_table(
            "E8b  Theorem 2 vs baseline [28] on halfplanes (n=2000), k sweep",
            ["k", "Thm2 us", "baseline us", "baseline/Thm2"],
            k_rows,
            note="the baseline re-pays its probes per binary-search step; Thm2 pays once",
        )
    )
    assert k_rows[-1][3] > 1.0, "Theorem 2 should win at large k"

    problem = make_problem("halfplane2d", SIZES[-1], seed=8)
    index = ExpectedTopKIndex(
        problem.elements, problem.prioritized_factory, problem.max_factory, seed=10
    )
    predicates = bounded_predicates(problem, QUERIES, target=60, seed=3)

    def run_batch():
        for p in predicates:
            index.query(p, K)

    benchmark(run_batch)
