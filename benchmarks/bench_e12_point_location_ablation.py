"""E12 — Section 5.4's max structure: point location vs the generic tree.

The paper's halfplane max reporting uses planar point location over the
``rho_i`` subdivision [31] for ``O(log n)`` queries.  The repository
also carries a generic ``O(log^2 n)`` weight-partition hull tree
(:class:`HalfplaneMax`) that works for *arbitrary* halfplanes.  This
ablation pits them against each other on upper-halfplane queries:

* counted search operations — the persistent structure must stay at
  one ``O(log n)`` descent while the hull tree pays ``O(log n)`` probes
  of ``O(log n)`` each, so the ops ratio must grow with ``n``;
* identical answers on every query (both are exact);
* the full Section 5.4 pipeline: Theorem 2 instantiated with the
  point-location max structure stays exact and flat.
"""

import math
import random
import time

from repro.bench.runner import fit_loglog_slope
from repro.bench.tables import render_table
from repro.core.problem import Element, top_k_of
from repro.core.theorem2 import ExpectedTopKIndex
from repro.geometry.primitives import Halfplane
from repro.structures.halfplane import HalfplaneMax, HalfplanePredicate, HalfplanePrioritized
from repro.structures.line_max import UpperHalfplanePointMax

SIZES = (1_000, 2_000, 4_000, 8_000)
QUERIES = 60


def make_points(n, seed=0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    return [
        Element((rng.uniform(-10, 10), rng.uniform(-10, 10)), float(weights[i]))
        for i in range(n)
    ]


def upper_halfplanes(count, seed=0):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        theta = rng.uniform(0.05, math.pi - 0.05)  # normal_y > 0
        out.append(
            HalfplanePredicate(Halfplane((math.cos(theta), math.sin(theta)), rng.uniform(-12, 12)))
        )
    return out


def _hull_tree_ops(index: HalfplaneMax, n: int) -> float:
    """Model ops: each descent step performs one O(log n) hull search."""
    return index.ops.node_visits * max(1.0, math.log2(max(2, n)))


def _sweep():
    rows = []
    ratios = []
    for n in SIZES:
        elements = make_points(n, seed=n)
        fast = UpperHalfplanePointMax(elements)
        general = HalfplaneMax(elements)
        predicates = upper_halfplanes(QUERIES, seed=n + 1)
        locator = fast._inner._locator
        locator.ops.reset()
        general.ops.reset()
        for p in predicates:
            assert fast.query(p) == general.query(p)
        fast_ops = locator.ops.total / QUERIES
        general_ops = _hull_tree_ops(general, n) / QUERIES
        ratio = general_ops / max(fast_ops, 1e-9)
        rows.append([n, round(fast_ops, 1), round(general_ops, 1), round(ratio, 2)])
        ratios.append(ratio)
    return rows, ratios


def bench_e12_point_location_ablation(benchmark, results_sink):
    rows, ratios = _sweep()
    results_sink(
        render_table(
            "E12  Section 5.4 max: persistent point location vs hull tree (ops/query)",
            ["n", "point-location ops", "hull-tree ops", "hull/PL"],
            rows,
            note="the paper's [31] route is one log cheaper; the ratio must grow with n",
        )
    )
    assert ratios[-1] > 1.0, f"point location not cheaper at the top size: {ratios}"
    assert ratios[-1] > ratios[0], f"the log-factor gap should widen: {ratios}"

    # Full Section 5.4 pipeline through Theorem 2: exact and flat.
    elements = make_points(2_000, seed=99)
    index = ExpectedTopKIndex(
        elements, HalfplanePrioritized, UpperHalfplanePointMax, seed=5
    )
    predicates = upper_halfplanes(12, seed=100)
    for p in predicates[:6]:
        for k in (1, 10, 100):
            assert index.query(p, k) == top_k_of(elements, p, k)

    def run_batch():
        for p in predicates:
            index.query(p, 10)

    benchmark(run_batch)
