"""Tests for the generic weight-suffix composition (Sections 5.4 / 5.5)."""

import math
import random

import pytest

from oracles import oracle_prioritized, sorted_desc
from repro.core.problem import Element
from repro.em.model import EMContext
from repro.geometry.primitives import Halfplane
from repro.structures.halfplane import ConvexLayerReporting, HalfplanePredicate
from repro.structures.kdtree import HalfspacePredicate, KDTreeIndex
from repro.structures.weight_suffix import (
    WeightSuffixPrioritized,
    em_halfspace_prioritized,
)


def make_points(n, d=2, seed=0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    return [
        Element(tuple(rng.uniform(-10, 10) for _ in range(d)), float(weights[i]))
        for i in range(n)
    ]


def random_halfplane(rng, d=2):
    if d == 2:
        theta = rng.uniform(0, 2 * math.pi)
        normal = (math.cos(theta), math.sin(theta))
    else:
        normal = tuple(rng.gauss(0, 1) for _ in range(d))
    return Halfplane(normal, rng.uniform(-10, 10))


class TestBinaryVariant:
    def test_matches_oracle_with_convex_layers(self):
        elements = make_points(250, seed=1)
        index = WeightSuffixPrioritized(elements, ConvexLayerReporting, fanout=2)
        rng = random.Random(2)
        for _ in range(50):
            p = HalfplanePredicate(random_halfplane(rng))
            tau = rng.uniform(0, 2500)
            assert sorted_desc(index.query(p, tau).elements) == oracle_prioritized(
                elements, p, tau
            )

    def test_matches_oracle_with_kdtree_reporting(self):
        elements = make_points(200, d=3, seed=3)
        index = WeightSuffixPrioritized(elements, KDTreeIndex, fanout=2)
        rng = random.Random(4)
        for _ in range(40):
            p = HalfspacePredicate(random_halfplane(rng, d=3))
            tau = rng.uniform(0, 2000)
            assert sorted_desc(index.query(p, tau).elements) == oracle_prioritized(
                elements, p, tau
            )

    def test_limit_truncation(self):
        elements = make_points(150, seed=5)
        index = WeightSuffixPrioritized(elements, ConvexLayerReporting)
        p = HalfplanePredicate(Halfplane((1.0, 0.0), -100.0))
        r = index.query(p, -math.inf, limit=6)
        assert r.truncated and len(r.elements) >= 7

    def test_tau_above_everything(self):
        elements = make_points(80, seed=6)
        index = WeightSuffixPrioritized(elements, ConvexLayerReporting)
        p = HalfplanePredicate(Halfplane((1.0, 0.0), -100.0))
        assert index.query(p, 1e9).elements == []

    def test_canonical_cover_is_logarithmic(self):
        elements = make_points(512, seed=7)
        index = WeightSuffixPrioritized(elements, ConvexLayerReporting)
        index.ops.reset()
        median = sorted(e.weight for e in elements)[256]
        index.query(HalfplanePredicate(Halfplane((1.0, 0.0), -100.0)), median)
        assert index.ops.node_visits <= 2 * math.log2(512) + 2


class TestEMVariant:
    def test_section_5_5_structure_exact(self):
        ctx = EMContext(B=16, M=128)
        elements = make_points(400, d=4, seed=8)
        index = em_halfspace_prioritized(elements, ctx)
        rng = random.Random(9)
        for _ in range(30):
            p = HalfspacePredicate(random_halfplane(rng, d=4))
            tau = rng.uniform(0, 4000)
            assert sorted_desc(index.query(p, tau).elements) == oracle_prioritized(
                elements, p, tau
            )

    def test_fanout_formula(self):
        ctx = EMContext(B=16, M=128)
        elements = make_points(4096, d=2, seed=10)
        index = em_halfspace_prioritized(elements, ctx, epsilon=0.5)
        assert index._fanout == max(2, round((4096 / 16) ** 0.25))

    def test_btree_has_few_levels(self):
        ctx = EMContext(B=16, M=128)
        elements = make_points(2000, d=2, seed=11)
        index = em_halfspace_prioritized(elements, ctx, epsilon=1.0)
        assert index._btree is not None
        assert index._btree.height <= 5

    def test_io_counted(self):
        ctx = EMContext(B=16, M=128)
        elements = make_points(300, d=2, seed=12)
        index = em_halfspace_prioritized(elements, ctx)
        ctx.drop_cache()
        ctx.stats.reset()
        index.query(HalfspacePredicate(Halfplane((1.0, 0.0), 0.0)), 0.0)
        assert ctx.stats.total > 0

    def test_space_accounting(self):
        ctx = EMContext(B=16, M=128)
        elements = make_points(500, d=2, seed=13)
        index = em_halfspace_prioritized(elements, ctx)
        # Each element appears on every B-tree level: O(n * height) words.
        assert index.space_units() <= 500 * (index._btree.height + 1) * 4
