"""Flash storage rules through the ops plane: detect, plan, self-heal."""

from toy import RangePredicate, ToyMax, ToyPrioritized, make_toy_elements
from repro.core.theorem2 import ExpectedTopKIndex
from repro.durability.durable import DurableTopKIndex
from repro.durability.logstore import LogStructuredStore
from repro.em.model import EMContext
from repro.flash.disk import FlashDisk
from repro.flash.ftl import FlashConfig
from repro.ops.detector import SCOPE_SUBSYSTEM, AnomalyDetector, DetectorPolicy
from repro.ops.mitigation import LEVER_COMPACT, MitigationPlanner
from repro.ops.operator import Operator, OperatorPolicy
from repro.ops.telemetry import TelemetryCollector
from repro.resilience.guard import ResilientTopKIndex

from ops_util import sample
from test_mitigation import incident


def kinds(anomalies):
    return [a.kind for a in anomalies]


class TestWriteAmpSpikeRule:
    def test_fires_on_high_write_amplification(self):
        det = AnomalyDetector(DetectorPolicy(write_amp_max=2.0, write_amp_min_writes=32))
        out = det.observe(sample(
            1, flash_host_writes=40, flash_device_writes=100, storage_write_amp=2.5,
        ))
        assert kinds(out) == ["write_amp_spike"]
        assert out[0].scope == (SCOPE_SUBSYSTEM, "storage")
        assert out[0].metric == "storage_write_amp"

    def test_quiet_below_write_volume_floor(self):
        # A huge ratio over a handful of writes is noise, not a spike.
        det = AnomalyDetector(DetectorPolicy(write_amp_max=2.0, write_amp_min_writes=32))
        out = det.observe(sample(
            1, flash_host_writes=4, flash_device_writes=40, storage_write_amp=10.0,
        ))
        assert kinds(out) == []

    def test_zero_threshold_disables_the_rule(self):
        det = AnomalyDetector(DetectorPolicy(write_amp_max=0.0))
        out = det.observe(sample(
            1, flash_host_writes=500, flash_device_writes=5000,
            storage_write_amp=10.0,
        ))
        assert kinds(out) == []


class TestWearImbalanceRule:
    def test_fires_when_one_block_runs_hot(self):
        det = AnomalyDetector(DetectorPolicy(wear_imbalance_ratio=3.0, wear_mean_floor=2.0))
        out = det.observe(sample(1, flash_max_wear=12, flash_mean_wear=3.0))
        assert kinds(out) == ["wear_imbalance"]
        assert out[0].scope == (SCOPE_SUBSYSTEM, "storage")

    def test_quiet_during_early_life(self):
        # max/mean is unstable while the device is barely worn.
        det = AnomalyDetector(DetectorPolicy(wear_imbalance_ratio=3.0, wear_mean_floor=2.0))
        assert kinds(det.observe(sample(1, flash_max_wear=4, flash_mean_wear=0.5))) == []

    def test_balanced_wear_is_quiet(self):
        det = AnomalyDetector(DetectorPolicy(wear_imbalance_ratio=3.0, wear_mean_floor=2.0))
        assert kinds(det.observe(sample(1, flash_max_wear=9, flash_mean_wear=8.0))) == []


class FakeStore:
    def __init__(self):
        self.compactions = 0

    def compact_store(self):
        self.compactions += 1
        return 7


class TestStorageLadder:
    def test_flash_incident_gets_compaction(self):
        store = FakeStore()
        planner = MitigationPlanner(stores={"storage": store})
        inc = incident((SCOPE_SUBSYSTEM, "storage"), kind="write_amp_spike")
        action = planner.plan(inc)
        assert action.lever == LEVER_COMPACT
        assert "7 dead blocks trimmed" in action.apply()
        assert store.compactions == 1

    def test_wear_imbalance_also_maps_to_compaction(self):
        planner = MitigationPlanner(stores={"storage": FakeStore()})
        inc = incident((SCOPE_SUBSYSTEM, "storage"), kind="wear_imbalance")
        assert planner.plan(inc).lever == LEVER_COMPACT

    def test_no_store_means_no_ladder(self):
        planner = MitigationPlanner()
        inc = incident((SCOPE_SUBSYSTEM, "storage"), kind="write_amp_spike")
        assert planner.plan(inc) is None


def flash_stack():
    """A flash-backed durable index behind a guard, pool sized so that
    steady manifest accretion drives write amplification up within a
    few dozen control ticks."""
    disk = FlashDisk(config=FlashConfig(
        pages_per_block=8, capacity_pages=112, overprovision=0.1,
    ))
    ctx = EMContext(B=8, disk=disk)
    store = LogStructuredStore(ctx=ctx, B=8)
    elements = make_toy_elements(24, seed=1)
    inner = ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=3)
    durable = DurableTopKIndex(inner, store=store, commit_interval=4)
    guard = ResilientTopKIndex(durable)
    return guard, durable, list(elements)


class TestCollectorDiscovery:
    def test_guard_reachable_durable_becomes_storage_source(self):
        guard, durable, _ = flash_stack()
        collector = TelemetryCollector(guard=guard)
        tick = collector.collect(1)
        assert tick.flash_host_writes == durable.durability_io.flash_host_writes > 0

    def test_second_collect_reports_the_window_not_the_total(self):
        guard, durable, live = flash_stack()
        collector = TelemetryCollector(guard=guard)
        collector.collect(1)
        quiet = collector.collect(2)
        assert quiet.flash_host_writes == 0
        durable.insert(make_toy_elements(4, seed=9, weight_offset=0.5)[0])
        durable.checkpoint()
        busy = collector.collect(3)
        assert busy.flash_host_writes > 0


class TestSelfHealing:
    def test_write_amp_incident_is_compacted_and_resolved(self):
        guard, durable, live = flash_stack()
        operator = Operator(
            guard=guard,
            policy=OperatorPolicy(cooldown_ticks=1, clear_ticks=2),
            detector_policy=DetectorPolicy(
                write_amp_max=1.5, write_amp_min_writes=8,
            ),
            probes=[(RangePredicate(0.0, 2500.0), 5)],
        )
        # One pre-drawn pool keeps churn weights distinct from each
        # other and (via the offset) from the 24 base elements.
        pool = iter(make_toy_elements(12 * 80, seed=7, weight_offset=0.25))
        opened = resolved = None
        compactions_before = durable.store.compactions
        for tick in range(1, 81):
            for _ in range(12):
                victim = live.pop(0)
                durable.delete(victim)
                fresh = next(pool)
                durable.insert(fresh)
                live.append(fresh)
            durable.checkpoint()
            guard.query(RangePredicate(0.0, 2500.0), 5)
            report = operator.tick()
            for inc in report.opened:
                if inc.kind == "write_amp_spike" and opened is None:
                    opened = tick
            for inc in report.resolved:
                if inc.kind == "write_amp_spike":
                    resolved = tick
            if resolved is not None:
                break
        assert opened is not None, "write amplification never tripped the rule"
        assert resolved is not None, "the incident never closed"
        assert durable.store.compactions > compactions_before
        record = next(
            m
            for inc in operator.log.incidents
            for m in inc.mitigations
            if m.lever == LEVER_COMPACT
        )
        assert record.fired and record.verified
        assert "store compacted" in record.outcome
