"""RetryBudget: token-bucket math and guard integration."""

from __future__ import annotations

import threading

import pytest

from repro.resilience.errors import InvalidConfiguration
from repro.resilience.guard import GuardPolicy, ResilientTopKIndex, RetryBudget


class TestBucketMath:
    def test_starts_full_at_burst(self):
        budget = RetryBudget(ratio=0.1, burst=5.0)
        assert budget.tokens == 5.0

    def test_initial_overrides_start_but_caps_at_burst(self):
        assert RetryBudget(burst=5.0, initial=2.0).tokens == 2.0
        assert RetryBudget(burst=5.0, initial=50.0).tokens == 5.0

    def test_deposit_credits_ratio_per_fresh(self):
        budget = RetryBudget(ratio=0.1, burst=8.0, initial=0.0)
        budget.deposit(fresh=30)
        assert budget.tokens == pytest.approx(3.0)
        assert budget.deposits == 30

    def test_deposit_caps_at_burst(self):
        budget = RetryBudget(ratio=0.5, burst=4.0, initial=0.0)
        budget.deposit(fresh=100)
        assert budget.tokens == 4.0

    def test_spend_until_empty_then_denied(self):
        budget = RetryBudget(ratio=0.1, burst=3.0)
        assert [budget.try_spend() for _ in range(5)] == [
            True, True, True, False, False,
        ]
        assert budget.granted == 3
        assert budget.denied == 2

    def test_amplification_invariant(self):
        """Over any horizon: grants <= ratio * fresh + burst."""
        budget = RetryBudget(ratio=0.1, burst=8.0)
        granted = 0
        fresh = 0
        for round_ in range(200):
            budget.deposit()
            fresh += 1
            # An aggressive client retries every single request.
            if budget.try_spend():
                granted += 1
        assert granted <= 0.1 * fresh + 8.0
        assert budget.denied == 200 - granted

    def test_thread_safety_conserves_tokens(self):
        budget = RetryBudget(ratio=0.0, burst=100.0)
        results = []
        lock = threading.Lock()

        def spender():
            mine = sum(1 for _ in range(50) if budget.try_spend())
            with lock:
                results.append(mine)

        threads = [threading.Thread(target=spender) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(results) == 100     # never over-granted
        assert budget.tokens == 0.0

    def test_validation(self):
        with pytest.raises(InvalidConfiguration):
            RetryBudget(ratio=-0.1)
        with pytest.raises(InvalidConfiguration):
            RetryBudget(burst=0.5)


class TestGuardIntegration:
    @staticmethod
    def make_guarded(policy, elements=None):
        from toy import ToyMax, ToyPrioritized, make_toy_elements
        from repro.replication import replicated_index

        elements = elements or make_toy_elements(32, seed=5)
        cluster = replicated_index(
            elements, ToyPrioritized, ToyMax, num_replicas=3, seed=3
        )
        return elements, ResilientTopKIndex(cluster, policy=policy)

    def test_no_budget_by_default(self):
        _, guard = self.make_guarded(GuardPolicy())
        assert guard.retry_budget is None

    def test_policy_creates_shared_budget(self):
        _, guard = self.make_guarded(
            GuardPolicy(retry_budget_ratio=0.2, retry_budget_burst=4.0)
        )
        assert isinstance(guard.retry_budget, RetryBudget)
        assert guard.retry_budget.ratio == 0.2
        assert guard.retry_budget.burst == 4.0

    def test_queries_deposit_fresh_credit(self):
        from toy import RangePredicate

        _, guard = self.make_guarded(GuardPolicy(retry_budget_ratio=0.1))
        before = guard.retry_budget.deposits
        guard.query(RangePredicate(0.0, 1000.0), 3)
        assert guard.retry_budget.deposits == before + 1

    def test_exhausted_budget_denies_retries_and_reports(self):
        from toy import RangePredicate

        _, guard = self.make_guarded(
            GuardPolicy(retry_budget_ratio=0.0, max_attempts=4)
        )
        # Drain the full burst allowance.
        while guard.retry_budget.try_spend():
            pass
        # _backoff must now refuse and count the denial.
        answer, report = guard.query_with_report(
            RangePredicate(0.0, 1000.0), 3
        )
        assert answer is not None
        for _ in range(5):
            assert guard._backoff(0, report) is False
        assert report.retry_budget_denied == 5
        assert report.retries == 0

    def test_policy_validation(self):
        with pytest.raises(InvalidConfiguration):
            GuardPolicy(retry_budget_ratio=-0.5)
        with pytest.raises(InvalidConfiguration):
            GuardPolicy(retry_budget_ratio=0.1, retry_budget_burst=0.0)
