"""Incident lifecycle bookkeeping: folding, timelines, grading fields."""

from repro.ops.incidents import (
    Incident,
    IncidentLog,
    MitigationRecord,
    STATUS_RESOLVED,
)


def test_fold_opens_then_attaches():
    log = IncidentLog()
    first, opened = log.fold(("machine", "m"), "fault_spike", [], tick=3)
    assert opened and first.opened_at == 3
    first.quiet_ticks = 1
    again, opened = log.fold(("machine", "m"), "fault_spike", [], tick=4)
    assert not opened and again is first
    assert first.quiet_ticks == 0  # a re-offence resets the quiet streak


def test_resolved_scope_reoffending_opens_fresh_incident():
    log = IncidentLog()
    first, _ = log.fold(("machine", "m"), "fault_spike", [], tick=3)
    first.status = STATUS_RESOLVED
    first.resolved_at = 5
    second, opened = log.fold(("machine", "m"), "fault_spike", [], tick=8)
    assert opened and second is not first
    assert len(log) == 2


def test_levers_fired_excludes_failures_and_deferrals():
    incident = Incident(id=1, scope=("machine", "m"), kind="k", opened_at=1)
    incident.mitigations = [
        MitigationRecord(tick=2, lever="scrub", target="m", outcome="ok: done"),
        MitigationRecord(tick=3, lever="reboot_replica", target="m",
                         outcome="failed: busy"),
        MitigationRecord(tick=4, lever="(deferred)", target="m",
                         outcome="deferred: flux"),
    ]
    assert incident.levers_fired == ["scrub"]


def test_time_to_mitigate():
    incident = Incident(id=1, scope=("machine", "m"), kind="k", opened_at=4)
    assert incident.time_to_mitigate is None
    incident.resolved_at = 9
    assert incident.time_to_mitigate == 5


def test_timeline_describes_every_incident():
    log = IncidentLog()
    log.fold(("shard", "shard-1"), "shard_down", [], tick=2)
    (line,) = log.timeline()
    assert "shard:shard-1" in line and "[shard_down]" in line
