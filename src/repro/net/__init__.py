"""Simulated network fabric, fenced leases' transport, history checking.

The last unsimulated failure domain: links.  This package provides

* :mod:`repro.net.fabric` — :class:`NetworkFabric` / :class:`Link` /
  :class:`LinkPlan`: seeded per-directed-link drop / duplication /
  reordering / delay / scheduled (asymmetric) partitions, typed
  :class:`Message` envelopes with idempotency-key dedupe, and the
  virtual clock lease TTLs count;
* :mod:`repro.net.history` — the Jepsen-style invoke/ok/fail/info
  :class:`HistoryRecorder` and the offline :func:`check_history`
  (no acknowledged write lost, no unacknowledged write visible
  without an ``info`` verdict, every read a legal top-k);
* :mod:`repro.net.scenarios` — the partition scenario grid and the
  shared seeded workload driver used by tests, the E22 benchmark, and
  ``examples/partitioned_service.py``.
"""

from repro.net.fabric import (
    MSG_LEASE_RENEW,
    MSG_PROBE,
    MSG_RESYNC,
    MSG_WAL_SHIP,
    Link,
    LinkPlan,
    Message,
    NetStats,
    NetworkFabric,
)
from repro.net.history import (
    CheckResult,
    HistoryEvent,
    HistoryRecorder,
    Violation,
    check_history,
)
from repro.net.scenarios import (
    LEASE_TTL,
    SCENARIOS,
    STEP,
    PartitionScenario,
    ScenarioRun,
    run_partition_scenario,
    run_sharded_partition_scenario,
    scenario_elements,
)

__all__ = [
    "NetworkFabric",
    "Link",
    "LinkPlan",
    "Message",
    "NetStats",
    "MSG_WAL_SHIP",
    "MSG_LEASE_RENEW",
    "MSG_RESYNC",
    "MSG_PROBE",
    "HistoryEvent",
    "HistoryRecorder",
    "Violation",
    "CheckResult",
    "check_history",
    "PartitionScenario",
    "SCENARIOS",
    "ScenarioRun",
    "run_partition_scenario",
    "run_sharded_partition_scenario",
    "scenario_elements",
    "STEP",
    "LEASE_TTL",
]
