"""E23 — Columnar hot path: flat arrays + compiled predicates vs legacy.

The PR-9 optimization claim, isolated: the *same* reduction over the
*same* workload, once with the columnar core engaged (flat weight
arrays, compiled predicates, resumable match scans) and once pinned to
the legacy Element path (``columnar=False``), answer-checked against
each other and the brute-force oracle on every query.

Two regimes, reported separately because they measure different
things:

* **cold** — every query hits a fresh index (best-of-N with a rebuild
  per round, builds untimed): what one-shot predicates pay.
* **warm** — the same request batch repeats against one index:
  visit-promoted :class:`~repro.core.columnar.MatchScan` objects answer
  repeats from the flat columns (dense predicates prove truncation by
  early exit, sparse ones materialize their seeded match sets), which
  the legacy path has no analogue of outside ``batched()`` windows.

The two reductions make different claims, and the floors encode that
honestly.  Theorem 2's ladder shortcut answers *every* columnar query
by one early-exit scan, so it must win cold and warm.  Theorem 1's
chain descent keeps first visits on the sublinear per-level structures
(a cold flat scan would lose to them), so its cold entry is a bounded
**overhead budget** — the visit bookkeeping and larger working set may
cost a little, guarded by a < 1.0 floor — and its speedup claim lives
in the warm regime.  All answers in both modes and both regimes are
checked against the brute-force oracle.

Results land as JSON in
``benchmarks/results/e23_columnar_hotpath.json`` (the ``columnar-speed``
CI job uploads it as an artifact and enforces the floors).

Set ``REPRO_BENCH_QUICK=1`` for the reduced CI workload.
"""

import json
import os
import random
import time
from pathlib import Path

from repro.bench.tables import render_table
from repro.bench.workloads import make_problem
from repro.core.columnar import columnar_disabled
from repro.core.problem import top_k_of
from repro.core.theorem1 import WorstCaseTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
N = 400 if QUICK else 2000
QUERIES = 120 if QUICK else 600
MAX_K = 12
ROUNDS = 2 if QUICK else 3
#: Fresh-index floors.  Theorem 2 must win cold (measured ~1.3x: every
#: query is one early-exit column scan).  Theorem 1's cold queries do
#: legacy work plus visit bookkeeping by design, so its floor is an
#: overhead budget: no more than ~25% cold regression (measured ~8%,
#: with headroom for CI jitter).  Quick mode shrinks the workload to
#: single-digit milliseconds where fixed per-query costs and runner
#: jitter swamp the signal, so its floors are loose catastrophe guards
#: only — the real claims are enforced at full scale.
COLD_FLOORS = (
    {"theorem2": 0.4, "theorem1": 0.4}
    if QUICK
    else {"theorem2": 1.05, "theorem1": 0.75}
)
#: Repeat-batch floors: promoted scans answer repeats from the columns
#: (theorem2 measured ~25x, theorem1 ~3.5x; floors well below).
WARM_FLOORS = (
    {"theorem2": 2.0, "theorem1": 1.1}
    if QUICK
    else {"theorem2": 4.0, "theorem1": 1.5}
)
RESULTS_JSON = Path(__file__).resolve().parent / "results" / "e23_columnar_hotpath.json"


def _requests(problem, count, seed):
    rng = random.Random(seed)
    predicates = problem.predicates(count, seed=seed + 1)
    return [(p, rng.randint(1, MAX_K)) for p in predicates]


def _best_time(fn, rounds=ROUNDS):
    best, result = float("inf"), None
    for _ in range(rounds):
        began = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - began)
    return best, result


def _speedup(legacy_seconds, columnar_seconds):
    return legacy_seconds / columnar_seconds if columnar_seconds > 0 else float("inf")


def _measure_pair(label, build, requests, oracle):
    def run(index):
        return [index.query(p, k) for p, k in requests]

    def build_legacy():
        with columnar_disabled():
            return build()

    def cold_time(builder):
        # Best-of-N where every round rebuilds (untimed), so no scan
        # survives into the timed query pass.
        best, answers = float("inf"), None
        for _ in range(ROUNDS):
            index = builder()
            began = time.perf_counter()
            answers = run(index)
            best = min(best, time.perf_counter() - began)
        return best, answers

    legacy_cold, legacy_answers = cold_time(build_legacy)
    columnar_cold, columnar_answers = cold_time(build)
    assert columnar_answers == oracle, f"{label}: columnar answers inexact"
    assert legacy_answers == oracle, f"{label}: legacy answers inexact"

    # Warm: the batch repeats against one index; columnar repeats
    # resume completed MatchScans instead of re-traversing.
    columnar_index, legacy_index = build(), build_legacy()
    run(columnar_index), run(legacy_index)
    legacy_warm, _ = _best_time(lambda: run(legacy_index))
    columnar_warm, warm_answers = _best_time(lambda: run(columnar_index))
    assert warm_answers == oracle, f"{label}: warm columnar answers inexact"

    cold_speedup = _speedup(legacy_cold, columnar_cold)
    warm_speedup = _speedup(legacy_warm, columnar_warm)
    cold_floor, warm_floor = COLD_FLOORS[label], WARM_FLOORS[label]
    assert cold_speedup >= cold_floor, (
        f"{label}: cold speedup {cold_speedup:.2f}x below the {cold_floor}x "
        f"floor (legacy {legacy_cold * 1e3:.1f}ms, "
        f"columnar {columnar_cold * 1e3:.1f}ms)"
    )
    assert warm_speedup >= warm_floor, (
        f"{label}: warm speedup {warm_speedup:.2f}x below the {warm_floor}x "
        f"floor (legacy {legacy_warm * 1e3:.1f}ms, "
        f"columnar {columnar_warm * 1e3:.1f}ms)"
    )
    return {
        "cold": {
            "legacy_ms": round(legacy_cold * 1e3, 2),
            "columnar_ms": round(columnar_cold * 1e3, 2),
            "speedup": round(cold_speedup, 2),
            "floor": cold_floor,
        },
        "warm": {
            "legacy_ms": round(legacy_warm * 1e3, 2),
            "columnar_ms": round(columnar_warm * 1e3, 2),
            "speedup": round(warm_speedup, 2),
            "floor": warm_floor,
        },
        "queries": len(requests),
        "exact_fraction": 1.0,
    }


def bench_e23_columnar_hotpath(benchmark, results_sink):
    problem = make_problem("range1d", N, seed=51)
    requests = _requests(problem, QUERIES, seed=61)
    oracle = [top_k_of(problem.elements, p, k) for p, k in requests]

    theorem2 = _measure_pair(
        "theorem2",
        lambda: ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory,
            problem.max_factory, seed=71,
        ),
        requests, oracle,
    )
    theorem1 = _measure_pair(
        "theorem1",
        lambda: WorstCaseTopKIndex(
            problem.elements, problem.prioritized_factory, seed=71,
        ),
        requests, oracle,
    )

    def rows(label, doc):
        return [
            [label, regime, doc[regime]["legacy_ms"],
             doc[regime]["columnar_ms"], f"{doc[regime]['speedup']}x",
             f"{doc[regime]['floor']}x", "100%"]
            for regime in ("cold", "warm")
        ]

    results_sink(
        render_table(
            f"E23 Columnar hot path vs legacy Element path "
            f"(range1d, n={N}, {QUERIES} queries, k<={MAX_K})",
            ["reduction", "regime", "legacy ms", "columnar ms", "speedup",
             "floor", "exact"],
            rows("theorem2", theorem2) + rows("theorem1", theorem1),
            note="cold = fresh index per round (theorem1's floor is an "
            "overhead budget, not a speedup claim); warm = repeated "
            "batch (visit-promoted MatchScans); answers oracle-checked "
            "in every mode",
        )
    )

    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(
        json.dumps(
            {"quick": QUICK, "n": N, "queries": QUERIES,
             "theorem2": theorem2, "theorem1": theorem1},
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Timing hook: one columnar theorem-2 query batch.
    index = ExpectedTopKIndex(
        problem.elements, problem.prioritized_factory,
        problem.max_factory, seed=71,
    )
    sample = requests[:32]
    benchmark(lambda: [index.query(p, k) for p, k in sample])
