"""A bulk-loaded B+-tree with ``O(log_B n)`` searches.

Used in two places that the paper calls for explicitly:

* Section 5.5 (EM prioritized halfspace) builds "a B-tree T on the
  weights of the n points" and answers a prioritized query by collecting
  the *canonical set* of nodes covering ``{e : w(e) >= tau}`` —
  :meth:`BPlusTree.canonical_cover_geq` implements that decomposition.
* Section 5.2's static 1D stabbing-max reduces to predecessor search,
  which in EM is :meth:`BPlusTree.predecessor` in ``O(log_B n)`` I/Os.

Each node occupies one disk block (fanout ``Theta(B)``), so every node
visit is one I/O through the context cache.  The tree is static
(bulk-loaded); the dynamic structures in this repository (interval
trees) manage their own rebalancing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.em.model import EMContext


@dataclass
class BTreeNode:
    """One node of the B+-tree; occupies a single disk block.

    Leaves hold ``(key, value)`` pairs; internal nodes hold router keys
    and child block ids.  ``subtree_size`` lets canonical-set consumers
    size their per-node secondary structures.
    """

    node_id: int
    is_leaf: bool
    keys: List[float] = field(default_factory=list)
    values: List[Any] = field(default_factory=list)  # leaf payloads
    children: List[int] = field(default_factory=list)  # internal child block ids
    subtree_size: int = 0
    min_key: float = 0.0
    max_key: float = 0.0


class BPlusTree:
    """Static B+-tree over ``(key, value)`` pairs sorted by key.

    Parameters
    ----------
    ctx:
        EM context; fanout defaults to ``ctx.B`` so a node fills a block.
    items:
        ``(key, value)`` pairs; sorted internally if ``presorted`` is
        false.  Keys need not be unique.
    fanout:
        Override the fanout (Section 5.5 uses fanout ``(n/B)^{eps/2}``).
    """

    def __init__(
        self,
        ctx: EMContext,
        items: Sequence[Tuple[float, Any]],
        fanout: Optional[int] = None,
        presorted: bool = False,
    ) -> None:
        self.ctx = ctx
        self.fanout = max(2, fanout if fanout is not None else ctx.B)
        if not presorted:
            items = sorted(items, key=lambda kv: kv[0])
            ctx.charge_reads(len(items))  # model the sorting scan
            ctx.charge_writes(len(items))
        self._items = list(items)
        self.n = len(self._items)
        self._root_id: Optional[int] = None
        self.height = 0
        if self.n:
            self._bulk_load()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _bulk_load(self) -> None:
        f = self.fanout
        level: List[BTreeNode] = []
        for start in range(0, self.n, f):
            chunk = self._items[start : start + f]
            node = self._new_node(is_leaf=True)
            node.keys = [key for key, _ in chunk]
            node.values = [value for _, value in chunk]
            node.subtree_size = len(chunk)
            node.min_key, node.max_key = node.keys[0], node.keys[-1]
            self._store(node)
            level.append(node)
        self.height = 1
        while len(level) > 1:
            parents: List[BTreeNode] = []
            for start in range(0, len(level), f):
                group = level[start : start + f]
                node = self._new_node(is_leaf=False)
                node.children = [child.node_id for child in group]
                node.keys = [child.min_key for child in group]
                node.subtree_size = sum(child.subtree_size for child in group)
                node.min_key = group[0].min_key
                node.max_key = group[-1].max_key
                self._store(node)
                parents.append(node)
            level = parents
            self.height += 1
        self._root_id = level[0].node_id

    def _new_node(self, is_leaf: bool) -> BTreeNode:
        block_id = self.ctx.allocate_block()
        return BTreeNode(node_id=block_id, is_leaf=is_leaf)

    def _store(self, node: BTreeNode) -> None:
        # The node object is the block's single record; it "is" the block.
        self.ctx.write_block(node.node_id, [node])

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> BTreeNode:
        """Load a node (one I/O through the cache)."""
        return self.ctx.read_block(node_id)[0]

    @property
    def root(self) -> Optional[BTreeNode]:
        """The root node, or ``None`` for an empty tree."""
        if self._root_id is None:
            return None
        return self.node(self._root_id)

    def iter_nodes(self) -> Iterator[BTreeNode]:
        """Yield every node (root first) — used to attach per-node payloads."""
        if self._root_id is None:
            return
        stack = [self._root_id]
        while stack:
            node = self.node(stack.pop())
            yield node
            if not node.is_leaf:
                stack.extend(reversed(node.children))

    def leaf_items_under(self, node_id: int) -> List[Tuple[float, Any]]:
        """All ``(key, value)`` pairs in the subtree of ``node_id``."""
        out: List[Tuple[float, Any]] = []
        stack = [node_id]
        while stack:
            node = self.node(stack.pop())
            if node.is_leaf:
                out.extend(zip(node.keys, node.values))
            else:
                stack.extend(reversed(node.children))
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def predecessor(self, key: float) -> Optional[Tuple[float, Any]]:
        """Largest ``(k, v)`` with ``k <= key``; ``O(log_B n)`` I/Os."""
        if self._root_id is None:
            return None
        node = self.node(self._root_id)
        best: Optional[Tuple[float, Any]] = None
        while True:
            if node.is_leaf:
                for k, v in zip(node.keys, node.values):
                    if k <= key:
                        best = (k, v)
                    else:
                        break
                return best
            # Descend into the rightmost child whose min_key <= key.
            child_index = 0
            for i, router in enumerate(node.keys):
                if router <= key:
                    child_index = i
                else:
                    break
            if node.keys[0] > key:
                # Every key in the tree exceeds ``key``.
                return best
            # The chosen child's min_key <= key, so its subtree contains
            # the predecessor; no sibling look-back is needed.
            node = self.node(node.children[child_index])

    def canonical_cover_geq(self, tau: float) -> List[BTreeNode]:
        """Canonical nodes whose disjoint subtrees cover ``{k : k >= tau}``.

        Walks the root-to-leaf path of ``tau``; at each internal node all
        children strictly right of the path child are taken whole.  The
        path leaf contributes itself (callers filter its items by key).
        Returns ``O(fanout * log_fanout n)`` nodes in ``O(log_fanout n)``
        I/Os (taken nodes are returned by id without being opened —
        opening them is the caller's cost).
        """
        if self._root_id is None:
            return []
        cover: List[BTreeNode] = []
        node = self.node(self._root_id)
        while not node.is_leaf:
            child_index = 0
            for i, router in enumerate(node.keys):
                if router <= tau:
                    child_index = i
                else:
                    break
            for sibling_id in node.children[child_index + 1 :]:
                cover.append(self.node(sibling_id))
            node = self.node(node.children[child_index])
        cover.append(node)
        return cover

    def range_items(self, lo: float, hi: float) -> List[Tuple[float, Any]]:
        """All items with ``lo <= key <= hi`` (test/diagnostic helper)."""
        return [(k, v) for k, v in self._items if lo <= k <= hi]

    @property
    def num_blocks(self) -> int:
        """Blocks occupied by the tree: one per node."""
        count = 0
        for _ in self.iter_nodes():
            count += 1
        return count
