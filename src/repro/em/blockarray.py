"""A record array laid out in disk blocks.

:class:`BlockArray` is the workhorse container for every EM structure in
this repository: sorted weight lists, endpoint lists and core-set
snapshots are all stored as block arrays so that scanning ``t`` records
costs ``ceil(t / B)`` I/Os — exactly the ``O(t/B)`` output term that the
paper's query bounds carry.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.em.model import EMContext


class BlockArray:
    """A fixed-content array of records stored in ``ceil(n/B)`` blocks.

    Records are written once at construction (bulk load) and read through
    the context's cache.  Random access to record ``i`` touches one
    block; a scan of a range touches the covering blocks once each in
    order, which is what gives prioritized queries their ``O(t/B)``
    output term.
    """

    def __init__(self, ctx: EMContext, records: Iterable[object] = ()) -> None:
        self.ctx = ctx
        self._block_ids: List[int] = []
        self._length = 0
        self.extend(records)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def extend(self, records: Iterable[object]) -> None:
        """Append records in bulk, filling the trailing block first."""
        B = self.ctx.B
        pending: List[object] = []
        if self._block_ids and self._length % B != 0:
            # Reopen the partially filled tail block.
            tail_id = self._block_ids.pop()
            pending = list(self.ctx.read_block(tail_id))
            self._length -= len(pending)
        for record in records:
            pending.append(record)
            if len(pending) == B:
                self._block_ids.append(self.ctx.allocate_block(pending))
                self._length += B
                pending = []
        if pending:
            self._length += len(pending)
            self._block_ids.append(self.ctx.allocate_block(pending))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def num_blocks(self) -> int:
        """Blocks occupied — the EM space measure for this array."""
        return len(self._block_ids)

    def get(self, index: int) -> object:
        """Random access to record ``index`` (one block read)."""
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range for BlockArray of length {self._length}")
        B = self.ctx.B
        block = self.ctx.read_block(self._block_ids[index // B])
        return block[index % B]

    def __getitem__(self, index: int) -> object:
        return self.get(index)

    def scan(self, start: int = 0, stop: Optional[int] = None) -> Iterator[object]:
        """Yield records ``start..stop`` reading each covering block once."""
        if stop is None:
            stop = self._length
        stop = min(stop, self._length)
        if start < 0 or start > stop:
            raise IndexError(f"invalid scan range [{start}, {stop})")
        B = self.ctx.B
        index = start
        while index < stop:
            block_idx, offset = divmod(index, B)
            block = self.ctx.read_block(self._block_ids[block_idx])
            upper = min(stop - index + offset, len(block))
            for record in block[offset:upper]:
                yield record
            index += upper - offset

    def scan_until(self, predicate, start: int = 0) -> Iterator[object]:
        """Yield records from ``start`` while ``predicate(record)`` holds.

        Stops at (and does not yield) the first failing record.  This is
        the access pattern of a prioritized query over a weight-descending
        list: scan until the weight drops below ``tau``; the I/O cost is
        one block per ``B`` reported records plus at most one extra block.
        """
        for record in self.scan(start):
            if not predicate(record):
                return
            yield record

    def to_list(self) -> List[object]:
        """Materialise the whole array (charges a full scan)."""
        return list(self.scan())

    # ------------------------------------------------------------------
    # Search (for arrays the caller keeps sorted)
    # ------------------------------------------------------------------
    def bisect_left(self, value, key=lambda record: record) -> int:
        """Binary search over a key-ascending array; ``O(log_2 n)`` I/Os.

        Returns the first index whose key is ``>= value``.  Callers that
        need ``O(log_B n)`` searches should use :class:`repro.em.btree.BPlusTree`
        instead; this helper exists for small auxiliary arrays.
        """
        lo, hi = 0, self._length
        while lo < hi:
            mid = (lo + hi) // 2
            if key(self.get(mid)) < value:
                lo = mid + 1
            else:
                hi = mid
        return lo


def block_array_from_sorted(ctx: EMContext, records: Sequence[object]) -> BlockArray:
    """Bulk-load a :class:`BlockArray` from an already-ordered sequence."""
    return BlockArray(ctx, records)
