"""`ScatterGatherExecutor`: exact distributed top-k with max-probe pruning.

The paper's Lemma 3 / Theorem 2 machinery hands each shard a cheap
**max structure**; the executor turns those into a distributed
threshold algorithm (the classic shape of distributed top-k retrieval,
cf. Shah et al.'s optimal top-k string retrieval and Tao's dynamic
one-dimensional top-k structures):

1. **scatter (bounds)** — probe every shard's max structure once.  A
   shard's answer upper-bounds everything it could contribute; a shard
   with no matching element drops out immediately;
2. **descend with a running threshold** — visit shards in descending
   bound order, maintaining the k-th best weight collected so far.
   The moment the next bound falls to or below the running threshold,
   *every* remaining shard is pruned: their best matching element
   already cannot crack the global top-k (collected k-th only rises as
   more shards report, so the check is safe against the final answer);
3. **per-shard top-k' probes with geometric escalation** — a visited
   shard is asked for its top ``k'`` where ``k'`` starts at
   ``~k/S`` and grows geometrically (Theorem 2's escalation ladder,
   applied across shards instead of sample levels) until the shard is
   exhausted, its tail falls below the running threshold, or ``k'``
   reaches ``k`` — the per-shard cap, since no shard contributes more
   than ``k`` elements;
4. **gather** — the per-shard descending runs are k-way merged with
   :func:`merge_topk` (``heapq.merge`` + early cutoff at ``k``: the
   merge stops the moment ``k`` elements are out, instead of
   concatenating and re-selecting).

Exactness argument, in one line: a shard is skipped only when its
*exact* max matching weight is at or below the weight of the current
k-th best collected element, which is itself a lower bound on the
final k-th weight — so nothing skippable can belong to the answer
(weights are distinct, the repo's standing precondition).

Every run pins the router's epoch first and re-validates it after the
gather; a topology change in between (split/merge — the router bumps
the epoch before touching shard contents) discards the run and retries
against the fresh map.  Pinning itself blocks while a change is
mid-window (the router's in-flux latch), so a run can never plan — or
validate — against a map whose shard contents are half-moved.  Shard machine deaths during a probe go through
the owner's shard-loss ladder (replica failover / disk recovery /
partial-with-flag), mirroring the PR-3 story at shard granularity.
"""

from __future__ import annotations

import heapq
import math
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.problem import Element, Predicate
from repro.resilience.errors import StaleShardMap
from repro.sharding.router import MapSnapshot, Shard, ShardRouter


def merge_topk(runs: Sequence[Sequence[Element]], k: int) -> List[Element]:
    """K-way merge of descending-weight runs, cut off at ``k``.

    One ``len(runs)``-sized heap of flat ``(-weight, run, position)``
    tuples streams the runs and stops after ``k`` outputs — ``O(k log
    S)`` comparisons instead of the concatenate-then-``nlargest``
    ``O(T log k)`` over the full ``T`` collected elements, and tuple
    comparisons bottom out on the float weight (weights are distinct)
    rather than a per-element key callable.
    """
    if k <= 0:
        return []
    live = [run for run in runs if run]
    if not live:
        return []
    if len(live) == 1:
        return list(live[0][:k])
    heap = [(-run[0].weight, index, 0) for index, run in enumerate(live)]
    heapq.heapify(heap)
    out: List[Element] = []
    push, pop = heapq.heappush, heapq.heappop
    while heap and len(out) < k:
        _, index, position = pop(heap)
        run = live[index]
        out.append(run[position])
        position += 1
        if position < len(run):
            push(heap, (-run[position].weight, index, position))
    return out


@dataclass
class ProbeTrace:
    """Per-query probe accounting, folded into :class:`ShardingStats`.

    Also carries the query's own ``partial_ok`` decision so the probe
    callback reads per-call state — never shared index state, which
    concurrent queries with different ``allow_partial`` choices would
    race on.
    """

    partial_ok: bool = False  # this query's allow_partial decision
    shard_slots: int = 0      # shards in the map when the query planned
    max_probes: int = 0       # bound probes (one per mapped shard)
    shard_probes: int = 0     # top-k' traversals actually issued
    shards_contacted: int = 0 # distinct shards that saw a top-k' probe
    shards_pruned: int = 0    # shards skipped by the threshold
    shards_empty: int = 0     # shards whose bound probe found no match
    escalations: int = 0      # k' regrows within one shard
    shard_losses: int = 0
    shard_recoveries: int = 0
    partial: bool = False     # at least one lost shard was skipped

    def add_to(self, stats) -> None:
        """Fold this trace into cumulative :class:`ShardingStats`."""
        stats.shard_slots += self.shard_slots
        stats.max_probes += self.max_probes
        stats.shard_probes += self.shard_probes
        stats.shards_contacted += self.shards_contacted
        stats.shards_pruned += self.shards_pruned
        stats.shards_empty += self.shards_empty
        stats.escalations += self.escalations
        stats.shard_losses += self.shard_losses
        stats.shard_recoveries += self.shard_recoveries
        if self.partial:
            stats.partial_answers += 1


class _KthTracker:
    """Running k-th best weight over everything collected so far."""

    __slots__ = ("k", "_heap")

    def __init__(self, k: int) -> None:
        self.k = k
        self._heap: List[float] = []

    def offer(self, weight: float) -> None:
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, weight)
        elif weight > self._heap[0]:
            heapq.heapreplace(self._heap, weight)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def threshold(self) -> float:
        """The k-th best collected weight, or ``-inf`` until ``k`` seen."""
        return self._heap[0] if len(self._heap) >= self.k else -math.inf


class ScatterGatherExecutor:
    """Answer ``(q, k)`` across a router's shards (module docstring).

    Parameters
    ----------
    router:
        Source of map snapshots and epoch validation.
    probe_fn:
        ``(shard, predicate, k', trace) -> list | None`` — one fault-
        handled backend probe, supplied by the owning
        :class:`~repro.sharding.sharded.ShardedTopKIndex` (it owns the
        shard-loss ladder).  ``None`` means the shard is lost and the
        query continues partial.
    escalation_factor:
        Geometric growth of the per-shard ``k'`` (paper-flavoured
        default 4, the ``4K`` slack constant).
    max_map_retries:
        Scatter-gathers discarded for epoch mismatches before
        :class:`StaleShardMap` escapes.
    """

    def __init__(
        self,
        router: ShardRouter,
        probe_fn: Callable[[Shard, Predicate, int, ProbeTrace], Optional[List[Element]]],
        escalation_factor: int = 4,
        max_map_retries: int = 4,
    ) -> None:
        self.router = router
        self._probe_fn = probe_fn
        self.escalation_factor = max(2, escalation_factor)
        self.max_map_retries = max(1, max_map_retries)
        #: Serializes every mutation of the shared cumulative stats —
        #: the owning index increments its own counters under it too.
        self.stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    def scatter_gather(
        self, predicate: Predicate, k: int, stats=None, partial_ok: bool = False
    ) -> "GatherResult":
        """One exact top-k answer, retried across topology epochs."""
        last_epoch = -1
        for _ in range(self.max_map_retries):
            snapshot = self.router.snapshot()
            last_epoch = snapshot.epoch
            trace = ProbeTrace(
                partial_ok=partial_ok, shard_slots=len(snapshot.shards)
            )
            answer = self._run(snapshot, predicate, k, trace)
            # Valid only if the topology neither moved on (epoch) nor
            # started moving (flux) since the snapshot was pinned.
            if self.router.epoch == snapshot.epoch and not self.router.in_flux:
                if stats is not None:
                    with self.stats_lock:
                        trace.add_to(stats)
                return GatherResult(answer=answer, trace=trace)
            if stats is not None:
                with self.stats_lock:
                    stats.stale_map_retries += 1
                    # Machine deaths are real even in a discarded run.
                    stats.shard_losses += trace.shard_losses
                    stats.shard_recoveries += trace.shard_recoveries
        raise StaleShardMap(
            f"shard map changed under the query {self.max_map_retries} times",
            epoch=last_epoch,
            current=self.router.epoch,
        )

    # ------------------------------------------------------------------
    def _run(
        self,
        snapshot: MapSnapshot,
        predicate: Predicate,
        k: int,
        trace: ProbeTrace,
    ) -> List[Element]:
        # Phase 1: bound every shard with one cheap max probe.
        bounds: List[tuple] = []
        for shard in snapshot.shards:
            trace.max_probes += 1
            top = shard.max_probe(predicate)
            if top is None:
                trace.shards_empty += 1
            else:
                bounds.append((-top.weight, shard.name, shard))
        bounds.sort()  # descending bound; name breaks ties deterministically
        # Phase 2+3: descend, prune at the running threshold, escalate k'.
        kth = _KthTracker(k)
        runs: List[List[Element]] = []
        for visited, (neg_bound, _name, shard) in enumerate(bounds):
            if kth.full and -neg_bound <= kth.threshold:
                trace.shards_pruned += len(bounds) - visited
                break
            items = self._probe_shard(shard, predicate, k, kth.threshold, trace)
            if items is None:
                trace.partial = True
                continue
            trace.shards_contacted += 1
            if items:
                runs.append(items)
                for element in items:
                    kth.offer(element.weight)
        # Phase 4: k-way merge with early cutoff.
        return merge_topk(runs, k)

    def _probe_shard(
        self,
        shard: Shard,
        predicate: Predicate,
        k: int,
        threshold: float,
        trace: ProbeTrace,
    ) -> Optional[List[Element]]:
        """The shard's candidates, growing ``k'`` geometrically.

        ``threshold`` is the running k-th weight *before* this shard
        reports — a lower bound on the final k-th, so stopping once the
        shard's tail drops below it can never lose an answer element.
        """
        active = max(1, self.router.num_shards)
        k_prime = min(k, max(1, math.ceil(k / active)))
        while True:
            items = self._probe_fn(shard, predicate, k_prime, trace)
            if items is None:
                return None  # lost shard: the owner opted into partial
            trace.shard_probes += 1
            if len(items) < k_prime or k_prime >= k:
                return items  # exhausted the shard, or hit the per-shard cap
            if threshold > -math.inf and items[-1].weight < threshold:
                return items  # everything deeper is below the threshold
            trace.escalations += 1
            k_prime = min(k, k_prime * self.escalation_factor)


@dataclass
class GatherResult:
    """One scatter-gather outcome: the exact answer plus its trace."""

    answer: List[Element]
    trace: ProbeTrace

    @property
    def partial(self) -> bool:
        return self.trace.partial


__all__ = [
    "ScatterGatherExecutor",
    "GatherResult",
    "ProbeTrace",
    "merge_topk",
]
