"""Partitioner: deterministic placement, quantile ranges, assignments."""

import pytest

from repro.core.problem import Element
from repro.resilience.errors import InvalidConfiguration
from repro.sharding import DEFAULT_BUCKETS, Partitioner

from sharding_util import make_uniform_elements, make_zipf_elements


class TestHashStrategy:
    def test_buckets_in_range_and_deterministic_across_instances(self):
        elements = make_uniform_elements(60, seed=1)
        a = Partitioner(strategy="hash", num_buckets=16, seed=7)
        b = Partitioner(strategy="hash", num_buckets=16, seed=7)
        for element in elements:
            bucket = a.bucket_of(element)
            assert 0 <= bucket < 16
            # Seeded BLAKE2b, not the process-salted builtin hash:
            # placement is a pure function of (seed, element).
            assert b.bucket_of(element) == bucket

    def test_different_seeds_place_differently(self):
        elements = make_uniform_elements(60, seed=1)
        a = Partitioner(strategy="hash", num_buckets=16, seed=0)
        b = Partitioner(strategy="hash", num_buckets=16, seed=1)
        assert any(a.bucket_of(e) != b.bucket_of(e) for e in elements)

    def test_spreads_over_many_buckets(self):
        elements = make_uniform_elements(200, seed=2)
        p = Partitioner(strategy="hash", num_buckets=16, seed=0)
        used = {p.bucket_of(e) for e in elements}
        assert len(used) >= 12  # 200 balls into 16 bins misses few bins


class TestRangeStrategy:
    def test_buckets_ordered_by_weight(self):
        elements = make_zipf_elements(80, seed=3)
        p = Partitioner.for_elements(elements, strategy="range", num_buckets=8)
        ranked = sorted(elements, key=lambda e: e.weight)
        buckets = [p.bucket_of(e) for e in ranked]
        assert buckets == sorted(buckets)  # heavier never in a lower bucket

    def test_equal_count_quantiles_balance_skewed_values(self):
        elements = make_zipf_elements(128, seed=4)
        p = Partitioner.for_elements(elements, strategy="range", num_buckets=8)
        counts = [0] * 8
        for e in elements:
            counts[p.bucket_of(e)] += 1
        # 128 elements over 8 equal-count bands: every band near 16.
        assert min(counts) >= 8 and max(counts) <= 32

    def test_boundaries_validation(self):
        with pytest.raises(InvalidConfiguration):
            Partitioner(strategy="range", num_buckets=4)  # no boundaries
        with pytest.raises(InvalidConfiguration):
            Partitioner(strategy="range", num_buckets=4, boundaries=[1.0])
        with pytest.raises(InvalidConfiguration):
            Partitioner(
                strategy="range", num_buckets=4, boundaries=[3.0, 2.0, 1.0]
            )

    def test_out_of_range_weights_clamp_to_extreme_buckets(self):
        elements = make_uniform_elements(40, seed=5)
        p = Partitioner.for_elements(elements, strategy="range", num_buckets=4)
        low = Element(1, -1e9)
        high = Element(2, 1e9)
        assert p.bucket_of(low) == 0
        assert p.bucket_of(high) == 3


class TestConfig:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(InvalidConfiguration):
            Partitioner(strategy="nope")

    def test_default_bucket_count(self):
        assert Partitioner().num_buckets == DEFAULT_BUCKETS

    def test_initial_assignment_contiguous_and_complete(self):
        p = Partitioner(num_buckets=16)
        assignment = p.initial_assignment(4)
        assert len(assignment) == 16
        assert set(assignment) == {0, 1, 2, 3}
        assert assignment == sorted(assignment)  # contiguous runs

    def test_initial_assignment_bounds(self):
        p = Partitioner(num_buckets=8)
        with pytest.raises(InvalidConfiguration):
            p.initial_assignment(0)
        with pytest.raises(InvalidConfiguration):
            p.initial_assignment(9)  # more shards than buckets
