"""Shared benchmark infrastructure.

Each ``bench_eN_*.py`` file regenerates one experiment from DESIGN.md
section 6.  Every experiment does two things:

1. prints (and appends to ``benchmarks/results/experiments.txt``) the
   shape table recorded in EXPERIMENTS.md — I/O counts or operation
   counts swept over ``n`` or ``k``;
2. registers one pytest-benchmark timing for a representative query
   batch, so ``pytest benchmarks/ --benchmark-only`` also reports
   wall-clock numbers.

Builds are cached per session so sweeps don't re-generate data.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_sink():
    """Append rendered experiment tables to one results file."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "experiments.txt"
    handle = path.open("a", encoding="utf-8")

    def emit(text: str) -> None:
        print()
        print(text)
        handle.write(text + "\n\n")
        handle.flush()

    yield emit
    handle.close()
