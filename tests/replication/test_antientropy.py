"""Anti-entropy: seal walks, digest comparison, resync repair."""

import pytest

from conftest import elem, make_cluster


def corrupt_snapshot_block(replica):
    """Rot one sealed block the replica's durable root references."""
    block_id = replica.store.snapshots[0].head_block
    replica.store.disk.raw_write(block_id, ["rot"])
    replica.store.ctx.drop_cache()
    return block_id


def by_name(cluster, name):
    return next(r for r in cluster.replicas if r.name == name)


class TestDetection:
    def test_healthy_cluster_scrubs_clean(self, cluster):
        for i in range(40, 50):
            cluster.insert(elem(i))
        report = cluster.scrub()
        assert report.clean
        assert report.divergent == []
        assert report.repaired == []
        assert sorted(report.replicas_checked) == sorted(
            r.name for r in cluster.replicas
        )
        assert set(report.digests.values()) == {report.reference_digest}
        assert all(not bad for bad in report.bad_blocks.values())

    def test_rotten_seal_is_detected(self, cluster):
        victim = [r for r in cluster.replicas if not r.is_primary][0]
        block_id = corrupt_snapshot_block(victim)
        report = cluster.scrub(repair=False)
        assert report.divergent == [victim.name]
        assert report.bad_blocks[victim.name] == [block_id]
        assert report.repaired == []  # detection only
        assert by_name(cluster, victim.name) is victim  # machine untouched

    def test_logical_divergence_is_detected_without_bad_blocks(self, cluster):
        victim = [r for r in cluster.replicas if not r.is_primary][0]
        cluster.align()
        victim.durable.inner.insert(elem(999))  # rot behind the WAL's back
        report = cluster.scrub(repair=False)
        assert report.divergent == [victim.name]
        assert report.bad_blocks[victim.name] == []  # every seal passes
        assert report.digests[victim.name] != report.reference_digest

    def test_all_replicas_damaged_means_no_trustworthy_source(self, cluster):
        for replica in cluster.replicas:
            corrupt_snapshot_block(replica)
        report = cluster.scrub()
        assert sorted(report.divergent) == sorted(
            r.name for r in cluster.replicas
        )
        assert report.repaired == []
        assert report.reference_digest is None


class TestRepair:
    def test_corrupted_replica_is_resynced_bit_for_bit(self, cluster):
        for i in range(40, 50):
            cluster.insert(elem(i))
        victim = [r for r in cluster.replicas if not r.is_primary][0]
        corrupt_snapshot_block(victim)
        report = cluster.scrub()
        assert report.divergent == [victim.name]
        assert report.repaired == [victim.name]
        # Snapshot taken at build (lsn 0) + the 10-record committed tail.
        assert report.records_resynced == 10
        reborn = by_name(cluster, victim.name)
        assert reborn is not victim  # the damaged machine was retired
        primary = cluster.primary
        assert reborn.state_digest() == primary.state_digest()
        assert (
            reborn.durable.inner.snapshot_state()
            == primary.durable.inner.snapshot_state()
        )
        assert reborn.durable_lsn == primary.durable_lsn
        assert cluster.scrub().clean  # convergence is stable

    def test_repaired_replica_keeps_shipping(self, cluster):
        victim = [r for r in cluster.replicas if not r.is_primary][0]
        corrupt_snapshot_block(victim)
        cluster.scrub()
        cluster.insert(elem(40))
        reborn = by_name(cluster, victim.name)
        assert reborn.durable_lsn == cluster.primary.durable_lsn
        cluster.align()
        assert reborn.state_digest() == cluster.primary.state_digest()

    def test_divergent_primary_is_repaired_from_a_follower(self, cluster):
        for i in range(40, 45):
            cluster.insert(elem(i))
        primary = cluster.primary
        corrupt_snapshot_block(primary)
        report = cluster.scrub()
        assert report.divergent == [primary.name]
        assert report.repaired == [primary.name]
        reborn = cluster.primary
        assert reborn is not primary
        assert reborn.name == primary.name
        assert reborn.is_primary  # the slot keeps its role
        follower = [r for r in cluster.replicas if not r.is_primary][0]
        assert reborn.state_digest() == follower.state_digest()

    def test_logical_rot_is_repaired(self, cluster):
        victim = [r for r in cluster.replicas if not r.is_primary][0]
        cluster.align()
        victim.durable.inner.insert(elem(999))
        report = cluster.scrub()
        assert report.repaired == [victim.name]
        reborn = by_name(cluster, victim.name)
        assert elem(999) not in reborn.durable.inner
        assert reborn.state_digest() == cluster.primary.state_digest()

    def test_cluster_stats_mirror_the_report(self, cluster):
        victim = [r for r in cluster.replicas if not r.is_primary][0]
        corrupt_snapshot_block(victim)
        report = cluster.scrub()
        assert cluster.stats.scrubs == 1
        assert cluster.stats.scrub_repairs == len(report.repaired) == 1
        assert cluster.stats.records_resynced == report.records_resynced
        assert cluster.scrubber.repairs == 1
