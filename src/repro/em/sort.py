"""External merge sort in the simulated EM model.

Implements the classic two-phase sort of Aggarwal and Vitter: run
formation loads ``M`` records at a time and sorts them in memory, then a
``(M/B - 1)``-way merge combines runs until one remains, for a total of
``O((n/B) log_{M/B}(n/B))`` I/Os.  Bulk-loading every static structure in
the repository starts with this sort, so index *construction* costs are
also honestly counted.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Optional

from repro.em.blockarray import BlockArray
from repro.em.model import EMContext


def external_merge_sort(
    ctx: EMContext,
    records: Iterable[object],
    key: Optional[Callable[[object], object]] = None,
    reverse: bool = False,
) -> BlockArray:
    """Sort ``records`` and return them as a new :class:`BlockArray`.

    Parameters
    ----------
    ctx:
        The EM context whose ``B``/``M`` govern run length and fan-in and
        whose counters are charged.
    records:
        Input records; consumed once.
    key, reverse:
        As in :func:`sorted`.
    """
    key = key if key is not None else _identity
    runs = _form_runs(ctx, records, key, reverse)
    fan_in = max(2, ctx.num_frames - 1)
    while len(runs) > 1:
        runs = [
            _merge_runs(ctx, runs[i : i + fan_in], key, reverse)
            for i in range(0, len(runs), fan_in)
        ]
    if not runs:
        return BlockArray(ctx)
    return runs[0]


def _identity(record: object) -> object:
    return record


def _form_runs(
    ctx: EMContext,
    records: Iterable[object],
    key: Callable[[object], object],
    reverse: bool,
) -> List[BlockArray]:
    """Phase one: produce sorted runs of up to ``M`` records each."""
    runs: List[BlockArray] = []
    buffer: List[object] = []
    for record in records:
        buffer.append(record)
        if len(buffer) == ctx.M:
            # Loading M records costs M/B reads; writing the run M/B writes.
            ctx.charge_reads(len(buffer))
            buffer.sort(key=key, reverse=reverse)
            runs.append(BlockArray(ctx, buffer))
            buffer = []
    if buffer:
        ctx.charge_reads(len(buffer))
        buffer.sort(key=key, reverse=reverse)
        runs.append(BlockArray(ctx, buffer))
    return runs


def _merge_runs(
    ctx: EMContext,
    runs: List[BlockArray],
    key: Callable[[object], object],
    reverse: bool,
) -> BlockArray:
    """Phase two: one multiway merge pass over ``runs``."""
    if len(runs) == 1:
        return runs[0]
    sign = -1 if reverse else 1

    def stream(run: BlockArray):
        for record in run.scan():
            yield (_OrderKey(key(record), sign), record)

    merged = heapq.merge(*(stream(run) for run in runs))
    return BlockArray(ctx, (record for _, record in merged))


class _OrderKey:
    """Wraps a sort key so ``reverse=True`` works inside ``heapq.merge``."""

    __slots__ = ("value", "sign")

    def __init__(self, value: object, sign: int) -> None:
        self.value = value
        self.sign = sign

    def __lt__(self, other: "_OrderKey") -> bool:
        if self.sign == 1:
            return self.value < other.value
        return other.value < self.value
