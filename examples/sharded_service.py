"""A horizontally sharded top-k service that scales and rebalances online.

One logical index over 200k-coordinate listings is partitioned across
four simulated shard machines by
:class:`repro.sharding.ShardedTopKIndex`:

1. a weight-aware range partitioner places every listing into one of
   64 virtual buckets; an epoch-stamped shard map assigns buckets to
   machines, each holding its own durable Theorem 2 index plus a
   coordinator-side max structure;
2. queries run as an exact **scatter-gather**: one cheap max probe
   bounds each shard, shards are visited in descending bound order,
   and the running k-th weight prunes every shard whose bound cannot
   crack the answer — on skewed weights most shards are never
   contacted;
3. the hottest shard is **split online** inside the router's
   topology-change window: the map's epoch is bumped and latched in
   flux first (in-flight queries retry, new ones block rather than
   plan against mid-move contents), the donor is checkpointed, the
   moving elements are handed over under WAL protection, and the new
   topology is installed — releasing the latch;
4. a shard machine is killed mid-workload; the query path recovers it
   from its surviving disk on the spot (snapshot + replayed WAL tail)
   and the answer is still exact;
5. the whole thing rides behind a :class:`ServingEngine`, whose
   epoch-aware result cache and parallel fan-out work unchanged, and
   its health summary reports topology, churn, and pruning efficiency.

Run:  python examples/sharded_service.py
"""

import random

from repro.core.problem import Element, top_k_of
from repro.serving import ServingEngine
from repro.sharding import sharded_index
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap


def main() -> None:
    rng = random.Random(33)
    coords = rng.sample(range(200_000), 700)
    # Zipf-ish relevance: a few listings carry most of the weight.
    listings = [
        Element(float(c), 1_000_000.0 / (i + 1) ** 1.1)
        for i, c in enumerate(coords)
    ]

    # ------------------------------------------------------------------
    # 1. Four shard machines, one logical index.
    # ------------------------------------------------------------------
    index = sharded_index(
        listings, DynamicRangeTreap, DynamicRangeTreap,
        num_shards=4, strategy="range", seed=9,
    )
    print(f"sharded index up: {index!r}")
    print(f"  shard sizes: {index.router.shard_sizes()}")

    # ------------------------------------------------------------------
    # 2. Exact scatter-gather with threshold pruning.
    # ------------------------------------------------------------------
    everywhere = RangePredicate1D(0.0, 200_000.0)
    answer = index.query(everywhere, 5)
    assert answer == top_k_of(listings, everywhere, 5)
    stats = index.stats
    print(
        f"top-5 exact; contacted {stats.shards_contacted} of "
        f"{stats.shard_slots} shard slots (pruned {stats.shards_pruned})"
    )

    # ------------------------------------------------------------------
    # 3. Online split of the hottest shard.
    # ------------------------------------------------------------------
    donor, freshly_minted = index.split_shard()
    print(
        f"split {donor} -> +{freshly_minted}; epoch now "
        f"{index.router.epoch}, sizes {index.router.shard_sizes()}"
    )
    assert index.query(everywhere, 5) == top_k_of(listings, everywhere, 5)

    # ------------------------------------------------------------------
    # 4. Kill a machine; the query path recovers it from its disk.
    # ------------------------------------------------------------------
    victim = index.router.shard_for(max(listings, key=lambda e: e.weight))
    victim.machine.mark_dead()
    print(f"killed {victim.name} (holds the heaviest listing)")
    assert index.query(everywhere, 5) == top_k_of(listings, everywhere, 5)
    print(
        f"still exact; recoveries={index.stats.shard_recoveries}, "
        f"machine alive again: {victim.machine.alive}"
    )

    # ------------------------------------------------------------------
    # 5. Serve it: cache + batching + parallel fan-out, health in one place.
    # ------------------------------------------------------------------
    with ServingEngine(index, pool_size=2, parallel_threshold=3) as engine:
        requests = [
            (RangePredicate1D(float(lo), float(lo + 60_000)), 3)
            for lo in range(0, 140_001, 20_000)
        ]
        answers = engine.serve(requests)
        for (predicate, k), got in zip(requests, answers):
            assert got == top_k_of(listings, predicate, k)
        health = engine.health
        print(
            f"served {len(requests)} requests exactly; shards={health.shards}, "
            f"splits={health.shard_splits}, "
            f"contact ratio={health.scatter_contact_ratio:.2f}"
        )


if __name__ == "__main__":
    main()
