"""A diversified news feed: colored top-k + online sorted reporting.

A feed query asks for the most relevant stories published inside a time
range — but showing ten stories from the same outlet is a bad feed, so
the product wants the top stories from *distinct outlets* (colored
top-k, as in the categorical variants [25, 26, 30] the paper's survey
cites), streamed lazily as the user scrolls (online sorted reporting
[12]).

Both features are generic wrappers over any exact top-k structure; here
the underlying structure is Theorem 2 over the dynamic range treap, so
the feed also ingests new stories live.

Run:  python examples/news_feed.py
"""

import itertools
import random

from repro import Element, ExpectedTopKIndex
from repro.core.extensions import ColoredTopKIndex, iter_top
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap

OUTLETS = [
    "The Daily Block", "I/O Times", "Cache Courier", "The Treap Tribune",
    "Envelope Weekly", "Halfspace Herald", "Top-k Today", "Range Report",
]
TOPICS = [
    "elections", "markets", "storms", "football", "chips", "space",
    "privacy", "energy", "health", "films",
]


def make_stories(count: int, seed: int) -> list:
    """Stories on a timeline: coordinate = publish hour, weight = relevance."""
    rng = random.Random(seed)
    relevance = rng.sample(range(count * 10), count)
    stories = []
    for i in range(count):
        hour = rng.uniform(0, 24 * 30)  # one month of hours
        outlet = rng.choice(OUTLETS)
        headline = f"{rng.choice(TOPICS).title()} update #{i}"
        stories.append(
            Element(
                hour,
                float(relevance[i]),
                payload={"outlet": outlet, "headline": headline},
            )
        )
    return stories


def main() -> None:
    stories = make_stories(5_000, seed=2016)
    index = ExpectedTopKIndex(stories, DynamicRangeTreap, DynamicRangeTreap, seed=1)

    window = RangePredicate1D(24.0 * 7, 24.0 * 14)  # the second week
    in_window = sum(1 for s in stories if window.matches(s.obj))
    print(f"{in_window} stories published in the query week.\n")

    print("Top stories, one per outlet (colored top-k, k=5):")
    feed = ColoredTopKIndex(index, color_of=lambda story: story.payload["outlet"])
    for rank, story in enumerate(feed.query(window, k=5), 1):
        print(
            f"  {rank}. [{story.payload['outlet']:<18}] {story.payload['headline']:<22}"
            f" relevance={story.weight:>7.0f}"
        )

    print("\nInfinite scroll (online sorted reporting), first 8 stories:")
    for story in itertools.islice(iter_top(index, window), 8):
        print(f"  {story.weight:>7.0f}  {story.payload['headline']}")

    # Breaking news lands and immediately tops the feed.
    breaking = Element(
        24.0 * 9,
        10.0 ** 7,
        payload={"outlet": "I/O Times", "headline": "BREAKING: B-tree elected"},
    )
    index.insert(breaking)
    top = index.query(window, 1)[0]
    assert top is breaking
    print(f"\nAfter a live insert, the new top story is: {top.payload['headline']}")


if __name__ == "__main__":
    main()
