"""Tests for the workload generators and the problem registry."""

import random

import pytest

from repro.bench.workloads import PROBLEMS, distinct_weights, make_problem
from repro.core.problem import weights_are_distinct


class TestRegistry:
    def test_all_problems_buildable(self):
        for name in PROBLEMS:
            instance = make_problem(name, 40, seed=1)
            assert len(instance.elements) == 40
            assert instance.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown problem"):
            make_problem("nope", 10)

    def test_deterministic_in_seed(self):
        a = make_problem("interval_stabbing", 50, seed=9)
        b = make_problem("interval_stabbing", 50, seed=9)
        assert a.elements == b.elements

    def test_different_seeds_differ(self):
        a = make_problem("interval_stabbing", 50, seed=1)
        b = make_problem("interval_stabbing", 50, seed=2)
        assert a.elements != b.elements

    def test_weights_always_distinct(self):
        for name in PROBLEMS:
            instance = make_problem(name, 60, seed=3)
            assert weights_are_distinct(instance.elements)

    def test_predicates_reproducible(self):
        instance = make_problem("dominance3d", 30, seed=4)
        assert instance.predicates(5, seed=1) == instance.predicates(5, seed=1)

    def test_update_support_flags(self):
        assert make_problem("interval_stabbing", 10).supports_updates
        assert not make_problem("halfplane2d", 10).supports_updates

    def test_element_gen_produces_matching_type(self):
        rng = random.Random(5)
        for name in PROBLEMS:
            instance = make_problem(name, 10, seed=5)
            if instance.element_gen is None:
                continue
            fresh = instance.element_gen(rng, 12345.5)
            assert type(fresh.obj) is type(instance.elements[0].obj)


class TestDistinctWeights:
    def test_count_and_uniqueness(self):
        ws = distinct_weights(100, random.Random(1))
        assert len(ws) == 100
        assert len(set(ws)) == 100

    def test_predicates_have_varied_selectivity(self):
        """Query generators must produce both small and large results."""
        instance = make_problem("interval_stabbing", 300, seed=6)
        sizes = []
        for p in instance.predicates(40, seed=7):
            sizes.append(sum(1 for e in instance.elements if p.matches(e.obj)))
        assert min(sizes) < 30
        assert max(sizes) > 5
