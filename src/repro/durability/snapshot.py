"""Snapshot writer/reader: a whole index state as one verified chain.

A snapshot is the flattened record stream of an index's
``snapshot_state()`` dict (see :mod:`repro.durability.codec`) written
into a fresh forward chain of sealed blocks, plus a
:class:`~repro.durability.store.SnapshotEntry` carrying the chain head,
record count, and a CRC over the *whole* stream.  The entry lives in
the superblock manifest; a snapshot only becomes visible to recovery
once a superblock commit publishes its entry, so a crash mid-snapshot
leaves the previous generation in charge.

Reading verifies three independent layers — per-block seals, the
stream length, and the whole-stream CRC — before handing the state
back; any mismatch raises
:class:`~repro.resilience.errors.SnapshotIntegrityError` so recovery
can move on to an older snapshot or a rebuild.
"""

from __future__ import annotations

import zlib
from typing import List, Tuple

from repro.durability.codec import flatten_state, unflatten_state
from repro.durability.store import DurableStore, SnapshotEntry
from repro.resilience.errors import SnapshotIntegrityError

_CHAIN_KIND = "SNAP"


def _stream_crc(records: List[Tuple]) -> int:
    return zlib.crc32(repr(records).encode("utf-8", "backslashreplace"))


def write_snapshot(store: DurableStore, state: dict) -> SnapshotEntry:
    """Write ``state`` as a snapshot chain; returns its manifest entry.

    The chain is buffered in the store's cache — the caller must
    ``store.flush()`` (a write barrier) before publishing the returned
    entry in a superblock commit, or the superblock could land before
    the data it points at.
    """
    records = flatten_state(state)
    head = store.write_chain(_CHAIN_KIND, records)
    entry = SnapshotEntry(
        snapshot_id=store.next_snapshot_id,
        head_block=head,
        num_records=len(records),
        state_crc=_stream_crc(records),
    )
    store.next_snapshot_id += 1
    return entry


def read_snapshot(store: DurableStore, entry: SnapshotEntry) -> dict:
    """Load and fully verify the snapshot behind ``entry``."""
    records = list(store.read_chain(_CHAIN_KIND, entry.head_block))
    if len(records) != entry.num_records:
        raise SnapshotIntegrityError(
            f"snapshot {entry.snapshot_id} has {len(records)} records, "
            f"manifest says {entry.num_records}"
        )
    if _stream_crc(records) != entry.state_crc:
        raise SnapshotIntegrityError(
            f"snapshot {entry.snapshot_id} stream CRC mismatch"
        )
    return unflatten_state(records)


__all__ = ["write_snapshot", "read_snapshot"]
