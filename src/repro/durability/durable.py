"""`DurableTopKIndex`: crash-consistent persistence around any index.

The wrapper owns a :class:`~repro.durability.store.DurableStore` (with
its *own* EM context, so durability I/O is accounted separately from
the query path — health reports never double-count it) and follows the
standard protocol:

* **updates** are WAL-first: the op record is appended to the log
  buffer, then applied in memory; every ``commit_interval`` updates the
  group is committed (sealed blocks + flush).  A crash loses at most
  the current uncommitted group — never a committed one;
* **checkpoints** snapshot the inner index (``snapshot_state()``),
  flush, then atomically publish snapshot + truncated WAL via a
  superblock commit.  The two most recent snapshots are retained, so a
  crash *during* a checkpoint still recovers from the previous one;
* **recovery** (:meth:`DurableTopKIndex.recover`) mounts the surviving
  disk with a fresh context, runs the
  :func:`~repro.durability.recovery.recover_index` sequence, and
  re-checkpoints the recovered state as the new baseline.

Queries pass straight through (including keyword extras such as
Theorem 2's ``round_budget``), so the wrapper is drop-in wherever a
:class:`~repro.core.interfaces.TopKIndex` is expected — in particular
as a backend of
:class:`~repro.resilience.guard.ResilientTopKIndex`, which reports the
wrapper's recovery counters through its health summary.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.interfaces import TopKIndex
from repro.core.problem import Element, Predicate
from repro.durability.logstore import open_store
from repro.durability.recovery import RecoveryResult, apply_record, recover_index
from repro.durability.snapshot import write_snapshot
from repro.durability.store import DurableStore
from repro.durability.wal import (
    OP_DELETE,
    OP_INSERT,
    WALRecord,
    WriteAheadLog,
    read_committed,
)
from repro.em.model import Disk, IOStats
from repro.resilience.errors import WALShippingGap

STATE_KIND = "durable-topk"
SNAPSHOTS_RETAINED = 2


class DurableTopKIndex(TopKIndex):
    """Crash-consistent wrapper (see module docstring for the protocol).

    Parameters
    ----------
    inner:
        Any index exposing ``snapshot_state()`` (and ``insert`` /
        ``delete`` if updates are used).
    store:
        The durable store; a private one (private disk) by default.
    commit_interval:
        Group-commit size: every this-many updates, the WAL group is
        made durable.  ``1`` commits each update individually.
    checkpoint_now:
        Write the initial snapshot immediately (default) so the index
        is recoverable from the moment it exists.
    recovery:
        Set by :meth:`recover` — the :class:`RecoveryResult` describing
        how this instance came back.
    """

    def __init__(
        self,
        inner: TopKIndex,
        store: Optional[DurableStore] = None,
        commit_interval: int = 1,
        checkpoint_now: bool = True,
        recovery: Optional[RecoveryResult] = None,
        next_lsn: int = 1,
    ) -> None:
        self.inner = inner
        self.store = store if store is not None else DurableStore()
        self.commit_interval = max(1, commit_interval)
        # next_lsn > 1 resumes a cluster-wide LSN sequence: a replica
        # (re)built from a peer's snapshot starts its log where the
        # peer's committed history ends, keeping LSNs globally monotone.
        self.wal = WriteAheadLog(self.store, next_lsn=next_lsn)
        self._since_commit = 0
        self.recovery = recovery
        self.checkpoints = 0
        if checkpoint_now:
            self.checkpoint()

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.inner.n

    @property
    def recovered(self) -> bool:
        """Whether this instance was produced by crash recovery."""
        return self.recovery is not None

    @property
    def durability_io(self) -> IOStats:
        """I/O spent on persistence — separate from the query path."""
        return self.store.ctx.stats

    @property
    def committed_lsn(self) -> int:
        """Highest LSN durable in the WAL (survives a crash)."""
        return self.wal.committed_lsn

    @property
    def applied_lsn(self) -> int:
        """Highest LSN the in-memory index has absorbed."""
        return self.wal.applied_lsn

    def read_stamp(self) -> tuple:
        """``(epoch, lsn)`` version of the state a read would observe.

        The serving layer stamps cached answers with this pair and
        re-validates them against the current stamp.  A single durable
        index never loses applied writes, so its epoch is constant 0;
        :meth:`~repro.replication.cluster.ReplicaSet.read_stamp` bumps
        the epoch on promotion/rebuild, where the LSN sequence may step
        backwards.
        """
        return (0, self.applied_lsn)

    def query(self, predicate: Predicate, k: int, **kwargs) -> List[Element]:
        return self.inner.query(predicate, k, **kwargs)

    def space_units(self) -> int:
        return self.inner.space_units()

    # ------------------------------------------------------------------
    # Updates (WAL-first)
    # ------------------------------------------------------------------
    def insert(self, element: Element) -> None:
        lsn = self.wal.append(OP_INSERT, element)
        try:
            self.inner.insert(element)
        except Exception:
            # The in-memory apply failed, so the (uncommitted) record
            # must not survive to replay against a state it never changed.
            self.wal.rollback_last()
            raise
        self._note_applied(lsn)
        self._after_update()

    def delete(self, element: Element) -> None:
        lsn = self.wal.append(OP_DELETE, element)
        try:
            self.inner.delete(element)
        except Exception:
            self.wal.rollback_last()
            raise
        self._note_applied(lsn)
        self._after_update()

    def _note_applied(self, lsn: int) -> None:
        self.wal.note_applied(lsn)
        note = getattr(self.inner, "note_applied", None)
        if note is not None:
            note(lsn)

    def _after_update(self) -> None:
        self._since_commit += 1
        if self._since_commit >= self.commit_interval:
            self.commit()

    def commit(self) -> int:
        """Force the pending WAL group to disk; returns records committed."""
        self._since_commit = 0
        return self.wal.commit()

    # ------------------------------------------------------------------
    # Replication hooks (shipped tails, deferred apply)
    # ------------------------------------------------------------------
    def apply_shipped(
        self, groups: List[List[WALRecord]], apply_now: bool = True
    ) -> int:
        """Splice shipped committed groups onto this replica's own log.

        Each group is appended to the local WAL *with the shipped LSNs*
        (records at or below ``last_lsn`` are skipped, so re-shipping is
        idempotent) and committed — the follower's acknowledgement is
        its own durable commit.  With ``apply_now`` the records are also
        applied to the in-memory index immediately; otherwise apply is
        deferred and :meth:`replay_unapplied` (run at promotion, on a
        freshness-bounded read, or before a checkpoint) catches up from
        the durable log.

        Raises :class:`~repro.resilience.errors.WALShippingGap` when the
        tail does not splice onto the local log (records in between were
        checkpoint-truncated on the source while this replica was away)
        — the caller must fall back to a full snapshot resync.

        Returns the number of records made durable locally.
        """
        # Records appended by a previous ship whose commit faulted are
        # already in the local log (and filtered below as duplicates);
        # committing first completes that interrupted group so the ack
        # watermark can advance even when nothing new arrives.
        self.commit()
        appended = 0
        for group in groups:
            new_records = [r for r in group if r.lsn > self.wal.last_lsn]
            if not new_records:
                continue
            if new_records[0].lsn != self.wal.next_lsn:
                raise WALShippingGap(
                    f"shipped tail starts at lsn {new_records[0].lsn}, local "
                    f"log expects {self.wal.next_lsn}; full resync required",
                    expected_lsn=self.wal.next_lsn,
                    got_lsn=new_records[0].lsn,
                )
            for record in new_records:
                self.wal.append(record.op, record.element)
            self.commit()
            appended += len(new_records)
            if apply_now:
                for record in new_records:
                    apply_record(self.inner, record)
                    self._note_applied(record.lsn)
        return appended

    def replay_unapplied(self) -> int:
        """Apply committed-but-unapplied records from this replica's WAL.

        Reads the ``(applied_lsn, committed_lsn]`` tail back from the
        *durable* log (charging durability I/O — the deferred apply path
        really does re-read its own disk) and applies it idempotently.
        A promoted follower runs this before admitting writes; reads
        with freshness bounds run it to catch a lagging replica up.
        Returns the number of records applied.
        """
        if self.wal.applied_lsn >= self.wal.committed_lsn:
            return 0
        groups, _ = read_committed(
            self.store, self.wal.head, after_lsn=self.wal.applied_lsn
        )
        applied = 0
        for group in groups:
            for record in group:
                apply_record(self.inner, record)
                self._note_applied(record.lsn)
                applied += 1
        return applied

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Snapshot the index and atomically make it the recovery root.

        Ordering is load-bearing: the snapshot chain is flushed
        *before* the superblock commit publishes its entry, and the WAL
        is truncated in the same superblock commit — a crash at any
        point leaves either the old root (snapshot + old log) or the
        new root (snapshot + empty log) fully consistent.
        """
        self.commit()
        # A lazily-applying follower must fold every durable record into
        # the index before snapshotting it: the snapshot claims to cover
        # last_lsn, and truncation retires the records it claims.
        self.replay_unapplied()
        state = {
            "kind": STATE_KIND,
            "last_lsn": self.wal.last_lsn,
            "index": self.inner.snapshot_state(),
        }
        entry = write_snapshot(self.store, state)
        self.store.flush()  # barrier: data before the pointer to it
        retained = [entry, *self.store.snapshots][:SNAPSHOTS_RETAINED]
        # Snapshots falling off the retention window are retired before
        # the commit: their blocks sit in limbo until the commit below
        # (the one that stops referencing them) is durable.
        for dropped in self.store.snapshots[SNAPSHOTS_RETAINED - 1 :]:
            self.store.retire_chain(dropped.head_block)
        self.store.snapshots = retained
        self.wal.truncate()
        self.store.wal_head = self.wal.head
        self.store.commit_superblock()
        self.checkpoints += 1

    def compact_store(self) -> int:
        """Checkpoint, then fold the store's dead segments (ops lever).

        On a :class:`~repro.durability.logstore.LogStructuredStore`
        this rewrites the manifest and TRIMs every dead block — the
        mitigation for a ``write_amp_spike`` incident.  On a plain
        store it degrades to a checkpoint and returns 0.
        """
        self.checkpoint()
        compact = getattr(self.store, "compact", None)
        return compact() if compact is not None else 0

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        disk: Disk,
        restore_fn: Callable[[dict], TopKIndex],
        build_fn: Optional[Callable[[List[Element]], TopKIndex]] = None,
        B: int = 16,
        M: Optional[int] = None,
        commit_interval: int = 1,
    ) -> "DurableTopKIndex":
        """Reboot from a surviving disk.

        Mounts the disk with a fresh context, runs the recovery
        sequence, and wraps the recovered index — re-checkpointing it
        immediately so the pre-crash log is retired and the recovered
        state becomes the new durable baseline.
        """
        store = open_store(disk, B=B, M=M)
        result = recover_index(store, restore_fn, build_fn)
        return cls(
            result.index,
            store=store,
            commit_interval=commit_interval,
            checkpoint_now=True,
            recovery=result,
            # Resume the LSN sequence past everything the disk had
            # committed, so a replica rebooted from its durable record
            # keeps the cluster's LSNs globally monotone.
            next_lsn=result.highest_lsn + 1,
        )


__all__ = ["DurableTopKIndex", "STATE_KIND", "SNAPSHOTS_RETAINED"]
