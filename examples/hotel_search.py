"""The paper's hotel scenario (Section 1.4): top-k 3D dominance.

    "Find the 10 best-rated hotels whose (i) prices are at most x
     dollars per night, (ii) distances from the town center are at most
     y km, and (iii) security rating is at least z."

Each hotel is a point (price, distance, -security) in R^3 (negating
security turns "at least z" into the dominance direction); the weight
is the guest rating.  Theorem 6's problem, built from the range-tree
prioritized structure and the dominance max structure via Theorem 2.

Run:  python examples/hotel_search.py
"""

import random

from repro import Element, ExpectedTopKIndex
from repro.structures.dominance import (
    DominanceMax,
    DominancePredicate,
    DominancePrioritized,
)

ADJECTIVES = "Grand Royal Cozy Urban Harbor Garden Summit Vista Luna Nova".split()
NOUNS = "Plaza Inn Suites Lodge Court House Towers Retreat Palace Nest".split()


def make_hotels(count: int, seed: int) -> list:
    rng = random.Random(seed)
    # Ratings in [1.00, 5.00] with two decimals, perturbed to be distinct.
    ratings = rng.sample(range(10_000, 50_001), count)
    hotels = []
    for i in range(count):
        price = rng.uniform(40, 600)
        distance = rng.uniform(0.1, 15.0)
        security = rng.uniform(1.0, 5.0)
        name = f"{rng.choice(ADJECTIVES)} {rng.choice(NOUNS)} #{i}"
        hotels.append(
            Element(
                (price, distance, -security),
                ratings[i] / 10_000.0,
                payload={"name": name, "security": security},
            )
        )
    return hotels


def main() -> None:
    hotels = make_hotels(6_000, seed=26)

    index = ExpectedTopKIndex(
        hotels,
        prioritized_factory=DominancePrioritized,
        max_factory=DominanceMax,
        seed=3,
    )

    max_price, max_distance, min_security = 150.0, 3.0, 3.5
    query = DominancePredicate((max_price, max_distance, -min_security))

    print(
        f"Constraints: price <= ${max_price:.0f}, distance <= {max_distance:.0f} km, "
        f"security >= {min_security}"
    )
    print("Top-10 hotels by guest rating:\n")
    for rank, hotel in enumerate(index.query(query, k=10), 1):
        price, distance, _ = hotel.obj
        print(
            f"  {rank:2d}. {hotel.weight:.3f}*  {hotel.payload['name']:<18}"
            f" ${price:>6.0f}/night, {distance:.1f} km,"
            f" security {hotel.payload['security']:.1f}"
        )

    # Tighten the constraints and watch the answer adapt.
    strict = DominancePredicate((80.0, 1.5, -4.5))
    result = index.query(strict, k=3)
    print("\nUnder strict constraints (<= $80, <= 1.5 km, security >= 4.5):")
    if result:
        for hotel in result:
            print(f"  {hotel.weight:.3f}*  {hotel.payload['name']}")
    else:
        print("  no hotel qualifies — the index proves it without a full scan")


if __name__ == "__main__":
    main()
