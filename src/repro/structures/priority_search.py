"""A static priority search tree (PST) for 3-sided / 2-sided queries.

McCreight's classic structure: a balanced tree over keys in which every
node additionally stores the highest-priority element of its key range
not claimed by an ancestor.  A prefix-priority query
(``key <= x`` and ``priority >= tau``) reports its ``t`` results in
``O(log n + t)`` time: the recursion only enters a subtree whose stored
priority is at least ``tau``, so each visit either reports or lies on
one of the two boundary paths.

Used as the innermost level of the 3D-dominance prioritized range tree
(:mod:`repro.structures.dominance`) where the two sides are
``z <= q_z`` and ``weight >= tau``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.interfaces import OpCounter
from repro.core.problem import Element


class _PSTNode:
    __slots__ = ("champion", "split", "left", "right")

    def __init__(self) -> None:
        self.champion: Optional[Element] = None  # heaviest not claimed above
        self.split: float = 0.0  # keys <= split go left
        self.left: Optional["_PSTNode"] = None
        self.right: Optional["_PSTNode"] = None


class PrioritySearchTree:
    """Static PST over elements with a caller-supplied key accessor.

    Priorities are the elements' weights.  ``key_of`` extracts the
    1D search key (e.g. the z-coordinate for 3D dominance).
    """

    def __init__(
        self,
        elements: Sequence[Element],
        key_of: Callable[[Element], float],
    ) -> None:
        self.key_of = key_of
        self.ops = OpCounter()
        self._n = len(elements)
        ordered = sorted(elements, key=key_of)
        self.root = self._build(ordered)

    def _build(self, ordered: List[Element]) -> Optional[_PSTNode]:
        if not ordered:
            return None
        node = _PSTNode()
        # Claim the heaviest element for this node...
        top_index = max(range(len(ordered)), key=lambda i: ordered[i].weight)
        node.champion = ordered[top_index]
        rest = ordered[:top_index] + ordered[top_index + 1 :]
        if rest:
            mid = (len(rest) - 1) // 2
            node.split = self.key_of(rest[mid])
            node.left = self._build(rest[: mid + 1])
            node.right = self._build(rest[mid + 1 :])
        return node

    @property
    def n(self) -> int:
        return self._n

    def query_prefix(self, x: float, tau: float) -> List[Element]:
        """All elements with ``key <= x`` and ``weight >= tau``.

        ``O(log n + t)``: subtrees are entered only when their champion
        already met the threshold.
        """
        out: List[Element] = []
        self._collect(self.root, x, tau, out)
        return out

    def _collect(
        self, node: Optional[_PSTNode], x: float, tau: float, out: List[Element]
    ) -> None:
        if node is None or node.champion is None:
            return
        self.ops.node_visits += 1
        if node.champion.weight < tau:
            # Heap order: nothing below can reach tau either.
            return
        if self.key_of(node.champion) <= x:
            out.append(node.champion)
        # Left subtree keys are all <= split; right subtree keys > split.
        self._collect(node.left, x, tau, out)
        if node.split <= x:
            self._collect(node.right, x, tau, out)
        # When split > x the right subtree holds only keys > x... but the
        # left recursion above must still run: its keys may or may not
        # qualify on weight, which the champion check prunes.

    def max_in_prefix(self, x: float) -> Optional[Element]:
        """The heaviest element with ``key <= x``.

        Branch-and-bound over the heap order: a subtree is skipped as
        soon as its champion cannot beat the current best, so the visit
        count is near-logarithmic in practice (the reductions only use
        this as a ``Q_max`` black box; its measured cost is what the
        benches report).
        """
        best: Optional[Element] = None
        node = self.root
        stack = [node]
        while stack:
            current = stack.pop()
            if current is None or current.champion is None:
                continue
            if best is not None and current.champion.weight <= best.weight:
                continue  # heap order: subtree cannot improve
            self.ops.node_visits += 1
            if self.key_of(current.champion) <= x:
                best = current.champion
                continue  # champion is subtree max; found it for this branch
            stack.append(current.left)
            if current.split <= x:
                stack.append(current.right)
        return best
