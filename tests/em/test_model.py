"""Unit tests for the EM model: cache semantics and I/O accounting."""

import pytest

from repro.em.model import Disk, EMContext, IOStats, ram_context
from repro.resilience.errors import SimulatedCrash
from repro.resilience.faults import FaultPlan


class TestIOStats:
    def test_total_is_reads_plus_writes(self):
        stats = IOStats(reads=3, writes=4)
        assert stats.total == 7

    def test_reset_zeroes_everything(self):
        stats = IOStats(reads=3, writes=4, cache_hits=9)
        stats.reset()
        assert (stats.reads, stats.writes, stats.cache_hits) == (0, 0, 0)

    def test_snapshot_is_independent(self):
        stats = IOStats(reads=1)
        snap = stats.snapshot()
        stats.reads = 10
        assert snap.reads == 1

    def test_delta_subtracts_counters(self):
        earlier = IOStats(reads=2, writes=1, cache_hits=5)
        later = IOStats(reads=7, writes=4, cache_hits=6)
        delta = later.delta(earlier)
        assert (delta.reads, delta.writes, delta.cache_hits) == (5, 3, 1)


class TestDisk:
    def test_allocate_returns_dense_ids(self):
        disk = Disk()
        assert [disk.allocate() for _ in range(3)] == [0, 1, 2]

    def test_raw_roundtrip(self):
        disk = Disk()
        bid = disk.allocate()
        disk.raw_write(bid, [1, 2, 3])
        assert disk.raw_read(bid) == [1, 2, 3]

    def test_num_blocks_counts_allocations(self):
        disk = Disk()
        for _ in range(5):
            disk.allocate()
        assert disk.num_blocks == 5


class TestEMContextValidation:
    def test_rejects_tiny_block_size(self):
        with pytest.raises(ValueError, match="block size"):
            EMContext(B=1)

    def test_rejects_memory_below_two_blocks(self):
        with pytest.raises(ValueError, match="memory"):
            EMContext(B=16, M=16)

    def test_default_memory_is_four_blocks(self):
        ctx = EMContext(B=8)
        assert ctx.M == 32
        assert ctx.num_frames == 4


class TestCacheBehaviour:
    def test_first_read_is_a_miss(self):
        ctx = EMContext(B=4, M=8)
        bid = ctx.allocate_block([1, 2])
        ctx.flush()
        ctx.stats.reset()
        ctx.read_block(bid)
        assert ctx.stats.reads == 1

    def test_repeat_read_is_free(self):
        ctx = EMContext(B=4, M=8)
        bid = ctx.allocate_block([1, 2])
        ctx.read_block(bid)
        before = ctx.stats.reads
        ctx.read_block(bid)
        assert ctx.stats.reads == before
        assert ctx.stats.cache_hits >= 1

    def test_lru_eviction_order(self):
        ctx = EMContext(B=4, M=8)  # two frames
        a = ctx.allocate_block([1])
        b = ctx.allocate_block([2])
        c = ctx.allocate_block([3])
        ctx.flush()
        ctx.stats.reset()
        ctx.read_block(a)
        ctx.read_block(b)
        ctx.read_block(a)  # refresh a; b is now LRU
        ctx.read_block(c)  # evicts b
        ctx.read_block(a)  # still cached
        assert ctx.stats.reads == 3

    def test_dirty_eviction_charges_a_write(self):
        ctx = EMContext(B=4, M=8)
        a = ctx.allocate_block([1])
        b = ctx.allocate_block([2])
        c = ctx.allocate_block([3])
        ctx.flush()
        ctx.stats.reset()
        ctx.write_block(a, [9])
        ctx.read_block(b)
        ctx.read_block(c)  # evicts dirty a
        assert ctx.stats.writes == 1

    def test_clean_eviction_is_free(self):
        ctx = EMContext(B=4, M=8)
        blocks = [ctx.allocate_block([i]) for i in range(3)]
        ctx.flush()
        ctx.stats.reset()
        for bid in blocks:
            ctx.read_block(bid)
        assert ctx.stats.writes == 0

    def test_write_back_persists_on_flush(self):
        ctx = EMContext(B=4, M=8)
        bid = ctx.allocate_block([1])
        ctx.write_block(bid, [42])
        ctx.flush()
        assert ctx.disk.raw_read(bid) == [42]

    def test_block_overflow_rejected(self):
        ctx = EMContext(B=2, M=4)
        bid = ctx.allocate_block()
        with pytest.raises(ValueError, match="overflow"):
            ctx.write_block(bid, [1, 2, 3])

    def test_read_after_write_sees_buffered_data(self):
        ctx = EMContext(B=4, M=8)
        bid = ctx.allocate_block([1])
        ctx.write_block(bid, [7, 8])
        assert ctx.read_block(bid) == [7, 8]


class TestAnalyticCharging:
    def test_charge_reads_rounds_up(self):
        ctx = EMContext(B=8, M=16)
        assert ctx.charge_reads(1) == 1
        assert ctx.charge_reads(8) == 1
        assert ctx.charge_reads(9) == 2
        assert ctx.stats.reads == 4

    def test_charge_zero_is_free(self):
        ctx = EMContext(B=8, M=16)
        assert ctx.charge_reads(0) == 0
        assert ctx.charge_writes(0) == 0
        assert ctx.stats.total == 0

    def test_charge_writes_rounds_up(self):
        ctx = EMContext(B=8, M=16)
        assert ctx.charge_writes(17) == 3


class TestRamContext:
    def test_ram_context_has_tiny_blocks(self):
        ctx = ram_context()
        assert ctx.B == 2
        assert ctx.num_frames > 1000


class TestChecksummedOperation:
    """Checksums must be invisible on a healthy machine."""

    def test_clean_reads_verify(self):
        disk = Disk(checksums=True)
        ctx = EMContext(B=4, M=8, disk=disk)
        bids = [ctx.allocate_block([i, i * 2]) for i in range(5)]
        ctx.flush()
        ctx.drop_cache()
        for i, bid in enumerate(bids):
            assert list(ctx.read_block(bid)) == [i, i * 2]

    def test_write_back_refreshes_the_checksum(self):
        disk = Disk(checksums=True)
        ctx = EMContext(B=4, M=8, disk=disk)
        bid = ctx.allocate_block([1])
        ctx.flush()
        ctx.write_block(bid, [2, 3])
        ctx.flush()
        ctx.drop_cache()
        assert list(ctx.read_block(bid)) == [2, 3]
        assert disk.verify(bid, [2, 3])

    def test_enable_is_idempotent(self):
        disk = Disk()
        disk.allocate()
        disk.enable_checksums()
        disk.enable_checksums()
        assert disk.checksums_enabled


class TestTornWrites:
    """Disk.torn_write: a crash mid-transfer persists only a prefix."""

    def test_prefix_is_persisted(self):
        disk = Disk()
        bid = disk.allocate()
        disk.torn_write(bid, [1, 2, 3, 4], keep=2)
        assert disk.raw_read(bid) == [1, 2]

    def test_keep_is_clamped(self):
        disk = Disk()
        bid = disk.allocate()
        disk.torn_write(bid, [1, 2], keep=99)
        assert disk.raw_read(bid) == [1, 2]
        disk.torn_write(bid, [1, 2], keep=-1)
        assert disk.raw_read(bid) == []

    def test_checksum_is_of_intended_contents(self):
        # A real sector checksum covers what *should* have been written,
        # so the surviving prefix fails verification.
        disk = Disk(checksums=True)
        bid = disk.allocate()
        disk.torn_write(bid, [1, 2, 3, 4], keep=2)
        assert not disk.verify(bid, disk.raw_read(bid))
        assert disk.verify(bid, [1, 2, 3, 4])

    def test_full_keep_still_verifies(self):
        disk = Disk(checksums=True)
        bid = disk.allocate()
        disk.torn_write(bid, [1, 2], keep=2)
        assert disk.verify(bid, disk.raw_read(bid))

    def test_crash_on_eviction_tears_the_block(self):
        plan = FaultPlan(armed=False)
        ctx = EMContext(B=4, M=8, fault_plan=plan)
        bid = ctx.allocate_block([1, 2, 3, 4])
        plan.schedule_crash(at_io=1, torn_fraction=0.5)
        with pytest.raises(SimulatedCrash):
            ctx.flush()
        assert ctx.disk.raw_read(bid) == [1, 2]
        assert bid not in ctx._frames  # the frame died with the machine

    def test_dead_machine_serves_no_further_io(self):
        plan = FaultPlan(armed=False)
        ctx = EMContext(B=4, M=8, fault_plan=plan)
        a = ctx.allocate_block([1])
        b = ctx.allocate_block([2])
        plan.schedule_crash(at_io=1)
        with pytest.raises(SimulatedCrash):
            ctx.flush()
        with pytest.raises(SimulatedCrash):
            ctx.flush()
        fresh = EMContext(B=4, M=8, disk=ctx.disk)  # reboot
        assert fresh.read_block(b) == [] or fresh.read_block(b) == [2]
