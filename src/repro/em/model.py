"""The external-memory machine: disk, blocks, memory frames, I/O counters.

The model follows Aggarwal and Vitter [8 in the paper]: the disk is an
unbounded sequence of blocks, each holding ``B`` records; the machine has
``M`` records of memory (``M >= 2B``), organised here as an LRU cache of
``M // B`` block frames.  Reading a block that is already resident is
free; a miss costs one read I/O, and evicting a dirty frame costs one
write I/O.  The paper assumes ``B >= 64`` for its constants; the
simulator accepts any ``B >= 2`` so tests can exercise tiny
configurations.

A "record" is one Python object — the paper's "each element is stored in
O(1) words" convention.
"""

from __future__ import annotations

import re
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.resilience.errors import (
    BlockOverflowError,
    CorruptBlockError,
    InvalidConfiguration,
    SimulatedCrash,
)
from repro.resilience.faults import FaultPlan


#: ``object.__repr__`` embeds the instance's memory address; masking it
#: keeps checksums of identical logical contents equal across processes
#: (the same idiom the serving planner uses for its sort keys).
_ADDRESS_RE = re.compile(r"0x[0-9a-fA-F]+")


def stable_repr(value: object) -> str:
    """``repr`` with memory addresses masked — process-independent."""
    return _ADDRESS_RE.sub("0xADDR", repr(value))


def block_checksum(records: List[object]) -> int:
    """A cheap deterministic checksum of one block's records.

    CRC32 over the records' *address-masked* reprs — strong enough to
    catch the record drops/overwrites a
    :class:`~repro.resilience.faults.FaultPlan` injects, cheap enough
    to verify on every (uncached) read, and equal across processes even
    for records whose default ``repr`` would embed a memory address.
    """
    return zlib.crc32(stable_repr(records).encode("utf-8", "backslashreplace"))


#: IOStats counter fields that subtract in :meth:`IOStats.delta`.
_IOSTATS_COUNTERS = (
    "reads",
    "writes",
    "cache_hits",
    "flash_host_writes",
    "flash_device_writes",
    "flash_erases",
    "flash_gc_copies",
    "flash_gc_stalls",
    "flash_trims",
)
#: Point-in-time gauges that pass through a delta unchanged.
_IOSTATS_GAUGES = ("flash_max_wear", "flash_mean_wear")


@dataclass
class IOStats:
    """Mutable I/O counters attached to an :class:`EMContext`.

    ``reads``/``writes`` count block transfers.  ``cache_hits`` counts
    block accesses served from memory (free in the EM model, tracked for
    diagnostics only).

    The ``flash_*`` fields stay zero on a plain :class:`Disk`; a
    :class:`~repro.flash.disk.FlashDisk` bound to the context mirrors
    its device counters here — logical host writes, physical page
    programs (host + GC relocations), erases, GC copies/stalls, trims —
    plus the wear *gauges* (max / mean per-erase-block erase count).
    Counters subtract in :meth:`delta`; gauges pass through as current
    values, so a delta's :attr:`write_amplification` is the WA of
    exactly that window.
    """

    reads: int = 0
    writes: int = 0
    cache_hits: int = 0
    flash_host_writes: int = 0
    flash_device_writes: int = 0
    flash_erases: int = 0
    flash_gc_copies: int = 0
    flash_gc_stalls: int = 0
    flash_trims: int = 0
    flash_max_wear: int = 0
    flash_mean_wear: float = 0.0

    @property
    def total(self) -> int:
        """Total I/Os (reads + writes) — the EM cost measure."""
        return self.reads + self.writes

    @property
    def write_amplification(self) -> float:
        """Physical page programs per logical host write (0 off flash)."""
        if self.flash_host_writes == 0:
            return 0.0
        return self.flash_device_writes / self.flash_host_writes

    def reset(self) -> None:
        """Zero every counter (used between benchmark phases)."""
        for name in _IOSTATS_COUNTERS:
            setattr(self, name, 0)
        self.flash_max_wear = 0
        self.flash_mean_wear = 0.0

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        return IOStats(**{
            name: getattr(self, name)
            for name in _IOSTATS_COUNTERS + _IOSTATS_GAUGES
        })

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` was snapshotted.

        Gauges (wear) are point-in-time values and carry the *current*
        reading rather than a difference.
        """
        out = IOStats(**{
            name: getattr(self, name) - getattr(earlier, name)
            for name in _IOSTATS_COUNTERS
        })
        for name in _IOSTATS_GAUGES:
            setattr(out, name, getattr(self, name))
        return out


class Disk:
    """An unbounded array of blocks, each a list of at most ``B`` records.

    The disk itself never counts I/Os — transfers are charged by the
    :class:`EMContext` that mediates access.  Blocks are identified by
    dense integer ids.  ``label`` names the simulated machine the disk
    belongs to — multi-replica deployments use it to scope fault plans
    and attribute chaos counters to the right machine.
    """

    def __init__(self, checksums: bool = False, label: str = "") -> None:
        self._blocks: List[List[object]] = []
        self._checksums: List[int] = []
        self._checksums_enabled = bool(checksums)
        self.label = label

    def allocate(self) -> int:
        """Reserve a fresh empty block and return its id."""
        self._blocks.append([])
        if self._checksums_enabled:
            self._checksums.append(block_checksum([]))
        return len(self._blocks) - 1

    def raw_read(self, block_id: int) -> List[object]:
        """Fetch block contents without charging an I/O (internal use)."""
        return self._blocks[block_id]

    def raw_write(self, block_id: int, records: List[object]) -> None:
        """Store block contents without charging an I/O (internal use)."""
        self._blocks[block_id] = records
        if self._checksums_enabled:
            self._checksums[block_id] = block_checksum(records)

    def torn_write(self, block_id: int, records: List[object], keep: int) -> None:
        """Persist only a *prefix* of an interrupted block write.

        Models the torn write of a crash mid-transfer: the first
        ``keep`` records reach the platter, the rest never do.  With
        checksums enabled the stored checksum is that of the *intended*
        full contents, so the surviving prefix fails verification —
        exactly how a real sector checksum exposes a torn sector.
        Callers that keep their own embedded seals (the durability
        layer) detect the tear even on checksum-free disks, because the
        seal record is written last and is therefore the first casualty.
        """
        keep = max(0, min(keep, len(records)))
        self._blocks[block_id] = list(records[:keep])
        if self._checksums_enabled:
            self._checksums[block_id] = block_checksum(list(records))

    def discard(self, block_id: int) -> None:
        """TRIM: the caller declares this block's contents dead.

        On a plain disk the block is simply wiped (reads as empty until
        rewritten); a :class:`~repro.flash.disk.FlashDisk` additionally
        invalidates the backing page so garbage collection reclaims it
        without copying.  Log-structured stores call this on retired
        chain blocks — device-agnostically.
        """
        self._blocks[block_id] = []
        if self._checksums_enabled:
            self._checksums[block_id] = block_checksum([])

    @property
    def num_blocks(self) -> int:
        """Number of blocks ever allocated — the space measure."""
        return len(self._blocks)

    # ------------------------------------------------------------------
    # Integrity (per-block checksums)
    # ------------------------------------------------------------------
    @property
    def checksums_enabled(self) -> bool:
        """Whether per-block checksums are maintained and verifiable."""
        return self._checksums_enabled

    def enable_checksums(self) -> None:
        """Start maintaining checksums (existing blocks are summed now)."""
        if self._checksums_enabled:
            return
        self._checksums = [block_checksum(records) for records in self._blocks]
        self._checksums_enabled = True

    def verify(self, block_id: int, records: List[object]) -> bool:
        """Whether ``records`` match the checksum stored for ``block_id``."""
        if not self._checksums_enabled:
            return True
        return block_checksum(records) == self._checksums[block_id]


class EMContext:
    """Mediates all block access, enforcing the cache and counting I/Os.

    Parameters
    ----------
    B:
        Records per block.  The paper assumes ``B >= 64``; any ``B >= 2``
        is accepted.
    M:
        Records of memory.  Must satisfy ``M >= 2 * B`` so at least two
        frames exist (the minimum for merging).
    disk:
        Optional shared :class:`Disk`; a private one is created when
        omitted.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan` that
        intercepts every block transfer (chaos testing).  Attaching a
        plan that injects corruption enables per-block checksums on the
        disk so corrupted reads are *detected* and raised as
        :class:`~repro.resilience.errors.CorruptBlockError` rather than
        silently served.

    The context offers both a *cached* interface (:meth:`read_block` /
    :meth:`write_block`) used by the data structures, and explicit
    charging hooks (:meth:`charge_reads`) used by components that model
    a scan analytically.
    """

    def __init__(
        self,
        B: int = 64,
        M: Optional[int] = None,
        disk: Optional[Disk] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if B < 2:
            raise InvalidConfiguration(f"block size B must be >= 2, got {B}")
        if M is None:
            M = 4 * B
        if M < 2 * B:
            raise InvalidConfiguration(f"memory M must be >= 2B = {2 * B}, got {M}")
        self.B = B
        self.M = M
        self.disk = disk if disk is not None else Disk()
        self.stats = IOStats()
        # A flash device mirrors its counters (programs, erases, wear)
        # into whichever context currently drives it — this one, now.
        bind = getattr(self.disk, "bind_stats", None)
        if bind is not None:
            bind(self.stats)
        self.fault_plan: Optional[FaultPlan] = None
        self._frames: "OrderedDict[int, List[object]]" = OrderedDict()
        self._dirty: Dict[int, bool] = {}
        if fault_plan is not None:
            self.attach_fault_plan(fault_plan)

    def attach_fault_plan(
        self, plan: Optional[FaultPlan], enable_checksums: Optional[bool] = None
    ) -> None:
        """Install (or remove, with ``None``) a fault plan.

        ``enable_checksums`` defaults to enabling per-block checksums
        whenever the plan can corrupt reads; pass ``False`` explicitly
        to study *undetected* corruption.

        The plan is bound to this context's disk on attach: re-attaching
        after a reboot (fresh context, same disk) is fine, but attaching
        it to a *different* machine's disk raises — per-machine fault
        scoping for replicated deployments.
        """
        self.fault_plan = plan
        if plan is None:
            return
        plan.bind(self.disk)
        if enable_checksums is None:
            enable_checksums = plan.injects_corruption
        if enable_checksums:
            self.disk.enable_checksums()

    # ------------------------------------------------------------------
    # Cached block interface
    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        """Number of memory frames available (``M // B``)."""
        return self.M // self.B

    @property
    def machine(self) -> str:
        """Label of the simulated machine (the disk's label)."""
        return self.disk.label

    def read_block(self, block_id: int) -> List[object]:
        """Return the contents of ``block_id``, charging an I/O on a miss.

        The returned list must be treated as read-only; use
        :meth:`write_block` to mutate a block.
        """
        if block_id in self._frames:
            self._frames.move_to_end(block_id)
            self.stats.cache_hits += 1
            return self._frames[block_id]
        # A failed or corrupted transfer still costs the I/O it attempted,
        # so retries are visible in the counters.
        self.stats.reads += 1
        records = self.disk.raw_read(block_id)
        if self.fault_plan is not None:
            records = self.fault_plan.on_read(block_id, records)
        if not self.disk.verify(block_id, records):
            raise CorruptBlockError(
                f"checksum mismatch reading block {block_id}", block_id=block_id
            )
        self._install_frame(block_id, records, dirty=False)
        return records

    def write_block(self, block_id: int, records: List[object]) -> None:
        """Replace the contents of ``block_id`` through the cache.

        The write is buffered; the I/O is charged when the dirty frame is
        evicted or flushed, matching write-back semantics.
        """
        if len(records) > self.B:
            raise BlockOverflowError(
                f"block overflow: {len(records)} records > B={self.B}"
            )
        if block_id in self._frames:
            self._frames[block_id] = records
            self._frames.move_to_end(block_id)
            self._dirty[block_id] = True
            return
        self._install_frame(block_id, records, dirty=True)

    def allocate_block(self, records: Optional[List[object]] = None) -> int:
        """Allocate a fresh block, optionally writing initial contents."""
        block_id = self.disk.allocate()
        if records is not None:
            self.write_block(block_id, records)
        return block_id

    def flush(self) -> None:
        """Write back every dirty frame and empty the cache."""
        for block_id in list(self._frames):
            self._evict(block_id)

    def drop_cache(self) -> None:
        """Flush then forget all frames — forces cold-cache measurements."""
        self.flush()

    def drop_frame(self, block_id: int) -> None:
        """Forget any cached copy of ``block_id`` without performing I/O.

        Used by log-structured storage after discarding a block: the
        disk contents changed beneath the cache, so a retained frame —
        clean or dirty — would serve (or write back) stale data for a
        block that is dead by decree.
        """
        self._frames.pop(block_id, None)
        self._dirty.pop(block_id, None)

    # ------------------------------------------------------------------
    # Analytic charging (for components modelled as sequential scans)
    # ------------------------------------------------------------------
    def charge_reads(self, num_records: int) -> int:
        """Charge the I/Os of sequentially reading ``num_records`` records.

        Returns the number of I/Os charged (``ceil(num_records / B)``).
        Used by structures whose contiguous layout makes per-block
        bookkeeping redundant.
        """
        if num_records <= 0:
            return 0
        ios = -(-num_records // self.B)
        self.stats.reads += ios
        return ios

    def charge_writes(self, num_records: int) -> int:
        """Charge the I/Os of sequentially writing ``num_records`` records."""
        if num_records <= 0:
            return 0
        ios = -(-num_records // self.B)
        self.stats.writes += ios
        return ios

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _install_frame(self, block_id: int, records: List[object], dirty: bool) -> None:
        while len(self._frames) >= self.num_frames:
            victim, _ = next(iter(self._frames.items()))
            self._evict(victim)
        self._frames[block_id] = records
        self._dirty[block_id] = dirty

    def _evict(self, block_id: int) -> None:
        if self._dirty.get(block_id, False):
            self.stats.writes += 1
            if self.fault_plan is not None:
                try:
                    # Raises *before* the frame is dropped, so a failed
                    # write-back loses nothing and a retry re-attempts it.
                    self.fault_plan.on_write(block_id, self._frames[block_id])
                except SimulatedCrash as crash:
                    # The machine dies mid-write: a prefix of the block
                    # may reach the disk (torn write); the frame — like
                    # all volatile state — is lost with the machine.
                    if crash.torn_keep is not None:
                        self.disk.torn_write(
                            block_id, self._frames[block_id], crash.torn_keep
                        )
                    self._frames.pop(block_id, None)
                    self._dirty.pop(block_id, None)
                    raise
        records = self._frames.pop(block_id)
        if self._dirty.pop(block_id, False):
            self.disk.raw_write(block_id, records)
        # Clean frames were never modified; the disk copy is current.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EMContext(B={self.B}, M={self.M}, frames={self.num_frames}, "
            f"reads={self.stats.reads}, writes={self.stats.writes})"
        )


def ram_context() -> EMContext:
    """An :class:`EMContext` configured to behave like the RAM model.

    The paper notes all results hold in RAM "by setting M and B to
    appropriate constants".  We use ``B = 2`` (the minimum) with a large
    memory so the cache almost never misses; RAM-model structures simply
    never touch a context at all, but components shared with the EM path
    (sorting, selection) accept this one.
    """
    return EMContext(B=2, M=1 << 20)
