"""Unit tests for geometric primitives and exact predicates."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.primitives import (
    Ball,
    Halfplane,
    Interval,
    Line2D,
    Rect,
    cross,
    dot,
    squared_distance,
)

finite = st.floats(allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6)


class TestVectorOps:
    def test_dot_basic(self):
        assert dot((1, 2, 3), (4, 5, 6)) == 32

    def test_dot_dimension_mismatch(self):
        with pytest.raises(ValueError):
            dot((1, 2), (1, 2, 3))

    def test_cross_ccw_positive(self):
        assert cross((0, 0), (1, 0), (0, 1)) > 0

    def test_cross_cw_negative(self):
        assert cross((0, 0), (0, 1), (1, 0)) < 0

    def test_cross_collinear_zero(self):
        assert cross((0, 0), (1, 1), (2, 2)) == 0

    def test_squared_distance(self):
        assert squared_distance((0, 0), (3, 4)) == 25

    def test_squared_distance_mismatch(self):
        with pytest.raises(ValueError):
            squared_distance((0,), (1, 2))


class TestInterval:
    def test_contains_interior_and_endpoints(self):
        iv = Interval(2, 5)
        assert iv.contains(2) and iv.contains(5) and iv.contains(3.5)
        assert not iv.contains(1.999) and not iv.contains(5.001)

    def test_degenerate_point_interval(self):
        iv = Interval(3, 3)
        assert iv.contains(3)
        assert iv.length == 0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 2)

    def test_overlaps(self):
        assert Interval(0, 2).overlaps(Interval(2, 4))  # touching counts
        assert not Interval(0, 1).overlaps(Interval(2, 3))

    def test_hashable_and_frozen(self):
        assert len({Interval(0, 1), Interval(0, 1), Interval(0, 2)}) == 2
        with pytest.raises(AttributeError):
            Interval(0, 1).lo = 5


class TestRect:
    def test_contains_boundary(self):
        r = Rect(0, 10, 0, 5)
        assert r.contains((0, 0)) and r.contains((10, 5)) and r.contains((5, 2))
        assert not r.contains((10.1, 2)) and not r.contains((5, -0.1))

    def test_empty_rect_rejected(self):
        with pytest.raises(ValueError):
            Rect(5, 2, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 5, 2)

    def test_projections(self):
        r = Rect(1, 2, 3, 4)
        assert r.x_interval == Interval(1, 2)
        assert r.y_interval == Interval(3, 4)


class TestHalfplane:
    def test_contains_matches_inequality(self):
        hp = Halfplane((1.0, 0.0), 5.0)  # x >= 5
        assert hp.contains((5, 0)) and hp.contains((6, -3))
        assert not hp.contains((4.9, 100))

    def test_dim(self):
        assert Halfplane((1, 2, 3, 4), 0).dim == 4

    def test_below_line_constructor(self):
        hp = Halfplane.below_line(2.0, 1.0)  # y <= 2x + 1
        assert hp.contains((0, 1)) and hp.contains((0, 0))
        assert not hp.contains((0, 1.01))

    def test_above_line_constructor(self):
        hp = Halfplane.above_line(2.0, 1.0)  # y >= 2x + 1
        assert hp.contains((0, 1)) and hp.contains((0, 2))
        assert not hp.contains((0, 0.99))

    @settings(max_examples=50, deadline=None)
    @given(a=finite, b=finite, x=finite, y=finite)
    def test_above_below_partition_the_plane(self, a, b, x, y):
        below = Halfplane.below_line(a, b)
        above = Halfplane.above_line(a, b)
        assert below.contains((x, y)) or above.contains((x, y))


class TestBall:
    def test_contains_boundary(self):
        ball = Ball((0.0, 0.0), 5.0)
        assert ball.contains((3, 4))  # on boundary
        assert ball.contains((0, 0))
        assert not ball.contains((3.01, 4))

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Ball((0.0,), -1.0)

    def test_dim(self):
        assert Ball((0.0, 0.0, 0.0), 1.0).dim == 3


class TestLine2D:
    def test_at(self):
        assert Line2D(2, 1).at(3) == 7

    def test_intersect_x(self):
        assert Line2D(1, 0).intersect_x(Line2D(-1, 4)) == 2

    def test_parallel_raises(self):
        with pytest.raises(ValueError):
            Line2D(1, 0).intersect_x(Line2D(1, 5))
