"""Periodic telemetry: the control plane's view of one simulated tick.

The ops subsystem never inspects live objects mid-decision — it works
from :class:`TelemetrySample` records, each a frozen snapshot of *one
tick* of cluster life: query-path counter **deltas** (how many faults,
retries, degradations happened since the previous sample), per-machine
:class:`~repro.resilience.faults.FaultStats` deltas keyed by the
machine labels the fault plans already carry, and point-in-time
**gauges** (which replicas/shards are alive, per-replica lag, queue
depth, shard sizes).  Ticks are simulated — a sample is taken whenever
:meth:`TelemetryCollector.collect` is called, typically once per
:meth:`~repro.ops.operator.Operator.tick` — so the whole pipeline
stays deterministic and wall-clock-free, like the EM model it watches.

:class:`TelemetryCollector` adapts whatever subset of the stack exists:
a :class:`~repro.resilience.guard.ResilientTopKIndex` (query-path
health via the new :meth:`HealthSummary.delta` hook), a
:class:`~repro.replication.cluster.ReplicaSet`, a
:class:`~repro.sharding.sharded.ShardedTopKIndex`, and/or a
:class:`~repro.serving.engine.ServingEngine`.  Backends reachable from
the guard or engine are discovered automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


def _counter_delta(current: float, previous: float) -> float:
    """Monotone-counter delta, robust to resets (reboots swap stats)."""
    return current - previous if current >= previous else current


#: Flash counters mirrored from :class:`~repro.em.model.IOStats` into
#: the sample as per-tick deltas (the wear fields are gauges).
_FLASH_COUNTERS = (
    "flash_host_writes",
    "flash_device_writes",
    "flash_erases",
    "flash_gc_copies",
    "flash_gc_stalls",
    "flash_trims",
)


@dataclass(frozen=True)
class MachineDelta:
    """One machine's fault-plan activity since the previous sample."""

    machine: str
    alive: bool
    faults: int = 0        # read + write faults
    corruptions: int = 0
    crashes: int = 0
    reads: int = 0
    writes: int = 0
    latency_units: int = 0


@dataclass(frozen=True)
class TelemetrySample:
    """Everything the detector sees about one tick (module docstring).

    Integer fields named like counters are **deltas** since the
    previous sample; mappings and floats suffixed ``_gauge``-style
    (lag, aliveness, sizes, queue depth, latency) are current values.
    """

    tick: int
    # --- query path (guard health deltas) ---
    queries: int = 0
    degraded_queries: int = 0
    retries: int = 0
    transient_faults: int = 0
    corrupt_blocks: int = 0
    contract_violations: int = 0
    budget_exhaustions: int = 0
    rung_unavailable: int = 0
    spot_check_failures: int = 0
    # --- per-machine fault plans ---
    machines: Dict[str, MachineDelta] = field(default_factory=dict)
    # --- replication ---
    primary: str = ""
    replicas_alive: Dict[str, bool] = field(default_factory=dict)
    replica_lag: Dict[str, int] = field(default_factory=dict)
    replica_durable_lag: Dict[str, int] = field(default_factory=dict)
    promotions: int = 0
    follower_deaths: int = 0
    primary_crashes: int = 0
    ship_failures: int = 0
    scrub_repairs: int = 0
    # --- network / fencing (deltas except the partition gauge) ---
    ship_timeouts: int = 0
    fenced_rejects: int = 0
    lease_expirations: int = 0
    partitions_active: int = 0
    # --- sharding ---
    shards_alive: Dict[str, bool] = field(default_factory=dict)
    shard_sizes: Dict[str, int] = field(default_factory=dict)
    shard_losses: int = 0
    shard_recoveries: int = 0
    partial_answers: int = 0
    stale_map_retries: int = 0
    topology_in_flux: bool = False
    # --- serving ---
    served_queries: int = 0
    load_sheds: int = 0
    queue_sheds: int = 0
    deadline_sheds: int = 0
    queue_depth: int = 0
    brownout_level: int = 0
    serving_avg_latency: float = 0.0
    # --- end-to-end latency distribution (loadgen-fed gauges; 0 when
    # --- no latency source is wired) ---
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    p999_latency: float = 0.0
    # --- flash-backed durable storage (deltas; wear and WA are gauges,
    # --- with the WA computed over exactly this tick's write deltas) ---
    flash_host_writes: int = 0
    flash_device_writes: int = 0
    flash_erases: int = 0
    flash_gc_copies: int = 0
    flash_gc_stalls: int = 0
    flash_trims: int = 0
    storage_write_amp: float = 0.0
    flash_max_wear: int = 0
    flash_mean_wear: float = 0.0

    @property
    def total_machine_faults(self) -> int:
        return sum(m.faults for m in self.machines.values())


class TelemetryCollector:
    """Turn live stack objects into a :class:`TelemetrySample` stream.

    Pass whichever of ``guard`` / ``cluster`` / ``sharded`` / ``engine``
    the deployment has; a cluster or sharded index reachable as the
    guard's primary (or the engine's backend) is discovered
    automatically, so ``TelemetryCollector(guard=g)`` usually suffices.
    """

    def __init__(
        self,
        guard=None,
        cluster=None,
        sharded=None,
        engine=None,
        latency_source=None,
        flash_sources=None,
    ) -> None:
        from repro.durability.durable import DurableTopKIndex
        from repro.replication.cluster import ReplicaSet
        from repro.sharding.sharded import ShardedTopKIndex

        self.guard = guard
        self.engine = engine
        #: Optional zero-arg callable returning a mapping with any of
        #: ``p50``/``p99``/``p999`` — end-to-end latency quantiles from
        #: an external observer (canonically the loadgen harness's
        #: sliding window).  The engine's own ``avg_latency`` measures
        #: service time only; queueing delay is visible *only* from the
        #: client side, which is why SLO detection needs this feed.
        self.latency_source = latency_source
        backends = []
        if guard is not None:
            backends.append(guard.primary)
        if engine is not None:
            backends.append(engine.backend)
        if cluster is None:
            cluster = next(
                (b for b in backends if isinstance(b, ReplicaSet)), None
            )
        if sharded is None:
            sharded = next(
                (b for b in backends if isinstance(b, ShardedTopKIndex)), None
            )
        self.cluster = cluster
        self.sharded = sharded
        #: Mapping ``label -> IOStats`` of flash-backed durability
        #: contexts to watch.  When not given, a
        #: :class:`~repro.durability.durable.DurableTopKIndex` reachable
        #: as the guard's primary (or the engine's backend) contributes
        #: its durability context as ``"storage"`` automatically.  The
        #: fields stay zero for plain-disk stores, so wiring one is
        #: always safe.
        sources = dict(flash_sources) if flash_sources else {}
        if not sources:
            durable = next(
                (b for b in backends if isinstance(b, DurableTopKIndex)),
                None,
            )
            if durable is not None:
                sources["storage"] = durable.durability_io
        self.flash_sources = sources
        self._prev_flash: Dict[str, int] = {}
        self._prev_health: Optional[Dict[str, Any]] = None
        self._prev_machines: Dict[str, Tuple[int, int, int, int, int, int]] = {}
        self._prev_cluster: Dict[str, int] = {}
        self._prev_sharding: Dict[str, int] = {}
        self._prev_serving: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _machine_plans(self) -> List[Tuple[str, bool, object]]:
        """Every (label, alive, FaultPlan) pair reachable from the stack."""
        out: List[Tuple[str, bool, object]] = []
        seen = set()

        def add(label: str, alive: bool, plan) -> None:
            if plan is None or label in seen:
                return
            seen.add(label)
            out.append((label, alive, plan))

        clusters = [self.cluster] if self.cluster is not None else []
        if self.sharded is not None:
            from repro.replication.cluster import ReplicaSet

            for shard in self.sharded.router.shards.values():
                if shard.machine is not None:
                    add(shard.name, shard.machine.alive, shard.machine.plan)
                elif isinstance(shard.backend, ReplicaSet):
                    clusters.append(shard.backend)
        for cluster in clusters:
            for replica in cluster.replicas:
                add(replica.name, replica.alive, replica.plan)
        return out

    def _collect_machines(self) -> Dict[str, MachineDelta]:
        machines: Dict[str, MachineDelta] = {}
        current_totals: Dict[str, Tuple[int, int, int, int, int, int]] = {}
        for label, alive, plan in self._machine_plans():
            stats = plan.stats
            totals = (
                stats.read_faults + stats.write_faults,
                stats.corruptions,
                stats.crashes,
                stats.reads_seen,
                stats.writes_seen,
                stats.latency_units,
            )
            prev = self._prev_machines.get(label, (0, 0, 0, 0, 0, 0))
            delta = tuple(
                int(_counter_delta(cur, before))
                for cur, before in zip(totals, prev)
            )
            machines[label] = MachineDelta(
                machine=label,
                alive=alive,
                faults=delta[0],
                corruptions=delta[1],
                crashes=delta[2],
                reads=delta[3],
                writes=delta[4],
                latency_units=delta[5],
            )
            current_totals[label] = totals
        self._prev_machines = current_totals
        return machines

    @staticmethod
    def _delta_fields(
        current: Dict[str, int], previous: Dict[str, int]
    ) -> Dict[str, int]:
        return {
            name: int(_counter_delta(value, previous.get(name, 0)))
            for name, value in current.items()
        }

    # ------------------------------------------------------------------
    def collect(self, tick: int) -> TelemetrySample:
        """One tick's sample; the collector keeps the previous totals."""
        fields: Dict[str, Any] = {"tick": tick}

        if self.guard is not None:
            health = self.guard.health.delta(self._prev_health)
            self._prev_health = self.guard.health.snapshot()
            for name in (
                "queries",
                "degraded_queries",
                "retries",
                "transient_faults",
                "corrupt_blocks",
                "contract_violations",
                "budget_exhaustions",
                "rung_unavailable",
                "spot_check_failures",
            ):
                fields[name] = int(health.get(name, 0))

        fields["machines"] = self._collect_machines()

        if self.cluster is not None:
            cluster = self.cluster
            stats = cluster.stats
            fabric = getattr(cluster, "fabric", None)
            current = {
                "promotions": stats.promotions,
                "follower_deaths": stats.follower_deaths,
                "primary_crashes": stats.primary_crashes,
                "ship_failures": stats.ship_failures,
                "scrub_repairs": stats.scrub_repairs,
            }
            if fabric is not None:
                current["ship_timeouts"] = stats.ship_timeouts
                current["fenced_rejects"] = fabric.stats.fenced_rejects
                current["lease_expirations"] = fabric.stats.lease_expirations
            fields.update(self._delta_fields(current, self._prev_cluster))
            self._prev_cluster = current
            if fabric is not None:
                fields["partitions_active"] = fabric.active_partitions()
            fields["primary"] = cluster.replicas[cluster.primary_index].name
            fields["replicas_alive"] = {
                r.name: r.alive for r in cluster.replicas
            }
            fields["replica_lag"] = cluster.replica_lag()
            head = max(r.durable_lsn for r in cluster.replicas)
            fields["replica_durable_lag"] = {
                r.name: max(0, head - r.durable_lsn) for r in cluster.replicas
            }

        if self.sharded is not None:
            sharded = self.sharded
            stats = sharded.stats
            current = {
                "shard_losses": stats.shard_losses,
                "shard_recoveries": stats.shard_recoveries,
                "partial_answers": stats.partial_answers,
                "stale_map_retries": stats.stale_map_retries,
            }
            fields.update(self._delta_fields(current, self._prev_sharding))
            self._prev_sharding = current
            fields["shards_alive"] = {
                shard.name: shard.alive
                for shard in sharded.router.shards.values()
            }
            fields["shard_sizes"] = sharded.router.shard_sizes()
            fields["topology_in_flux"] = sharded.router.in_flux

        if self.engine is not None:
            engine = self.engine
            current = {
                "served_queries": engine.stats.queries,
                "load_sheds": engine.stats.load_sheds,
                "queue_sheds": engine.stats.queue_sheds,
                "deadline_sheds": engine.stats.deadline_sheds,
            }
            fields.update(self._delta_fields(current, self._prev_serving))
            self._prev_serving = current
            fields["queue_depth"] = engine.pending
            fields["serving_avg_latency"] = engine.stats.avg_latency_seconds
            brownout = getattr(engine, "brownout", None)
            if brownout is not None:
                fields["brownout_level"] = brownout.level

        if self.flash_sources:
            totals = {name: 0 for name in _FLASH_COUNTERS}
            max_wear = 0
            mean_wears: List[float] = []
            for label in sorted(self.flash_sources):
                stats = self.flash_sources[label]
                for name in _FLASH_COUNTERS:
                    totals[name] += int(getattr(stats, name))
                max_wear = max(max_wear, stats.flash_max_wear)
                mean_wears.append(stats.flash_mean_wear)
            delta = self._delta_fields(totals, self._prev_flash)
            self._prev_flash = totals
            fields.update(delta)
            host = delta["flash_host_writes"]
            # WA over exactly this tick's window — the detector sees
            # the *current* churn, not a lifetime average diluted by
            # a long healthy past.
            fields["storage_write_amp"] = (
                delta["flash_device_writes"] / host if host > 0 else 0.0
            )
            fields["flash_max_wear"] = max_wear
            fields["flash_mean_wear"] = (
                sum(mean_wears) / len(mean_wears) if mean_wears else 0.0
            )

        if self.latency_source is not None:
            quantiles = self.latency_source() or {}
            fields["p50_latency"] = float(quantiles.get("p50", 0.0))
            fields["p99_latency"] = float(quantiles.get("p99", 0.0))
            fields["p999_latency"] = float(quantiles.get("p999", 0.0))

        return TelemetrySample(**fields)


__all__ = ["TelemetrySample", "TelemetryCollector", "MachineDelta"]
