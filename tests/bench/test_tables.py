"""Tests for the table renderer."""

from repro.bench.tables import render_table


class TestRenderTable:
    def test_basic_shape(self):
        out = render_table("Title", ["a", "bb"], [[1, 2.5], [30, None]])
        lines = out.splitlines()
        assert lines[0] == "== Title =="
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_none_renders_dash(self):
        out = render_table("t", ["x"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_float_formatting(self):
        out = render_table("t", ["x"], [[0.123456]])
        assert "0.123" in out

    def test_large_float_thousands(self):
        out = render_table("t", ["x"], [[123456.0]])
        assert "123,456" in out

    def test_note_appended(self):
        out = render_table("t", ["x"], [[1]], note="hello")
        assert out.splitlines()[-1].strip() == "note: hello"

    def test_columns_aligned(self):
        out = render_table("t", ["col", "другое"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines[3]) == len(lines[4])
