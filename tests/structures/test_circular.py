"""Tests for circular range structures built via the lifting map."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import oracle_max, oracle_prioritized, sorted_desc
from repro.core.problem import Element
from repro.geometry.primitives import Ball
from repro.structures.circular import (
    CircularPredicate,
    LiftedCircularMax,
    LiftedCircularPrioritized,
)


def make_points(n, d, seed=0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    return [
        Element(tuple(rng.uniform(-10, 10) for _ in range(d)), float(weights[i]), payload=i)
        for i in range(n)
    ]


def random_ball(rng, d):
    return Ball(tuple(rng.uniform(-10, 10) for _ in range(d)), rng.uniform(0.5, 12))


class TestPredicate:
    def test_closed_boundary(self):
        p = CircularPredicate(Ball((0.0, 0.0), 5.0))
        assert p.matches((3.0, 4.0))
        assert not p.matches((3.1, 4.0))


class TestPrioritized:
    @pytest.mark.parametrize("d", [2, 3])
    def test_matches_oracle(self, d):
        elements = make_points(200, d, seed=d)
        index = LiftedCircularPrioritized(elements)
        rng = random.Random(d + 20)
        for _ in range(40):
            p = CircularPredicate(random_ball(rng, d))
            tau = rng.uniform(0, 2000)
            assert sorted_desc(index.query(p, tau).elements) == oracle_prioritized(
                elements, p, tau
            )

    def test_elements_keep_original_objects(self):
        elements = make_points(60, 2, seed=1)
        index = LiftedCircularPrioritized(elements)
        p = CircularPredicate(Ball((0.0, 0.0), 20.0))
        reported = index.query(p, -math.inf).elements
        assert set(reported) == set(elements)  # same objects, not lifted copies

    def test_limit_truncation(self):
        elements = make_points(100, 2, seed=2)
        index = LiftedCircularPrioritized(elements)
        p = CircularPredicate(Ball((0.0, 0.0), 100.0))
        r = index.query(p, -math.inf, limit=5)
        assert r.truncated and len(r.elements) == 6

    def test_empty_ball(self):
        elements = make_points(80, 2, seed=3)
        index = LiftedCircularPrioritized(elements)
        p = CircularPredicate(Ball((500.0, 500.0), 1.0))
        assert index.query(p, -math.inf).elements == []


class TestMax:
    @pytest.mark.parametrize("d", [2, 3])
    def test_matches_oracle(self, d):
        elements = make_points(200, d, seed=d + 5)
        index = LiftedCircularMax(elements)
        rng = random.Random(d + 30)
        for _ in range(60):
            p = CircularPredicate(random_ball(rng, d))
            assert index.query(p) == oracle_max(elements, p)

    def test_returns_original_element(self):
        elements = make_points(50, 2, seed=6)
        index = LiftedCircularMax(elements)
        hit = index.query(CircularPredicate(Ball((0.0, 0.0), 50.0)))
        assert hit in elements

    def test_none_when_empty(self):
        elements = make_points(50, 2, seed=7)
        index = LiftedCircularMax(elements)
        assert index.query(CircularPredicate(Ball((99.0, 99.0), 0.5))) is None


coordinate = st.integers(-10, 10)


@settings(max_examples=25, deadline=None)
@given(
    pts=st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=40),
    cx=st.integers(-12, 12),
    cy=st.integers(-12, 12),
    r=st.floats(0.1, 20, allow_nan=False),
    seed=st.integers(0, 100),
)
def test_property_matches_oracle(pts, cx, cy, r, seed):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * len(pts)), len(pts))
    elements = [
        Element((float(p[0]), float(p[1])), float(w)) for p, w in zip(pts, weights)
    ]
    p = CircularPredicate(Ball((float(cx), float(cy)), r))
    index = LiftedCircularPrioritized(elements, leaf_size=2)
    assert sorted_desc(index.query(p, -math.inf).elements) == oracle_prioritized(
        elements, p, -math.inf
    )
    assert LiftedCircularMax(elements).query(p) == oracle_max(elements, p)
