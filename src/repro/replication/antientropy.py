"""Anti-entropy: detect silent divergence between replicas and repair it.

Replication by WAL shipping keeps replicas convergent *if their disks
stay honest* — but disks rot.  The scrubber closes that gap with two
independent checks, run over every live replica:

* a **local seal walk** (:meth:`DurableStore.fingerprints`): every
  block the replica's durable root references is read raw off the disk
  and its embedded seal verified.  A failed seal is local, physical
  damage — bit rot or a torn write the superblock still points at;
* a **cross-replica state digest**: a CRC over the full in-memory
  state (RNG stream included).  Replicas built identically and fed the
  same op sequence are bit-for-bit equal, so after the scrub barrier
  aligns applied LSNs any digest disagreement is real divergence —
  even when every block seal passes (e.g. a block swapped for a stale
  but well-sealed copy).

The reference state is the majority digest among replicas whose seal
walk came back clean (ties prefer the primary, then the smallest
digest).  Every divergent replica is **repaired by resync**: the
source's newest snapshot is read and restored, the source's committed
WAL tail past the snapshot is replayed onto it, and a fresh machine is
built around the result, joining the cluster at the next LSN.  The
repaired replica is then bit-for-bit equal to the source — which the
digest re-check (and the tests) verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.durability.recovery import apply_record
from repro.durability.snapshot import read_snapshot
from repro.durability.wal import read_committed
from repro.net.fabric import MSG_RESYNC
from repro.replication.replica import Replica
from repro.resilience.errors import PartitionedError, SnapshotIntegrityError
from repro.resilience.faults import FaultPlan


@dataclass
class ScrubReport:
    """What one anti-entropy pass saw and did."""

    replicas_checked: List[str] = field(default_factory=list)
    bad_blocks: Dict[str, List[int]] = field(default_factory=dict)
    digests: Dict[str, int] = field(default_factory=dict)
    reference_digest: Optional[int] = None
    divergent: List[str] = field(default_factory=list)
    repaired: List[str] = field(default_factory=list)
    records_resynced: int = 0

    @property
    def clean(self) -> bool:
        """Whether every replica matched the reference state."""
        return not self.divergent


class AntiEntropyScrubber:
    """Walks replica disks, compares states, resyncs the divergent."""

    def __init__(self, restore_fn) -> None:
        self.restore_fn = restore_fn
        self.scrubs = 0
        self.repairs = 0
        self.records_resynced = 0

    # ------------------------------------------------------------------
    def scrub(self, cluster, repair: bool = True) -> ScrubReport:
        """One full anti-entropy pass over ``cluster``'s live replicas.

        Starts with the cluster's alignment barrier (commit + ship +
        apply everywhere) so every live replica sits at the same applied
        LSN — without it, honest replication lag would read as
        divergence.  Then fingerprints and digests, elects the
        reference, and (with ``repair``) resyncs every divergent
        replica from a clean source.
        """
        cluster.align()
        live = [r for r in cluster.replicas if r.alive]
        report = ScrubReport(replicas_checked=[r.name for r in live])
        for replica in live:
            fingerprints = replica.store.fingerprints()
            report.bad_blocks[replica.name] = sorted(
                block_id
                for block_id, (_, seal_ok) in fingerprints.items()
                if not seal_ok
            )
            report.digests[replica.name] = replica.state_digest()

        clean = [r for r in live if not report.bad_blocks[r.name]]
        if not clean:
            # Every live replica has physical damage: no trustworthy
            # source exists, so nothing can be repaired from within the
            # cluster.  (The rebuild rung may still recover from disk.)
            report.divergent = [r.name for r in live]
            self.scrubs += 1
            return report

        primary = cluster.replicas[cluster.primary_index]
        reference = self._reference_digest(report, clean, primary)
        report.reference_digest = reference
        divergent = [
            r
            for r in live
            if report.bad_blocks[r.name] or report.digests[r.name] != reference
        ]
        report.divergent = [r.name for r in divergent]

        if repair and divergent:
            source = self._pick_source(report, clean, primary, reference)
            for replica in divergent:
                if replica is source:
                    continue
                try:
                    report.records_resynced += self.repair(
                        cluster, replica, source
                    )
                except PartitionedError:
                    # Unreachable across a partition: stays divergent
                    # (and listed as such) until a later scrub after
                    # the heal.
                    continue
                report.repaired.append(replica.name)
        self.scrubs += 1
        return report

    @staticmethod
    def _reference_digest(
        report: ScrubReport, clean: List[Replica], primary: Replica
    ) -> int:
        """Majority digest among clean replicas (primary breaks ties)."""
        counts: Dict[int, int] = {}
        for replica in clean:
            digest = report.digests[replica.name]
            counts[digest] = counts.get(digest, 0) + 1
        best = max(counts.values())
        candidates = [d for d, c in counts.items() if c == best]
        primary_digest = report.digests.get(primary.name)
        if primary.name in {r.name for r in clean} and primary_digest in candidates:
            return primary_digest
        return min(candidates)

    @staticmethod
    def _pick_source(
        report: ScrubReport,
        clean: List[Replica],
        primary: Replica,
        reference: int,
    ) -> Replica:
        """A clean replica holding the reference state (prefer primary)."""
        matching = [r for r in clean if report.digests[r.name] == reference]
        for replica in matching:
            if replica is primary:
                return replica
        return min(matching, key=lambda r: r.name)

    # ------------------------------------------------------------------
    def repair(self, cluster, target: Replica, source: Replica) -> int:
        """Resync ``target`` from ``source``: snapshot + WAL tail.

        Reads the source's newest durable snapshot, restores it,
        replays the source's committed log past the snapshot's
        ``last_lsn``, and swaps a fresh machine holding the result into
        the cluster at ``target``'s slot (same name, same role, a new
        disk — the damaged one is retired).  The rebuilt replica joins
        the cluster's LSN sequence exactly where the source's committed
        history ends.  Returns the number of WAL records resynced.
        """
        fabric = getattr(cluster, "fabric", None)
        if fabric is not None and source.name != target.name:
            # A resync is bulk traffic source -> target: probe the link
            # with one envelope before moving anything, so a partitioned
            # target fails here (PartitionedError) with the cluster
            # untouched rather than mid-swap.
            fabric.send(
                source.name,
                target.name,
                MSG_RESYNC,
                None,
                epoch=getattr(cluster, "commit_epoch", 0),
                key=("resync", source.name, target.name, source.durable_lsn),
            )
        if not source.store.snapshots:
            raise SnapshotIntegrityError(
                f"source replica {source.name!r} has no snapshot to resync from"
            )
        state = read_snapshot(source.store, source.store.snapshots[0])
        inner = self.restore_fn(state["index"])
        last_lsn = state.get("last_lsn", 0)
        groups, _ = read_committed(
            source.store, source.durable.wal.head, after_lsn=last_lsn
        )
        resynced = 0
        for group in groups:
            for record in group:
                apply_record(inner, record)
                resynced += 1
        old_plan = target.plan
        replacement = Replica(
            target.name,
            inner,
            B=target.B,
            M=target.M,
            commit_interval=target.commit_interval,
            # A fresh machine inherits the chaos *environment* (rates,
            # seed, arm state) but not the old machine's crash schedule
            # or crashed flag — the dead hardware is retired with it.
            fault_plan=FaultPlan(
                seed=old_plan.seed,
                read_fail_rate=old_plan.read_fail_rate,
                write_fail_rate=old_plan.write_fail_rate,
                corrupt_rate=old_plan.corrupt_rate,
                read_latency=old_plan.read_latency,
                write_latency=old_plan.write_latency,
                armed=old_plan.armed,
                machine=target.name,
            ),
            next_lsn=source.durable_lsn + 1,
        )
        # The replacement holds the source's current-epoch state, so it
        # rejoins fully fenced — old-epoch envelopes bounce off it.
        replacement.fence_epoch = getattr(cluster, "commit_epoch", 0)
        replacement.log_epoch = getattr(cluster, "commit_epoch", 0)
        cluster.replace_replica(target, replacement)
        self.repairs += 1
        self.records_resynced += resynced
        return resynced


__all__ = ["AntiEntropyScrubber", "ScrubReport"]
