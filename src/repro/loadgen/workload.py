"""Query mixes: what the generated traffic actually asks.

A mix turns an arrival timestamp into a ``(predicate, k)`` request,
deterministically (seeded RNG per mix).  The mixes model the key-
popularity shapes that stress different serving layers:

* :class:`UniformMix` — every probe equally likely: the cache-hostile
  baseline (batching and sharding must carry the load);
* :class:`ZipfMix` — rank-``s`` power-law popularity: the cache-
  friendly production shape, where a handful of hot predicates
  dominate;
* :class:`HotKeyStorm` — a base mix, except that inside a time window
  a fraction of all traffic collapses onto ONE predicate — the
  celebrity-news spike that turns a healthy cache into a single-group
  convoy.

Probes are shared with the serving tests' convention: a pool of
``(predicate, k)``-compatible predicate objects plus a k range.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional, Sequence, Tuple

from repro.resilience.errors import InvalidConfiguration

Request = Tuple[object, int]  # (predicate, k)


class UniformMix:
    """Uniform draw over the probe pool, uniform k in ``k_range``."""

    def __init__(
        self,
        pool: Sequence[object],
        k_range: Tuple[int, int] = (1, 8),
        seed: int = 0,
    ) -> None:
        if not pool:
            raise InvalidConfiguration("probe pool must not be empty")
        lo, hi = k_range
        if lo < 1 or hi < lo:
            raise InvalidConfiguration(
                f"k_range must satisfy 1 <= lo <= hi, got {k_range}"
            )
        self.pool = list(pool)
        self.k_range = (lo, hi)
        self._rng = random.Random(f"mix-uniform-{seed}")

    def request(self, t: float) -> Request:
        predicate = self.pool[self._rng.randrange(len(self.pool))]
        k = self._rng.randint(*self.k_range)
        return predicate, k


class ZipfMix:
    """Zipf(s) draw over the pool: probability of rank r is ~ 1/r^s."""

    def __init__(
        self,
        pool: Sequence[object],
        s: float = 1.1,
        k_range: Tuple[int, int] = (1, 8),
        seed: int = 0,
    ) -> None:
        if not pool:
            raise InvalidConfiguration("probe pool must not be empty")
        if s <= 0.0:
            raise InvalidConfiguration(f"s must be > 0, got {s}")
        lo, hi = k_range
        if lo < 1 or hi < lo:
            raise InvalidConfiguration(
                f"k_range must satisfy 1 <= lo <= hi, got {k_range}"
            )
        self.pool = list(pool)
        self.k_range = (lo, hi)
        self._rng = random.Random(f"mix-zipf-{seed}")
        # Cumulative mass over ranks; pool order is popularity order.
        masses = [1.0 / (rank + 1) ** s for rank in range(len(self.pool))]
        total = sum(masses)
        cumulative: List[float] = []
        acc = 0.0
        for mass in masses:
            acc += mass / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def request(self, t: float) -> Request:
        rank = bisect.bisect_left(self._cumulative, self._rng.random())
        predicate = self.pool[min(rank, len(self.pool) - 1)]
        k = self._rng.randint(*self.k_range)
        return predicate, k


class HotKeyStorm:
    """Wrap a base mix; inside the window, one predicate soaks traffic.

    During ``[start, start + duration)`` each request is, with
    probability ``hot_fraction``, the single ``hot`` predicate at
    ``hot_k`` (defaulting to the base mix's largest k) — outside the
    window the base mix passes through untouched.
    """

    def __init__(
        self,
        base,
        hot: object,
        start: float,
        duration: float,
        hot_fraction: float = 0.8,
        hot_k: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 < hot_fraction <= 1.0:
            raise InvalidConfiguration(
                f"hot_fraction must be in (0, 1], got {hot_fraction}"
            )
        if duration <= 0.0:
            raise InvalidConfiguration(
                f"duration must be > 0, got {duration}"
            )
        self.base = base
        self.hot = hot
        self.start = start
        self.duration = duration
        self.hot_fraction = hot_fraction
        self.hot_k = hot_k if hot_k is not None else base.k_range[1]
        self._rng = random.Random(f"mix-storm-{seed}")

    def request(self, t: float) -> Request:
        in_window = self.start <= t < self.start + self.duration
        if in_window and self._rng.random() < self.hot_fraction:
            return self.hot, self.hot_k
        return self.base.request(t)


__all__ = ["UniformMix", "ZipfMix", "HotKeyStorm", "Request"]
