"""Log-bucketed latency histograms: p50/p99/p999, never just means.

Mean latency is the great liar of serving benchmarks: a system can
halve its mean while its p99 triples, and nobody paging at 3am cares
about the mean.  :class:`LatencyHistogram` records the *distribution*
— HdrHistogram-style geometric buckets whose relative error is bounded
by the growth factor (default 4% per bucket), in O(1) memory per
decade of dynamic range — and answers arbitrary quantiles.

Deterministic and dependency-free: a dict of bucket counts, no
sampling, no reservoir randomness.  Histograms :meth:`merge`, so
per-tick windows roll up into per-scenario totals exactly.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.resilience.errors import InvalidConfiguration


class LatencyHistogram:
    """Geometric-bucket histogram over non-negative values.

    Parameters
    ----------
    resolution:
        Values at or below this land in the first bucket (and zero has
        a bucket of its own) — the floor below which finer distinction
        is noise.  Defaults to one microsecond.
    growth:
        Bucket upper edges grow by this factor; quantiles are reported
        as bucket upper edges, so the relative overestimate is at most
        ``growth - 1``.
    """

    def __init__(self, resolution: float = 1e-6, growth: float = 1.04) -> None:
        if resolution <= 0.0:
            raise InvalidConfiguration(
                f"resolution must be > 0, got {resolution}"
            )
        if growth <= 1.0:
            raise InvalidConfiguration(f"growth must be > 1, got {growth}")
        self.resolution = resolution
        self.growth = growth
        self._log_growth = math.log(growth)
        self._counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self.min_value = math.inf

    # ------------------------------------------------------------------
    def _bucket(self, value: float) -> int:
        if value <= 0.0:
            return -1
        if value <= self.resolution:
            return 0
        # Bucket i (>=1) covers (resolution * growth^(i-1), resolution * growth^i].
        index = math.ceil(
            math.log(value / self.resolution) / self._log_growth - 1e-12
        )
        return max(1, index)

    def _upper_edge(self, bucket: int) -> float:
        if bucket <= 0:
            return 0.0 if bucket < 0 else self.resolution
        return self.resolution * self.growth**bucket

    # ------------------------------------------------------------------
    def record(self, value: float, count: int = 1) -> None:
        """Fold ``count`` observations of ``value`` in."""
        if count <= 0:
            return
        if value < 0.0:
            raise InvalidConfiguration(f"latency must be >= 0, got {value}")
        bucket = self._bucket(value)
        self._counts[bucket] = self._counts.get(bucket, 0) + count
        self.count += count
        self.total += value * count
        if value > self.max_value:
            self.max_value = value
        if value < self.min_value:
            self.min_value = value

    def record_all(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram in (bucket-exact for equal configs)."""
        if (
            other.resolution != self.resolution
            or other.growth != self.growth
        ):
            raise InvalidConfiguration(
                "cannot merge histograms with different bucket geometry"
            )
        for bucket, count in other._counts.items():
            self._counts[bucket] = self._counts.get(bucket, 0) + count
        self.count += other.count
        self.total += other.total
        self.max_value = max(self.max_value, other.max_value)
        self.min_value = min(self.min_value, other.min_value)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The value at or below which a fraction ``q`` of counts fall.

        Reported as the containing bucket's upper edge (the max of the
        histogram's actual maximum, for the last bucket) — pessimistic
        by at most one ``growth`` factor, never optimistic.
        """
        if not 0.0 <= q <= 1.0:
            raise InvalidConfiguration(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # ceil(q * count) observations must be covered; q=0 -> min.
        target = max(1, math.ceil(q * self.count - 1e-9))
        seen = 0
        for bucket in sorted(self._counts):
            seen += self._counts[bucket]
            if seen >= target:
                return min(self._upper_edge(bucket), self.max_value)
        return self.max_value  # pragma: no cover - loop always covers

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    def summary(self) -> Dict[str, float]:
        """The gauges a telemetry latency source feeds the detector."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max_value if self.count else 0.0,
        }

    def buckets(self) -> List[Tuple[float, int]]:
        """(upper edge, count) pairs, ascending — for table rendering."""
        return [
            (self._upper_edge(bucket), self._counts[bucket])
            for bucket in sorted(self._counts)
        ]

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        if not self.count:
            return "LatencyHistogram(empty)"
        return (
            f"LatencyHistogram(n={self.count}, p50={self.p50:.4g}, "
            f"p99={self.p99:.4g}, p999={self.p999:.4g})"
        )


__all__ = ["LatencyHistogram"]
