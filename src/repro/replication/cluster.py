"""`ReplicaSet`: a replicated top-k service over N simulated machines.

The set is N independent :class:`~repro.replication.replica.Replica`
machines — each with its own disk, fault plan, durable store, and
index — coordinated by three mechanisms:

* **synchronous WAL shipping** — every update goes to the primary's
  durable log first; the committed tail is then shipped to each live
  follower via the incremental
  :func:`~repro.durability.wal.read_committed` (``after_lsn`` = the
  follower's own durable LSN) and spliced onto the follower's log with
  :meth:`DurableTopKIndex.apply_shipped`.  A follower's acknowledgement
  is its *own durable commit*, so any record the set ever acknowledged
  is durable on every follower that acked it — promotion by highest
  durable LSN therefore never loses an acknowledged write.  Followers
  apply **lazily** by default: records are durable immediately but
  folded into the in-memory index only when a freshness-bounded read,
  a checkpoint, or a promotion demands it;
* **deterministic failover** — a :class:`SimulatedCrash` on the
  primary (or a condemned fault streak, per
  :class:`~repro.replication.failover.FailoverPolicy`) triggers
  promotion of the surviving follower with the highest durable LSN
  (ties break on name), which replays its committed-but-unapplied tail
  before admitting operations.  The interrupted update is retried on
  the new primary idempotently — a membership check detects whether
  the record made it across before the crash;
* **anti-entropy** — :meth:`scrub` delegates to the
  :class:`~repro.replication.antientropy.AntiEntropyScrubber`, walking
  block seals per replica and state digests across replicas, and
  resyncing any divergent machine from a clean source.

Reads come in three modes: ``primary`` (authoritative), ``quorum``
(majority of live replicas must answer within the staleness bound;
disagreement is counted and left for the scrubber), and ``hedged`` (a
round-robin follower serves, falling back to the primary when the
follower is stale or faulty).  A follower whose applied LSN trails the
bound first catches up from its own durable log; if it is *durably*
behind (missed ships), the read falls back to the primary.

Degradation ladder: healthy quorum → degraded reads (fewer live
replicas than a majority — served and counted, never silently) →
**rebuild from the durable record** (every machine dead: the disk with
the highest durable LSN is mounted fresh and recovered via
:func:`~repro.durability.recovery.recover_index`, becoming the new
primary of a one-machine set).

**Network + fencing** (PR 8): all WAL shipping, lease renewal, and
anti-entropy resync traffic crosses a
:class:`~repro.net.fabric.NetworkFabric` in typed envelopes carrying
idempotency keys — a default fabric is perfect, so the pre-PR-8
behaviour is unchanged; a chaos fabric drops, duplicates, reorders,
delays, and partitions per directed link.  Transport failures
(:class:`~repro.resilience.errors.PartitionedError`) are *never*
machine faults: they feed no failure-detector streak and kill no
follower.  With ``lease_ttl > 0`` the set is **fenced**: the commit
epoch doubles as a fencing token stamped on every envelope, stale
epochs are rejected at delivery, the primary must renew a counted
virtual-time lease against a quorum before acknowledging (a write that
cannot reach a quorum is rolled back and refused — or surfaced as
indeterminate when even the rollback's fate is unknown), a primary
whose lease lapses demotes itself to read-only, and elections promote
only quorum-reachable followers after waiting out the deposed holder's
lease — split-brain is structurally impossible, not just unlikely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.interfaces import TopKIndex
from repro.core.problem import Element, Predicate
from repro.core.theorem2 import ExpectedTopKIndex
from repro.durability.durable import DurableTopKIndex
from repro.durability.wal import OP_DELETE, OP_INSERT, read_committed
from repro.net.fabric import (
    MSG_LEASE_RENEW,
    MSG_RESYNC,
    MSG_WAL_SHIP,
    Message,
    NetworkFabric,
)
from repro.replication.antientropy import AntiEntropyScrubber, ScrubReport
from repro.replication.failover import FailoverController, FailoverPolicy
from repro.replication.replica import ROLE_FOLLOWER, ROLE_PRIMARY, Replica
from repro.resilience.errors import (
    FailoverError,
    FencedError,
    InvalidConfiguration,
    PartitionedError,
    RecoveryError,
    ReplicaUnavailable,
    SimulatedCrash,
    SnapshotIntegrityError,
    TransientIOError,
    WALShippingGap,
)
from repro.resilience.faults import FaultPlan

READ_PRIMARY = "primary"
READ_QUORUM = "quorum"
READ_HEDGED = "hedged"
_READ_MODES = (READ_PRIMARY, READ_QUORUM, READ_HEDGED)

APPLY_LAZY = "lazy"
APPLY_EAGER = "eager"


class _StaleRead(ReplicaUnavailable):
    """Internal: a follower could not reach the freshness bound."""


@dataclass
class ReplicationStats:
    """Counters of everything the replica set did."""

    inserts: int = 0
    deletes: int = 0
    groups_shipped: int = 0
    records_shipped: int = 0
    acks: int = 0
    ship_failures: int = 0
    primary_crashes: int = 0
    follower_deaths: int = 0
    promotions: int = 0
    failover_records_replayed: int = 0
    quorum_reads: int = 0
    quorum_mismatches: int = 0
    degraded_reads: int = 0
    hedged_reads: int = 0
    hedge_wins: int = 0
    stale_fallbacks: int = 0
    scrubs: int = 0
    scrub_repairs: int = 0
    records_resynced: int = 0
    resyncs: int = 0
    rebuilds: int = 0
    forced_failovers: int = 0
    replica_reboots: int = 0
    # Network / fencing (PR 8).
    ship_timeouts: int = 0         # transport-level ship failures (not deaths)
    ship_retries: int = 0          # idempotent re-sends after a timeout
    lease_renewals: int = 0
    lease_expirations: int = 0     # self-demotions of a quorum-less primary
    quorum_ack_failures: int = 0   # writes that could not reach a majority
    write_compensations: int = 0   # failed writes rolled back on the primary


class ReplicaSet(TopKIndex):
    """A top-k index served by N replicated machines (module docstring).

    Parameters
    ----------
    elements:
        The initial set ``D``.
    build_fn:
        ``elements -> TopKIndex``.  **Must be deterministic**: every
        replica is built by calling it on the same elements, and
        replication correctness (and anti-entropy's digest comparison)
        rests on identically-built replicas staying bit-for-bit equal
        under the same op sequence.
    restore_fn:
        ``state dict -> TopKIndex`` — the recovery/resync counterpart.
    num_replicas / names / fault_plans:
        Cluster shape; plans default to disarmed per-machine plans.
    B / M / commit_interval:
        Per-machine durable store parameters.
    apply_mode:
        ``"lazy"`` (default): followers defer the in-memory apply until
        a read, checkpoint, or promotion needs it — the mode in which
        failover genuinely replays the committed-but-unapplied tail.
        ``"eager"``: followers apply at ship time.
    read_mode / max_staleness:
        Default read mode and the per-replica staleness bound (in LSNs
        behind the primary's applied LSN) a serving replica may carry.
    fabric:
        The :class:`~repro.net.fabric.NetworkFabric` carrying all
        inter-replica traffic.  Omitted, a private perfect fabric is
        created — identical behaviour to direct calls.
    lease_ttl:
        ``> 0`` turns on epoch-fenced leases with this TTL in fabric
        clock units (module docstring); ``0`` (default) keeps the
        pre-fencing semantics bit-for-bit.
    """

    def __init__(
        self,
        elements: Sequence[Element],
        build_fn: Callable[[List[Element]], TopKIndex],
        restore_fn: Callable[[dict], TopKIndex],
        num_replicas: int = 3,
        B: int = 16,
        M: Optional[int] = None,
        commit_interval: int = 1,
        apply_mode: str = APPLY_LAZY,
        read_mode: str = READ_QUORUM,
        max_staleness: int = 0,
        failover_policy: Optional[FailoverPolicy] = None,
        fault_plans: Optional[Sequence[Optional[FaultPlan]]] = None,
        names: Optional[Sequence[str]] = None,
        fabric: Optional[NetworkFabric] = None,
        lease_ttl: int = 0,
    ) -> None:
        if num_replicas < 1:
            raise InvalidConfiguration(
                f"num_replicas must be >= 1, got {num_replicas}"
            )
        if apply_mode not in (APPLY_LAZY, APPLY_EAGER):
            raise InvalidConfiguration(f"unknown apply_mode {apply_mode!r}")
        if read_mode not in _READ_MODES:
            raise InvalidConfiguration(f"unknown read_mode {read_mode!r}")
        if max_staleness < 0:
            raise InvalidConfiguration(
                f"max_staleness must be >= 0, got {max_staleness}"
            )
        names = (
            list(names)
            if names is not None
            else [f"replica-{i}" for i in range(num_replicas)]
        )
        plans: List[Optional[FaultPlan]] = (
            list(fault_plans) if fault_plans is not None else [None] * num_replicas
        )
        if len(names) != num_replicas or len(plans) != num_replicas:
            raise InvalidConfiguration(
                "names and fault_plans must match num_replicas"
            )
        if len(set(names)) != num_replicas:
            raise InvalidConfiguration("replica names must be distinct")
        self.build_fn = build_fn
        self.restore_fn = restore_fn
        self.B = B
        self.M = M
        self.commit_interval = commit_interval
        self.apply_mode = apply_mode
        self.read_mode = read_mode
        self.max_staleness = max_staleness
        elements = list(elements)
        self.replicas: List[Replica] = [
            Replica(
                names[i],
                build_fn(list(elements)),
                B=B,
                M=M,
                commit_interval=commit_interval,
                fault_plan=plans[i],
            )
            for i in range(num_replicas)
        ]
        self.replicas[0].role = ROLE_PRIMARY
        self.primary_index = 0
        self.failover = FailoverController(failover_policy)
        self.scrubber = AntiEntropyScrubber(restore_fn)
        self.stats = ReplicationStats()
        self._hedge_cursor = 0
        # Bumped on every promotion/rebuild.  A new primary may hold a
        # *lower* applied LSN than its predecessor (an uncommitted tail
        # died with the old machine), so LSN comparison alone cannot
        # validate cached answers across failovers — the epoch can.
        # With fencing on it doubles as the fencing token.
        self.commit_epoch = 0
        if lease_ttl < 0:
            raise InvalidConfiguration(
                f"lease_ttl must be >= 0, got {lease_ttl}"
            )
        self.fabric = fabric if fabric is not None else NetworkFabric(seed=0)
        self.lease_ttl = lease_ttl
        self._fenced = lease_ttl > 0
        self._ship_retries = 1
        # Highest LSN the current epoch inherited.  A rejoining replica
        # whose durable log extends past this while its fence epoch is
        # stale holds a divergent tail from a dead epoch — it must be
        # resynced, never spliced.
        self._epoch_base_lsn = 0
        for name in names:
            self.fabric.register(name, self._net_receive)
        if self._fenced:
            self.failover.configure_lease(lease_ttl)
            self.failover.grant_lease(self.primary.name, self.fabric.now)

    # ------------------------------------------------------------------
    # Membership / health surface
    # ------------------------------------------------------------------
    @property
    def primary(self) -> Replica:
        return self.replicas[self.primary_index]

    @property
    def live_replicas(self) -> List[Replica]:
        return [r for r in self.replicas if r.alive]

    def replica_lag(self) -> Dict[str, int]:
        """Per-replica LSN lag behind the primary's applied state.

        Live replicas report their *applied* lag (what a read would
        see); dead machines report their *durable* lag (what a rebuild
        from their disk would lose).
        """
        primary = self.primary
        head = (
            primary.applied_lsn
            if primary.alive
            else max(r.durable_lsn for r in self.replicas)
        )
        return {
            r.name: max(0, head - (r.applied_lsn if r.alive else r.durable_lsn))
            for r in self.replicas
        }

    @property
    def n(self) -> int:
        return self._require_primary().durable.n

    def space_units(self) -> int:
        """Total space across live machines — replication is not free."""
        return sum(r.durable.space_units() for r in self.live_replicas)

    def __contains__(self, element: Element) -> bool:
        inner = self._require_primary().durable.inner
        if hasattr(type(inner), "__contains__"):
            return element in inner
        raise TypeError(f"{type(inner).__name__} does not support membership")

    # ------------------------------------------------------------------
    # Network delivery (the fabric's endpoint handler for every replica)
    # ------------------------------------------------------------------
    def _net_receive(self, message: Message):
        """Apply one delivered envelope at its destination replica.

        Fencing happens *here*, at the resource: a fenced cluster
        refuses any envelope whose epoch trails the epoch in force —
        ZooKeeper-style fencing tokens checked by the storage fabric —
        so a deposed primary's late or retried traffic can never mutate
        a follower, even one that has not yet heard of the new epoch.
        """
        replica = next(
            (r for r in self.replicas if r.name == message.dst), None
        )
        if replica is None:
            raise ReplicaUnavailable(
                f"no replica named {message.dst!r}", replica=message.dst
            )
        if self._fenced and message.epoch < self.commit_epoch:
            raise FencedError(
                f"{message.kind!r} from {message.src!r} carries stale epoch "
                f"{message.epoch} < {self.commit_epoch}",
                epoch=message.epoch,
                current=self.commit_epoch,
            )
        replica.require_alive()
        if self._fenced:
            replica.fence_epoch = max(replica.fence_epoch, message.epoch)
        if message.kind == MSG_WAL_SHIP:
            appended = replica.durable.apply_shipped(
                message.payload, apply_now=self.apply_mode == APPLY_EAGER
            )
            if appended:
                replica.log_epoch = max(replica.log_epoch, message.epoch)
                if message.epoch < self.commit_epoch:
                    # Only reachable unfenced: the ablation's smoking gun.
                    self.fabric.stats.stale_epoch_applies += 1
            return appended
        if message.kind == MSG_LEASE_RENEW:
            return replica.durable_lsn
        if message.kind == MSG_RESYNC:
            return True
        raise InvalidConfiguration(
            f"unknown message kind {message.kind!r}"
        )

    def _electable(self, candidates: List[Replica]) -> List[Replica]:
        """Raft-style eligibility: a majority must *vote* for the winner.

        Reachability alone is not enough — under an asymmetric cut the
        most caught-up follower can be unreachable while a stale one
        still sees a quorum, and promoting the stale one would truncate
        quorum-acknowledged records at the next resync.  So each live
        peer grants its vote only to a candidate whose log is at least
        as up to date as its own, compared by ``(log_epoch,
        durable_lsn)``: any elected log then covers every record some
        majority acknowledged, because the ack majority and the vote
        majority always intersect.  The epoch leads the comparison so a
        deposed primary's compensation-inflated LSN cannot outrank (or
        veto) the current epoch's logs.
        """
        live = self.live_replicas
        needed = len(live) // 2 + 1
        eligible = []
        for candidate in candidates:
            ticket = (candidate.log_epoch, candidate.durable_lsn)
            votes = 0
            for peer in live:
                if peer is candidate:
                    votes += 1
                elif (
                    not self.fabric.blocked(candidate.name, peer.name)
                    and (peer.log_epoch, peer.durable_lsn) <= ticket
                ):
                    votes += 1
            if votes >= needed:
                eligible.append(candidate)
        return eligible

    def _ensure_lease(self, primary: Replica) -> None:
        """Renew (or enforce the lapse of) the primary's fenced lease.

        Renewal is a quorum heartbeat over the fabric.  Failing to
        renew is tolerated while the old grant lives; once the TTL runs
        out with no quorum in sight the primary **demotes itself to a
        read-only follower** and raises :class:`FencedError` — the
        self-fencing half of the split-brain guarantee (the other half
        is the election's wait for this very lease to lapse).
        """
        controller = self.failover
        now = self.fabric.now
        if controller.lease_valid(primary.name, now) and (
            controller.lease_expires - now > controller.lease_ttl // 2
        ):
            return
        others = [r for r in self.replicas if r is not primary and r.alive]
        grants = 1  # the primary's own vote
        for peer in others:
            try:
                self.fabric.send(
                    primary.name,
                    peer.name,
                    MSG_LEASE_RENEW,
                    epoch=self.commit_epoch,
                    key=("lease", primary.name, peer.name, self.fabric.now),
                )
            except (PartitionedError, ReplicaUnavailable, TransientIOError):
                continue
            grants += 1
        if grants >= (len(others) + 1) // 2 + 1:
            controller.grant_lease(primary.name, self.fabric.now)
            self.stats.lease_renewals += 1
            return
        if controller.lease_valid(primary.name, self.fabric.now):
            # Renewal failed but the old grant has not lapsed yet; the
            # primary may keep serving until the TTL runs out.
            return
        primary.role = ROLE_FOLLOWER
        self.stats.lease_expirations += 1
        self.fabric.stats.lease_expirations += 1
        raise FencedError(
            f"primary {primary.name!r} could not renew its lease "
            f"(expired t={controller.lease_expires}, now t={self.fabric.now});"
            " demoted to read-only",
            epoch=self.commit_epoch,
            current=self.commit_epoch,
        )

    def _announce_epoch(self, successor: Replica) -> None:
        """Best-effort fence of every reachable follower at promotion.

        Marks the new epoch on whoever can hear it so fenced reads know
        which replicas rejoined; followers beyond a partition stay at
        their stale epoch and are fenced out of serving until a ship at
        the current epoch reaches them.
        """
        successor.fence_epoch = self.commit_epoch
        for follower in self.live_replicas:
            if follower is successor:
                continue
            try:
                self.fabric.send(
                    successor.name,
                    follower.name,
                    MSG_LEASE_RENEW,
                    epoch=self.commit_epoch,
                    key=("fence", successor.name, follower.name,
                         self.commit_epoch),
                )
            except (PartitionedError, ReplicaUnavailable, FencedError,
                    TransientIOError):
                continue

    # ------------------------------------------------------------------
    # Primary election / degradation ladder
    # ------------------------------------------------------------------
    def _require_primary(self) -> Replica:
        primary = self.replicas[self.primary_index]
        if primary.alive and primary.is_primary:
            return primary
        return self._elect()

    def _elect(self) -> Replica:
        """Promote the best surviving follower (or rebuild from disk).

        Fenced clusters add two safeguards: only a follower that can
        reach a quorum of live replicas may stand (promoting into the
        minority side of a partition is exactly the split-brain the
        leases exist to prevent), and the deposed holder's lease must
        lapse before the epoch turns — two valid leaseholders never
        coexist.
        """
        while True:
            candidates = [r for r in self.replicas if r.alive and not r.is_primary]
            if self._fenced and candidates:
                eligible = self._electable(candidates)
                if not eligible:
                    raise ReplicaUnavailable(
                        "no follower can win an election quorum; refusing "
                        "to promote into the minority side of a partition"
                    )
                candidates = eligible
            try:
                successor = self.failover.pick_successor(candidates)
            except FailoverError:
                return self._rebuild_from_durable()
            if self._fenced:
                self.fabric.advance_to(self.failover.lease_expires)
            try:
                replayed = self.failover.promote(successor)
            except SimulatedCrash:
                successor.mark_dead()
                self.stats.follower_deaths += 1
                continue
            except TransientIOError as exc:
                if self.failover.note_fault(successor.name, exc):
                    successor.mark_dead()
                    self.stats.follower_deaths += 1
                continue
            for replica in self.replicas:
                if replica is not successor and replica.is_primary:
                    replica.role = ROLE_FOLLOWER
            self.primary_index = self.replicas.index(successor)
            self.stats.promotions += 1
            self.stats.failover_records_replayed += replayed
            self.commit_epoch += 1
            self._epoch_base_lsn = successor.durable_lsn
            successor.log_epoch = self.commit_epoch
            if self._fenced:
                self.failover.grant_lease(successor.name, self.fabric.now)
                self._announce_epoch(successor)
            return successor

    def _on_primary_death(self, primary: Replica) -> Replica:
        primary.mark_dead()
        self.stats.primary_crashes += 1
        return self._elect()

    def _rebuild_from_durable(self) -> Replica:
        """Last rung: every machine is dead; recover the best disk.

        Disks survive their machines.  The disk with the highest
        durable LSN is mounted with a fresh context and taken through
        the full recovery sequence (snapshot → replay → audit →
        rebuild fallback); the result becomes the primary of what is
        now a one-machine set, resuming the cluster's LSN sequence.
        """
        candidates = sorted(
            self.replicas, key=lambda r: (-r.durable_lsn, r.name)
        )
        last_error: Optional[Exception] = None
        for casualty in candidates:
            try:
                durable = DurableTopKIndex.recover(
                    casualty.disk,
                    self.restore_fn,
                    self.build_fn,
                    B=self.B,
                    M=self.M,
                    commit_interval=self.commit_interval,
                )
            except (RecoveryError, SnapshotIntegrityError) as exc:
                last_error = exc
                continue
            reborn = Replica.adopt(casualty.name, durable)
            reborn.role = ROLE_PRIMARY
            slot = self.replicas.index(casualty)
            self.replicas[slot] = reborn
            self.primary_index = slot
            self.stats.rebuilds += 1
            self.commit_epoch += 1
            self._epoch_base_lsn = reborn.durable_lsn
            reborn.fence_epoch = self.commit_epoch
            reborn.log_epoch = self.commit_epoch
            if self._fenced:
                self.fabric.advance_to(self.failover.lease_expires)
                self.failover.grant_lease(reborn.name, self.fabric.now)
            self.failover.note_success(reborn.name)
            return reborn
        raise ReplicaUnavailable(
            "every replica is down and no durable record is recoverable"
        ) from last_error

    def replace_replica(self, old: Replica, new: Replica) -> None:
        """Swap a rebuilt machine into ``old``'s slot (same role).

        Failure-detector hygiene rides along: fault streaks for names
        no longer in the cluster are evicted, and the newcomer starts
        with a clean streak — the machine behind the name is new, and
        its predecessor's sins must not condemn it.
        """
        slot = self.replicas.index(old)
        new.role = old.role
        self.replicas[slot] = new
        if new.name != old.name:
            self.fabric.register(new.name, self._net_receive)
        self.failover.evict({r.name for r in self.replicas})
        self.failover.note_success(new.name)

    # ------------------------------------------------------------------
    # Operator levers (pulled by the repro.ops control plane)
    # ------------------------------------------------------------------
    def force_failover(self) -> Replica:
        """Depose the current primary *without* killing it.

        The same election machinery that runs on a primary crash —
        highest durable LSN among live followers wins, the successor
        replays its committed-but-unapplied tail, the commit epoch is
        bumped — but the old primary survives as a follower and keeps
        its data.  This is the gentle lever for a degraded-but-alive
        primary (a fault storm, creeping latency): traffic moves off the
        sick machine while it stays in rotation for resync or a later
        reboot.  Raises :class:`FailoverError` when no live follower
        exists to take over.
        """
        old = self.replicas[self.primary_index]
        while True:
            candidates = [
                r for r in self.replicas if r.alive and not r.is_primary
            ]
            if not candidates:
                raise FailoverError(
                    "force_failover needs a live follower to promote"
                )
            if self._fenced:
                candidates = self._electable(candidates)
                if not candidates:
                    raise FailoverError(
                        "force_failover: no follower can win an election "
                        "quorum; refusing to promote into the minority "
                        "side of a partition"
                    )
            successor = self.failover.pick_successor(candidates)
            if self._fenced:
                self.fabric.advance_to(self.failover.lease_expires)
            try:
                replayed = self.failover.promote(successor)
            except SimulatedCrash:
                successor.mark_dead()
                self.stats.follower_deaths += 1
                continue
            except TransientIOError as exc:
                if self.failover.note_fault(successor.name, exc):
                    successor.mark_dead()
                    self.stats.follower_deaths += 1
                continue
            for replica in self.replicas:
                if replica is not successor and replica.is_primary:
                    replica.role = ROLE_FOLLOWER
            self.primary_index = self.replicas.index(successor)
            self.stats.promotions += 1
            self.stats.forced_failovers += 1
            self.stats.failover_records_replayed += replayed
            self.commit_epoch += 1
            self._epoch_base_lsn = successor.durable_lsn
            successor.log_epoch = self.commit_epoch
            if self._fenced:
                self.failover.grant_lease(successor.name, self.fabric.now)
                self._announce_epoch(successor)
            if old.alive:
                # The deposed primary's streak starts clean under its
                # new, lighter follower duty.
                self.failover.note_success(old.name)
            return successor

    def recover_replica(self, name: str) -> Replica:
        """Reboot one machine from its own disk (snapshot + WAL tail).

        A dead machine is simply mounted fresh; a live one is
        power-cycled first (its primary role, if any, fails over before
        the reboot).  Adoption attaches a fresh, **disarmed** fault
        plan — a reboot is how an operator clears a machine whose
        environment keeps injecting faults, where an anti-entropy
        repair would inherit the sick machine's plan.  The reborn
        follower is aligned to the primary before returning, so it
        rejoins at zero lag.
        """
        try:
            casualty = next(r for r in self.replicas if r.name == name)
        except StopIteration:
            raise InvalidConfiguration(f"no replica named {name!r}") from None
        if casualty.alive:
            if casualty.is_primary:
                self._on_primary_death(casualty)
            else:
                casualty.mark_dead()
                self.stats.follower_deaths += 1
            # A primary death above may already have rebuilt this very
            # slot (last-disk-standing election); if so, we are done.
            casualty = next(r for r in self.replicas if r.name == name)
            if casualty.alive:
                self.stats.replica_reboots += 1
                return casualty
        durable = DurableTopKIndex.recover(
            casualty.disk,
            self.restore_fn,
            self.build_fn,
            B=self.B,
            M=self.M,
            commit_interval=self.commit_interval,
        )
        reborn = Replica.adopt(name, durable)
        reborn.role = ROLE_FOLLOWER
        self.replicas[self.replicas.index(casualty)] = reborn
        self.stats.replica_reboots += 1
        self.failover.note_success(name)
        self.align()
        return reborn

    # ------------------------------------------------------------------
    # Writes: primary-first, ship-per-commit, idempotent retry
    # ------------------------------------------------------------------
    def insert(self, element: Element) -> None:
        self.stats.inserts += 1
        self._update(OP_INSERT, element)

    def delete(self, element: Element) -> None:
        self.stats.deletes += 1
        self._update(OP_DELETE, element)

    def _update(self, op: str, element: Element) -> None:
        retrying = False
        fence_retries = 0
        while True:
            primary = self._require_primary()
            try:
                if self._fenced:
                    # Lease first: a primary that cannot prove it still
                    # holds the lease must not even log the record.
                    self._ensure_lease(primary)
                if retrying and self._already_applied(primary, op, element):
                    # The record crossed before the crash (it is on the
                    # freshest follower, which is now primary) — the op
                    # is done; just make sure it propagates.
                    self._ship_quorum(primary)
                    return
                if op == OP_INSERT:
                    primary.durable.insert(element)
                else:
                    primary.durable.delete(element)
                self.failover.note_success(primary.name)
                self._ship_quorum(primary, op=op, element=element)
                return
            except FencedError:
                # The lease lapsed and the primary self-demoted; a new
                # election (possible only where a quorum is reachable)
                # retries the op under the next epoch.  Bounded: each
                # retry consumes a fresh election, and elections cannot
                # outnumber the machines.
                fence_retries += 1
                if fence_retries > len(self.replicas) + 2:
                    raise
                retrying = True
            except SimulatedCrash:
                self._on_primary_death(primary)
                retrying = True
            except TransientIOError as exc:
                if self.failover.note_fault(primary.name, exc):
                    self._on_primary_death(primary)
                retrying = True

    @staticmethod
    def _already_applied(replica: Replica, op: str, element: Element) -> bool:
        inner = replica.durable.inner
        if not hasattr(type(inner), "__contains__"):
            return False
        present = element in inner
        return present if op == OP_INSERT else not present

    def _ship_quorum(
        self,
        primary: Replica,
        op: Optional[str] = None,
        element: Optional[Element] = None,
    ) -> None:
        """Ship, then enforce the quorum-ack contract of a fenced write.

        Unfenced clusters keep the pre-network contract: best-effort
        shipping, success as soon as the primary logged the record.  A
        fenced cluster only acknowledges a write once a majority holds
        it durably; when shipping cannot reach a majority (a partition
        stranding the primary with a minority), the write is
        **compensated** — the inverse op is logged and shipped so the
        minority side never serves a value the client was told failed —
        and the client sees a *definite* failure.  Only when the
        compensation itself cannot be confirmed does the client get an
        indeterminate verdict (``PartitionedError(indeterminate=True)``,
        the history checker's ``info``).
        """
        acked, needed = self._ship(primary)
        if not self._fenced or acked >= needed:
            return
        self.stats.quorum_ack_failures += 1
        if op is None or element is None:
            # Nothing to unwind (idempotent re-ship of an old record):
            # the caller's op may or may not be majority-durable.
            raise PartitionedError(
                "write could not reach a majority", indeterminate=True
            )
        inverse = OP_DELETE if op == OP_INSERT else OP_INSERT
        try:
            if inverse == OP_INSERT:
                primary.durable.insert(element)
            else:
                primary.durable.delete(element)
        except SimulatedCrash:
            primary.mark_dead()
            self.stats.primary_crashes += 1
            raise PartitionedError(
                "write could not reach a majority and the compensating "
                "record crashed the primary",
                indeterminate=True,
            ) from None
        except TransientIOError:
            raise PartitionedError(
                "write could not reach a majority and the compensating "
                "record could not be logged",
                indeterminate=True,
            ) from None
        self.stats.write_compensations += 1
        acked2, _ = self._ship(primary)
        if acked2 >= acked:
            # The compensation reached everyone the original did: no
            # replica anywhere holds the op un-reverted, so the failure
            # is definite.
            raise PartitionedError(
                "write could not reach a majority (compensated)",
                indeterminate=False,
            )
        raise PartitionedError(
            "write could not reach a majority; compensation reached "
            "fewer replicas than the original",
            indeterminate=True,
        )

    def _ship(self, primary: Replica) -> tuple:
        """Ship the primary's committed tail to every live follower.

        Returns ``(acked, needed)`` — machines (primary included) that
        durably hold the tail vs. the majority threshold.  A crash
        while *reading* the primary's log is the primary's death and
        propagates to the caller; a fault on a *follower* only costs
        that follower (dead or skipped until the next ship — its
        durable LSN watermark makes re-shipping resume exactly where it
        left off).  A :class:`PartitionedError` is a property of the
        *link*, not the machine: it never feeds the failure detector's
        streak and never condemns the follower.
        """
        # Complete any group commit whose flush faulted transiently.
        primary.durable.commit()
        committed = primary.durable.committed_lsn
        acked = 1  # the primary's own log
        for follower in list(self.replicas):
            if follower is primary or not follower.alive:
                continue
            if (
                self._fenced
                and follower.log_epoch < self.commit_epoch
                and follower.durable_lsn > self._epoch_base_lsn
            ):
                # The follower carries records from a dead epoch past
                # the fork point (a deposed primary rejoining): its
                # tail would splice by LSN but diverge by content.
                # Full snapshot resync, checked *before* the watermark
                # skip — such a follower can look "caught up".
                self.stats.resyncs += 1
                try:
                    self.scrubber.repair(self, follower, primary)
                except PartitionedError:
                    self.stats.ship_failures += 1
                    self.stats.ship_timeouts += 1
                    continue
                except (RecoveryError, SnapshotIntegrityError):
                    self.stats.ship_failures += 1
                    continue
                acked += 1
                continue
            if follower.durable_lsn >= committed:
                acked += 1
                continue
            groups, _ = read_committed(
                primary.store,
                primary.durable.wal.head,
                after_lsn=follower.durable_lsn,
            )
            try:
                appended = self._ship_groups(primary, follower, groups)
            except PartitionedError:
                # Link trouble, not machine trouble: no streak, no
                # death.  The watermark resumes the ship after heal.
                self.stats.ship_failures += 1
                self.stats.ship_timeouts += 1
                continue
            except ReplicaUnavailable:
                continue
            except SimulatedCrash:
                follower.mark_dead()
                self.stats.follower_deaths += 1
                continue
            except TransientIOError as exc:
                self.stats.ship_failures += 1
                if self.failover.note_fault(follower.name, exc):
                    follower.mark_dead()
                    self.stats.follower_deaths += 1
                continue
            except WALShippingGap:
                # The tail no longer splices (the primary checkpointed
                # past this follower's watermark): full snapshot resync.
                self.stats.resyncs += 1
                try:
                    self.scrubber.repair(self, follower, primary)
                except PartitionedError:
                    self.stats.ship_failures += 1
                    self.stats.ship_timeouts += 1
                    continue
                acked += 1
                continue
            if appended:
                self.stats.groups_shipped += len(groups)
                self.stats.records_shipped += appended
                self.stats.acks += 1
            self.failover.note_success(follower.name)
            acked += 1
        needed = len(self.live_replicas) // 2 + 1
        return acked, needed

    def _ship_groups(self, primary: Replica, follower: Replica, groups) -> int:
        """One WAL-ship envelope over the fabric, idempotently retried.

        The idempotency key is derived from the *content* of the ship
        (epoch + both watermarks), so a retry after an indeterminate
        transport verdict reuses the same key and a duplicate delivery
        is absorbed by the receiver's dedupe cache rather than applied
        twice.
        """
        key = (
            "ship",
            primary.name,
            follower.name,
            self.commit_epoch,
            follower.durable_lsn,
            primary.durable.committed_lsn,
        )
        attempt = 0
        while True:
            try:
                return self.fabric.send(
                    primary.name,
                    follower.name,
                    MSG_WAL_SHIP,
                    groups,
                    epoch=self.commit_epoch,
                    key=key,
                )
            except PartitionedError as exc:
                if exc.indeterminate and attempt < self._ship_retries:
                    # A transport timeout: the ship *may* have landed.
                    # Retrying with the same key is safe — if it did,
                    # the dedupe cache answers for it.
                    attempt += 1
                    self.stats.ship_retries += 1
                    continue
                raise

    # ------------------------------------------------------------------
    # Alignment barrier (scrub / checkpoint substrate)
    # ------------------------------------------------------------------
    def align(self) -> None:
        """Commit + ship + apply everywhere.

        After this, every live replica's applied LSN equals the
        primary's — honest replication lag is zero, so any remaining
        state difference is genuine divergence (the scrubber's
        precondition).
        """
        while True:
            primary = self._require_primary()
            try:
                self._ship(primary)
                break
            except SimulatedCrash:
                self._on_primary_death(primary)
            except TransientIOError as exc:
                if self.failover.note_fault(primary.name, exc):
                    self._on_primary_death(primary)
        for replica in self.live_replicas:
            try:
                replica.durable.replay_unapplied()
            except SimulatedCrash:
                if replica.is_primary:
                    self._on_primary_death(replica)
                else:
                    replica.mark_dead()
                    self.stats.follower_deaths += 1
            except TransientIOError as exc:
                if self.failover.note_fault(replica.name, exc):
                    replica.mark_dead()
                    self.stats.follower_deaths += 1

    def checkpoint(self) -> None:
        """Checkpoint every live machine (primary first, then followers)."""
        self.align()
        for replica in [self.primary] + [
            r for r in self.live_replicas if not r.is_primary
        ]:
            if not replica.alive:
                continue
            try:
                replica.durable.checkpoint()
            except SimulatedCrash:
                if replica.is_primary:
                    self._on_primary_death(replica)
                else:
                    replica.mark_dead()
                    self.stats.follower_deaths += 1
            except TransientIOError as exc:
                if self.failover.note_fault(replica.name, exc):
                    replica.mark_dead()
                    self.stats.follower_deaths += 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read_stamp(self) -> tuple:
        """``(commit_epoch, primary applied LSN)`` — the cache version.

        Cached answers stamped with an older epoch are unconditionally
        invalid (a failover happened; the LSN sequence may have stepped
        backwards); within an epoch the LSN distance bounds staleness.
        """
        # Electing first matters: a pending promotion bumps the epoch,
        # and the stamp must carry the post-promotion value.
        primary = self._require_primary()
        return (self.commit_epoch, primary.applied_lsn)

    def serving_replicas(self, max_staleness: Optional[int] = None) -> List[Replica]:
        """The machines eligible to serve reads at the staleness bound.

        The primary plus every live follower whose applied LSN is (or
        can be brought, via its own durable log) within ``staleness``
        of the primary's.  Catch-up replay happens *here*, on the
        coordinator, so the returned replicas can be queried read-only
        from worker threads without touching shared cluster state.
        Followers that fault during catch-up are handled with the usual
        death/streak accounting; durably-short followers are skipped
        and counted as stale fallbacks.
        """
        staleness = self.max_staleness if max_staleness is None else max_staleness
        primary = self._require_primary()
        required = primary.applied_lsn - staleness
        servers = [primary]
        for follower in sorted(
            (r for r in self.live_replicas if not r.is_primary),
            key=lambda r: r.name,
        ):
            if (
                self._fenced
                and follower.log_epoch < self.commit_epoch
                and follower.durable_lsn > self._epoch_base_lsn
            ):
                # A dead-epoch tail past the fork point: divergent,
                # cannot serve (same rule as _serve).  Note this is a
                # *log* test — a lease heartbeat heard over a half-open
                # link must not launder a divergent replica back in.
                self.stats.stale_fallbacks += 1
                continue
            try:
                if follower.applied_lsn < required:
                    follower.durable.replay_unapplied()
            except SimulatedCrash:
                follower.mark_dead()
                self.stats.follower_deaths += 1
                continue
            except TransientIOError as exc:
                if self.failover.note_fault(follower.name, exc):
                    follower.mark_dead()
                    self.stats.follower_deaths += 1
                continue
            if follower.applied_lsn < required:
                self.stats.stale_fallbacks += 1
                continue
            servers.append(follower)
        return servers

    def query(
        self,
        predicate: Predicate,
        k: int,
        mode: Optional[str] = None,
        max_staleness: Optional[int] = None,
        **kwargs,
    ) -> List[Element]:
        mode = self.read_mode if mode is None else mode
        if mode not in _READ_MODES:
            raise InvalidConfiguration(f"unknown read mode {mode!r}")
        staleness = (
            self.max_staleness if max_staleness is None else max_staleness
        )
        if mode == READ_PRIMARY:
            return self._query_primary(predicate, k, kwargs)
        if mode == READ_HEDGED:
            return self._query_hedged(predicate, k, staleness, kwargs)
        return self._query_quorum(predicate, k, staleness, kwargs)

    def _query_primary(self, predicate: Predicate, k: int, kwargs: dict) -> List[Element]:
        fence_retries = 0
        while True:
            primary = self._require_primary()
            try:
                if self._fenced:
                    # Linearizable reads need the same lease proof as
                    # writes: a deposed primary stranded in a minority
                    # must not serve a read that misses newer-epoch
                    # writes on the majority side.
                    self._ensure_lease(primary)
                return primary.durable.query(predicate, k, **kwargs)
            except FencedError:
                fence_retries += 1
                if fence_retries > len(self.replicas) + 2:
                    raise
            except SimulatedCrash:
                self._on_primary_death(primary)

    def _serve(
        self,
        replica: Replica,
        required_lsn: int,
        predicate: Predicate,
        k: int,
        kwargs: dict,
    ) -> List[Element]:
        """One replica's answer, no staler than ``required_lsn``.

        A lazily-applying replica first catches up from its own durable
        log; if it is *durably* short of the bound (ships it never
        acked), it cannot serve and the read falls elsewhere.
        """
        replica.require_alive()
        if (
            self._fenced
            and not replica.is_primary
            and replica.log_epoch < self.commit_epoch
            and replica.durable_lsn > self._epoch_base_lsn
        ):
            # A dead-epoch tail past the fork point (a deposed primary
            # rejoining): its applied LSN can look *fresher* than the
            # truth while its content is wrong.  It cannot serve until
            # resynced — and merely having heard the new epoch over a
            # half-open link does not clear it.
            raise _StaleRead(
                f"replica {replica.name!r} log epoch "
                f"{replica.log_epoch} < commit epoch {self.commit_epoch} "
                "with a divergent tail",
                replica=replica.name,
            )
        if replica.applied_lsn < required_lsn:
            replica.durable.replay_unapplied()
        if replica.applied_lsn < required_lsn:
            raise _StaleRead(
                f"replica {replica.name!r} applied lsn {replica.applied_lsn} "
                f"< required {required_lsn}",
                replica=replica.name,
            )
        return replica.durable.query(predicate, k, **kwargs)

    def _query_quorum(
        self, predicate: Predicate, k: int, staleness: int, kwargs: dict
    ) -> List[Element]:
        """Majority read: over half the live replicas must agree to serve.

        Answers are collected in deterministic order (primary, then
        followers by name); the freshest answer wins.  Any disagreement
        between collected answers is counted for the scrubber.  Fewer
        live answers than a majority is a *degraded* read — still
        served (from what survives), never silently.
        """
        self.stats.quorum_reads += 1
        primary = self._require_primary()
        required = primary.applied_lsn - staleness
        order = [primary] + sorted(
            (r for r in self.live_replicas if not r.is_primary),
            key=lambda r: r.name,
        )
        needed = len(self.live_replicas) // 2 + 1
        answers: List[tuple] = []
        for replica in order:
            try:
                answer = self._serve(replica, required, predicate, k, kwargs)
            except _StaleRead:
                self.stats.stale_fallbacks += 1
                continue
            except SimulatedCrash:
                if replica.is_primary:
                    primary = self._on_primary_death(replica)
                else:
                    replica.mark_dead()
                    self.stats.follower_deaths += 1
                continue
            except TransientIOError as exc:
                if self.failover.note_fault(replica.name, exc):
                    replica.mark_dead()
                    self.stats.follower_deaths += 1
                continue
            answers.append(
                (replica.applied_lsn, replica.is_primary, replica.name, answer)
            )
            if len(answers) >= needed:
                break
        if not answers:
            self.stats.degraded_reads += 1
            return self._query_primary(predicate, k, kwargs)
        if len(answers) < needed:
            self.stats.degraded_reads += 1
        # Freshest answer wins; on equal freshness the primary's answer
        # is authoritative (a divergent follower must not out-vote it).
        freshest = max(answers, key=lambda entry: (entry[0], entry[1], entry[2]))
        if any(entry[3] != freshest[3] for entry in answers):
            self.stats.quorum_mismatches += 1
        return freshest[3]

    def _query_hedged(
        self, predicate: Predicate, k: int, staleness: int, kwargs: dict
    ) -> List[Element]:
        """Follower-first read with the primary as the hedge.

        Followers take reads round-robin; a follower that is stale,
        faulty, or dead loses the race and the primary's answer wins
        (counted as a hedge win).
        """
        self.stats.hedged_reads += 1
        primary = self._require_primary()
        required = primary.applied_lsn - staleness
        followers = sorted(
            (r for r in self.live_replicas if not r.is_primary),
            key=lambda r: r.name,
        )
        if followers:
            preferred = followers[self._hedge_cursor % len(followers)]
            self._hedge_cursor += 1
            try:
                return self._serve(preferred, required, predicate, k, kwargs)
            except _StaleRead:
                self.stats.stale_fallbacks += 1
            except SimulatedCrash:
                preferred.mark_dead()
                self.stats.follower_deaths += 1
            except TransientIOError as exc:
                if self.failover.note_fault(preferred.name, exc):
                    preferred.mark_dead()
                    self.stats.follower_deaths += 1
        answer = self._query_primary(predicate, k, kwargs)
        self.stats.hedge_wins += 1
        return answer

    # ------------------------------------------------------------------
    # Anti-entropy
    # ------------------------------------------------------------------
    def scrub(self, repair: bool = True) -> ScrubReport:
        """One anti-entropy pass (see :mod:`repro.replication.antientropy`)."""
        self.stats.scrubs += 1
        report = self.scrubber.scrub(self, repair=repair)
        self.stats.scrub_repairs += len(report.repaired)
        self.stats.records_resynced += report.records_resynced
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        roles = ", ".join(
            f"{r.name}:{r.role[0]}{'' if r.alive else '(dead)'}"
            for r in self.replicas
        )
        return f"ReplicaSet({roles}, committed={self.primary.durable_lsn})"


def replicated_index(
    elements: Sequence[Element],
    prioritized_factory,
    max_factory,
    num_replicas: int = 3,
    B: int = 2,
    store_B: int = 16,
    seed: int = 0,
    **cluster_kwargs,
) -> ReplicaSet:
    """A :class:`ReplicaSet` over canonical Theorem 2 replicas.

    The build function pins the seed, so every replica constructs an
    identical index — the determinism replication correctness (and the
    scrubber's digest comparison) requires.  ``B`` is the Theorem 2
    block size; ``store_B`` the durable store's.
    """

    def build_fn(elems: List[Element]) -> ExpectedTopKIndex:
        return ExpectedTopKIndex(
            elems, prioritized_factory, max_factory, B=B, seed=seed
        )

    def restore_fn(state: dict) -> ExpectedTopKIndex:
        return ExpectedTopKIndex.restore(state, prioritized_factory, max_factory)

    return ReplicaSet(
        elements, build_fn, restore_fn, num_replicas=num_replicas, B=store_B,
        **cluster_kwargs,
    )


__all__ = [
    "ReplicaSet",
    "ReplicationStats",
    "replicated_index",
    "READ_PRIMARY",
    "READ_QUORUM",
    "READ_HEDGED",
    "APPLY_LAZY",
    "APPLY_EAGER",
]
