"""A fully controlled toy problem for exercising the reductions.

Elements are integers on a line; a predicate is a closed range.  The
indexes are deliberately simple (sorted scans) so reduction tests can
reason exactly about behaviour, and instrumented variants inject
failures into the reductions' probabilistic machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.interfaces import (
    DynamicMaxIndex,
    DynamicPrioritizedIndex,
    OpCounter,
    PrioritizedResult,
)
from repro.core.columnar import register_predicate_compiler
from repro.core.problem import Element, Predicate


@dataclass(frozen=True)
class RangePredicate(Predicate):
    """Matches integers in ``[lo, hi]``."""

    lo: float
    hi: float

    def matches(self, obj) -> bool:
        return self.lo <= obj <= self.hi


@register_predicate_compiler(RangePredicate)
def _compile_toy_range(predicate: RangePredicate):
    lo, hi = predicate.lo, predicate.hi
    return lambda obj: lo <= obj <= hi


class ToyPrioritized(DynamicPrioritizedIndex):
    """Contract-faithful prioritized index backed by a weight-sorted list."""

    def __init__(self, elements: Sequence[Element]) -> None:
        self.ops = OpCounter()
        self._elements: List[Element] = sorted(elements, key=lambda e: -e.weight)
        self.query_count = 0

    @property
    def n(self) -> int:
        return len(self._elements)

    def query(self, predicate, tau, limit=None) -> PrioritizedResult:
        self.query_count += 1
        out: List[Element] = []
        for element in self._elements:
            if element.weight < tau:
                break
            self.ops.scanned += 1
            if predicate.matches(element.obj):
                out.append(element)
                if limit is not None and len(out) > limit:
                    return PrioritizedResult(out, truncated=True)
        return PrioritizedResult(out, truncated=False)

    def insert(self, element: Element) -> None:
        self._elements.append(element)
        self._elements.sort(key=lambda e: -e.weight)

    def delete(self, element: Element) -> None:
        self._elements.remove(element)


class ToyMax(DynamicMaxIndex):
    """Contract-faithful max index (linear scan)."""

    def __init__(self, elements: Sequence[Element]) -> None:
        self.ops = OpCounter()
        self._elements: List[Element] = list(elements)
        self.query_count = 0

    @property
    def n(self) -> int:
        return len(self._elements)

    def query(self, predicate) -> Optional[Element]:
        self.query_count += 1
        best: Optional[Element] = None
        for element in self._elements:
            if predicate.matches(element.obj):
                if best is None or element.weight > best.weight:
                    best = element
        return best

    def insert(self, element: Element) -> None:
        self._elements.append(element)

    def delete(self, element: Element) -> None:
        self._elements.remove(element)


class BrokenMax(ToyMax):
    """A max structure that never finds anything — failure injection.

    Theorem 2's rounds must all fail their rank windows and escalate to
    the terminal full scan while still returning exact answers.
    """

    def query(self, predicate) -> Optional[Element]:
        self.query_count += 1
        return None


class LyingMax(ToyMax):
    """A max structure returning an arbitrary (wrong-rank) element.

    Simulates a sample whose maximum sits far outside the ``(K, 4K]``
    window; the reduction must detect the bad fetch and keep escalating.
    """

    def query(self, predicate) -> Optional[Element]:
        self.query_count += 1
        matching = [e for e in self._elements if predicate.matches(e.obj)]
        if not matching:
            return None
        return min(matching, key=lambda e: e.weight)  # worst possible probe


def make_toy_elements(n: int, seed: int = 0, weight_offset: float = 0.0) -> List[Element]:
    """``n`` toy elements with distinct weights in ``[offset, offset+10n)``.

    ``weight_offset`` lets update tests draw a second batch whose
    weights cannot collide with an existing index's (the reductions
    enforce the paper's distinct-weights precondition on insert).
    """
    import random

    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    positions = rng.sample(range(10 * n), n)
    return [
        Element(positions[i], float(weights[i]) + weight_offset) for i in range(n)
    ]
