"""The self-healing loop: collect → detect → localize → mitigate → verify.

:class:`Operator` is the control plane's outer loop.  Each
:meth:`~Operator.tick` is one simulated control interval:

1. **collect** a :class:`TelemetrySample` from the live stack;
2. **detect** anomalies with the streaming rule engine;
3. **localize** them into blamed scopes and fold each into its open
   :class:`Incident` (or open a new one);
4. **mitigate**: for every open incident whose cooldown has expired,
   ask the :class:`MitigationPlanner` for the current escalation rung's
   lever and fire it — unless the do-no-harm guard vetoes action;
5. **verify**: after a lever fires, replay a seeded subset of the probe
   workload through the stack and compare against the oracle — an
   incident may only close after verification passed *and* its scope
   stayed symptom-free for ``clear_ticks`` consecutive ticks.

Do-no-harm rules, in decreasing bluntness:

* never mitigate while a shard-map topology change is in flux — the
  sharding layer's own latch already serialises movers, and an operator
  firing reboots into a half-installed map could strand buckets; the
  action is recorded as deferred, not skipped silently;
* per-incident cooldown: after a lever fires, the incident waits
  ``cooldown_ticks`` before escalating, giving the mitigation time to
  show up in telemetry instead of machine-gunning the ladder;
* verification failure keeps the incident open (and escalating) — a
  lever that "worked" but left wrong answers is treated as no fix.

Everything is deterministic: verification probes are drawn by a seeded
RNG keyed on the incident and rung, and ticks are simulated counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.problem import top_k_of
from repro.core.validation import spot_check_topk
from repro.ops.detector import Anomaly, AnomalyDetector, DetectorPolicy
from repro.ops.incidents import (
    STATUS_EXHAUSTED,
    STATUS_MITIGATING,
    STATUS_RESOLVED,
    Incident,
    IncidentLog,
    MitigationRecord,
)
from repro.ops.localizer import Blame, FaultLocalizer
from repro.ops.mitigation import MitigationPlanner, PlannedAction
from repro.ops.telemetry import TelemetryCollector, TelemetrySample


@dataclass(frozen=True)
class OperatorPolicy:
    """Pacing and verification knobs of the self-healing loop."""

    cooldown_ticks: int = 2   # ticks between lever pulls per incident
    clear_ticks: int = 2      # symptom-free ticks before an incident closes
    verify_probes: int = 4    # seeded probes per post-mitigation check
    max_rungs: int = 4        # total lever pulls before giving up
    seed: int = 0


@dataclass
class TickReport:
    """What one control interval saw and did."""

    tick: int
    sample: TelemetrySample
    anomalies: List[Anomaly] = field(default_factory=list)
    blames: List[Blame] = field(default_factory=list)
    opened: List[Incident] = field(default_factory=list)
    actions: List[MitigationRecord] = field(default_factory=list)
    resolved: List[Incident] = field(default_factory=list)


class Operator:
    """The self-healing control loop (module docstring).

    Parameters
    ----------
    guard / cluster / sharded / engine:
        The live stack; a cluster or sharded backend reachable from the
        guard or engine is discovered automatically.
    probes:
        ``(predicate, k)`` pairs used for post-mitigation verification;
        a seeded subset is replayed per check.
    elements:
        A **live reference** to the indexed element list (the caller
        keeps it current across inserts/deletes); with it, verification
        compares against the exact :func:`top_k_of` oracle.  Without
        it, answers are spot-checked structurally.
    flash_sources / stores:
        Flash telemetry feeds (``label -> IOStats``) and compaction
        targets (``label -> DurableTopKIndex``) for the storage rules;
        a durable backend reachable from the guard or engine is
        discovered automatically as ``"storage"``.
    """

    def __init__(
        self,
        guard=None,
        cluster=None,
        sharded=None,
        engine=None,
        policy: Optional[OperatorPolicy] = None,
        detector_policy: Optional[DetectorPolicy] = None,
        probes: Sequence[Tuple[Any, int]] = (),
        elements: Optional[List] = None,
        latency_source=None,
        flash_sources=None,
        stores=None,
    ) -> None:
        self.policy = policy if policy is not None else OperatorPolicy()
        self.collector = TelemetryCollector(
            guard=guard, cluster=cluster, sharded=sharded, engine=engine,
            latency_source=latency_source, flash_sources=flash_sources,
        )
        self.guard = guard
        self.engine = engine
        self.cluster = self.collector.cluster
        self.sharded = self.collector.sharded
        self.detector = AnomalyDetector(detector_policy)
        self.localizer = FaultLocalizer(
            cluster=self.cluster, sharded=self.sharded
        )
        if stores is None:
            # Mirror the collector's discovery: a durable backend
            # reachable from the guard or engine is the "storage" the
            # flash detector rules blame (and compact_store fixes).
            from repro.durability.durable import DurableTopKIndex

            candidates = [
                guard.primary if guard is not None else None,
                engine.backend if engine is not None else None,
            ]
            durable = next(
                (b for b in candidates if isinstance(b, DurableTopKIndex)),
                None,
            )
            stores = {"storage": durable} if durable is not None else {}
        self.planner = MitigationPlanner(
            cluster=self.cluster, sharded=self.sharded, engine=engine,
            fabric=getattr(self.cluster, "fabric", None),
            stores=stores,
        )
        self.log = IncidentLog()
        self.probes = list(probes)
        self.elements = elements
        self.clock = 0
        self.deferrals = 0
        self.verifications = 0
        self.verification_failures = 0

    # ------------------------------------------------------------------
    @property
    def query_target(self):
        """Where verification probes are sent (guard-first)."""
        for target in (self.guard, self.cluster, self.sharded, self.engine):
            if target is not None:
                return target
        raise RuntimeError("operator has nothing to verify against")

    def verify(self, incident: Incident) -> bool:
        """Replay a seeded probe subset; exact (or structurally sound)?"""
        if not self.probes:
            return True
        rng = random.Random(
            (self.policy.seed, incident.id, incident.rung, self.clock).__repr__()
        )
        count = min(self.policy.verify_probes, len(self.probes))
        chosen = rng.sample(self.probes, count)
        target = self.query_target
        self.verifications += 1
        for predicate, k in chosen:
            answer = target.query(predicate, k)
            if self.elements is not None:
                if answer != top_k_of(self.elements, predicate, k):
                    self.verification_failures += 1
                    return False
            elif not spot_check_topk(answer, predicate, k):
                self.verification_failures += 1
                return False
        return True

    # ------------------------------------------------------------------
    def tick(self) -> TickReport:
        """One control interval: the five-step loop above."""
        self.clock += 1
        sample = self.collector.collect(self.clock)
        anomalies = self.detector.observe(sample)
        blames = self.localizer.localize(anomalies, sample)
        report = TickReport(
            tick=self.clock, sample=sample, anomalies=anomalies, blames=blames
        )

        flagged = set()
        for blame in blames:
            incident, opened = self.log.fold(
                blame.scope, blame.kind, list(blame.anomalies), self.clock
            )
            flagged.add(blame.scope)
            if opened:
                report.opened.append(incident)

        for incident in self.log.open:
            if incident.scope not in flagged:
                incident.quiet_ticks += 1
            self._drive(incident, sample, report)
        return report

    # ------------------------------------------------------------------
    def _drive(
        self, incident: Incident, sample: TelemetrySample, report: TickReport
    ) -> None:
        policy = self.policy
        quiet = incident.quiet_ticks >= policy.clear_ticks
        verified = any(m.verified for m in incident.mitigations)
        if incident.status == STATUS_MITIGATING and quiet and not verified:
            # Symptoms are gone but the post-mitigation check failed at
            # the time — re-verify against the now-quiet stack rather
            # than deadlocking between "quiet" and "unverified".
            last = incident.mitigations[-1]
            if last.fired:
                last.verified = self.verify(incident)
                verified = bool(last.verified)
        if incident.status == STATUS_MITIGATING and verified and quiet:
            incident.status = STATUS_RESOLVED
            incident.resolved_at = self.clock
            report.resolved.append(incident)
            return

        if incident.status == STATUS_MITIGATING:
            if incident.quiet_ticks > 0:
                return  # symptoms gone; wait out the clear window
            since = self.clock - (incident.last_action_tick or 0)
            if since < policy.cooldown_ticks:
                return  # give the last lever time to land
            incident.rung += 1  # symptoms persist past cooldown: escalate

        pulls = [m for m in incident.mitigations if m.lever != "(deferred)"]
        if len(pulls) >= policy.max_rungs:
            incident.status = STATUS_EXHAUSTED
            return

        # Do-no-harm: never move machines under a topology change.
        if sample.topology_in_flux:
            record = MitigationRecord(
                tick=self.clock,
                lever="(deferred)",
                target=incident.scope[1],
                outcome="deferred: shard topology change in flux",
            )
            incident.mitigations.append(record)
            report.actions.append(record)
            self.deferrals += 1
            return

        action = self.planner.plan(incident)
        if action is None:
            incident.status = STATUS_EXHAUSTED
            return
        record = self._fire(action)
        incident.mitigations.append(record)
        incident.last_action_tick = self.clock
        incident.status = STATUS_MITIGATING
        report.actions.append(record)
        if record.fired:
            record.verified = self.verify(incident)

    def _fire(self, action: PlannedAction) -> MitigationRecord:
        try:
            outcome = f"ok: {action.apply()}"
        except Exception as exc:  # a failed lever is data, not a crash
            outcome = f"failed: {type(exc).__name__}: {exc}"
        return MitigationRecord(
            tick=self.clock,
            lever=action.lever,
            target=action.target,
            outcome=outcome,
        )


__all__ = ["Operator", "OperatorPolicy", "TickReport"]
