"""Contract validation for user-supplied structures.

The reductions treat prioritized/max/counting structures as black
boxes, so a downstream user plugging in their own structure has three
contracts to honour (Section 1.1 / 3.2 semantics):

1. **prioritized**: ``query(q, tau)`` reports *exactly* the matches
   with weight ``>= tau``; with ``limit`` it may stop early but must
   then set ``truncated`` and have produced ``limit + 1`` elements'
   worth of evidence;
2. **max**: ``query(q)`` is the heaviest match or ``None``;
3. **counting**: ``count(q)`` lies in ``[|q(D)|, c |q(D)|]``.

:func:`validate_prioritized` / :func:`validate_max` /
:func:`validate_counting` check these against brute force on random
workloads and return a :class:`ValidationReport`; the reductions'
guarantees then apply verbatim.  ``repro``'s own structures pass these
checks in the test suite — the same gate a user's structure should
clear before being trusted inside a reduction.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.interfaces import CountingIndex, MaxIndex, PrioritizedIndex
from repro.core.problem import Element, Predicate
from repro.resilience.errors import ValidationFailure


@dataclass
class ValidationReport:
    """Outcome of a contract validation run."""

    structure: str
    checks: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def record(self, condition: bool, message: str) -> None:
        self.checks += 1
        if not condition:
            self.failures.append(message)

    def raise_if_failed(self) -> None:
        """Raise :class:`ValidationFailure` summarising any violations.

        (``ValidationFailure`` subclasses ``AssertionError``, matching
        this method's pre-taxonomy behaviour.)
        """
        if self.failures:
            summary = "; ".join(self.failures[:5])
            raise ValidationFailure(
                f"{self.structure} violated its contract "
                f"({len(self.failures)}/{self.checks} checks failed): {summary}"
            )


def _matching(elements: Sequence[Element], predicate: Predicate) -> List[Element]:
    return [e for e in elements if predicate.matches(e.obj)]


def validate_prioritized(
    index: PrioritizedIndex,
    elements: Sequence[Element],
    predicates: Sequence[Predicate],
    rng: Optional[random.Random] = None,
) -> ValidationReport:
    """Check the prioritized-reporting contract against brute force."""
    rng = rng if rng is not None else random.Random(0)
    report = ValidationReport(structure=type(index).__name__)
    weights = sorted(e.weight for e in elements)
    for i, predicate in enumerate(predicates):
        matching = _matching(elements, predicate)
        # Thresholds probing below, inside, and above the weight range.
        taus = [-math.inf, math.inf]
        if weights:
            taus.append(weights[rng.randrange(len(weights))])
            taus.append(weights[0] - 1.0)
            taus.append(weights[-1] + 1.0)
        for tau in taus:
            expected = sorted(
                (e for e in matching if e.weight >= tau), key=lambda e: -e.weight
            )
            result = index.query(predicate, tau)
            got = sorted(result.elements, key=lambda e: -e.weight)
            report.record(
                got == expected,
                f"predicate #{i}, tau={tau}: expected {len(expected)} elements, "
                f"got {len(got)}",
            )
            report.record(
                not result.truncated,
                f"predicate #{i}, tau={tau}: unmonitored query claimed truncation",
            )
        # Cost-monitoring contract.
        if len(matching) >= 3:
            limit = len(matching) // 2
            monitored = index.query(predicate, -math.inf, limit=limit)
            report.record(
                monitored.truncated,
                f"predicate #{i}: limit={limit} < matches={len(matching)} "
                "but truncated flag not set",
            )
            report.record(
                len(monitored.elements) >= limit + 1,
                f"predicate #{i}: truncated result holds {len(monitored.elements)} "
                f"elements, fewer than limit+1={limit + 1}",
            )
            relaxed = index.query(predicate, -math.inf, limit=10 * len(elements) + 10)
            report.record(
                not relaxed.truncated,
                f"predicate #{i}: limit above |q(D)| still reported truncation",
            )
    return report


def validate_max(
    index: MaxIndex,
    elements: Sequence[Element],
    predicates: Sequence[Predicate],
) -> ValidationReport:
    """Check the max-reporting contract against brute force."""
    report = ValidationReport(structure=type(index).__name__)
    for i, predicate in enumerate(predicates):
        matching = _matching(elements, predicate)
        expected = max(matching, key=lambda e: e.weight, default=None)
        got = index.query(predicate)
        report.record(
            got == expected,
            f"predicate #{i}: expected "
            f"{expected.weight if expected else None}, "
            f"got {got.weight if got else None}",
        )
    return report


def validate_counting(
    index: CountingIndex,
    elements: Sequence[Element],
    predicates: Sequence[Predicate],
) -> ValidationReport:
    """Check the (approximate) counting contract against brute force."""
    report = ValidationReport(structure=type(index).__name__)
    c = index.approximation_factor
    report.record(c >= 1.0, f"approximation factor {c} below 1")
    for i, predicate in enumerate(predicates):
        true = len(_matching(elements, predicate))
        got = index.count(predicate)
        report.record(
            true <= got <= c * true or (true == 0 and got == 0),
            f"predicate #{i}: count {got} outside [{true}, {c * true}]",
        )
    return report


def spot_check_topk(
    answer: Sequence[Element], predicate: Predicate, k: int
) -> ValidationReport:
    """Cheap runtime checks of one top-k answer (no brute-force rescan).

    Verifies only properties decidable from the answer itself in
    ``O(k)``: every reported element matches the predicate, weights are
    strictly descending (distinct), and at most ``k`` elements were
    reported.  :class:`~repro.resilience.guard.ResilientTopKIndex` runs
    this on a sample of queries to catch corrupted or contract-breaking
    backends without paying for full validation.
    """
    report = ValidationReport(structure="top-k answer")
    report.record(len(answer) <= max(0, k), f"{len(answer)} elements for k={k}")
    previous = math.inf
    for i, element in enumerate(answer):
        report.record(
            predicate.matches(element.obj),
            f"element #{i} (weight {element.weight}) does not match the predicate",
        )
        report.record(
            element.weight < previous,
            f"element #{i} breaks strict descending weight order "
            f"({element.weight} after {previous})",
        )
        previous = element.weight
    return report


def validate_problem_factories(
    elements: Sequence[Element],
    predicates: Sequence[Predicate],
    prioritized_factory: Optional[Callable] = None,
    max_factory: Optional[Callable] = None,
    counting_factory: Optional[Callable] = None,
) -> List[ValidationReport]:
    """Validate every supplied factory in one call (raises on failure)."""
    reports = []
    if prioritized_factory is not None:
        reports.append(
            validate_prioritized(prioritized_factory(elements), elements, predicates)
        )
    if max_factory is not None:
        reports.append(validate_max(max_factory(elements), elements, predicates))
    if counting_factory is not None:
        reports.append(
            validate_counting(counting_factory(elements), elements, predicates)
        )
    for report in reports:
        report.raise_if_failed()
    return reports
