"""E11 — every reduction the paper discusses, head to head.

Four routes from black boxes to top-k on one substrate (1D range
reporting, the literature's flagship problem per Section 2):

* Theorem 1 (prioritized only, worst case),
* Theorem 2 (prioritized + max, expected, no degradation),
* Section 2's counting reduction (reporting + counting), with exact
  and 2-approximate counters,
* the binary-search baseline of [28] (eqs. (1)-(2)).

All five must return identical (exact) answers; the table reports wall
time per query across a k sweep.  The shape to reproduce: the baseline
degrades fastest as k grows (its extra ``log n`` rides on ``k``),
Theorem 2 is the flattest, and approximate counting costs only a
constant factor over exact counting.
"""

import time

from repro.bench.tables import render_table
from repro.bench.workloads import make_problem
from repro.core.baseline import BinarySearchTopKIndex
from repro.core.counting import CountingTopKIndex, InflatedCounter
from repro.core.problem import top_k_of
from repro.core.theorem1 import WorstCaseTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex
from repro.structures.range1d import RangeTree1DCounter

N = 4_000
KS = (1, 8, 64, 512)
QUERIES = 20


def _build_all():
    problem = make_problem("range1d", N, seed=11)
    contenders = {
        "Thm1": WorstCaseTopKIndex(problem.elements, problem.prioritized_factory, seed=1),
        "Thm2": ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory, problem.max_factory, seed=2
        ),
        "Count(c=1)": CountingTopKIndex(
            problem.elements, problem.prioritized_factory, RangeTree1DCounter
        ),
        "Count(c=2)": CountingTopKIndex(
            problem.elements,
            problem.prioritized_factory,
            lambda subset: InflatedCounter(RangeTree1DCounter(subset), 2.0, salt=3),
        ),
        "Baseline[28]": BinarySearchTopKIndex(problem.elements, problem.prioritized_factory),
    }
    return problem, contenders


def _sweep():
    problem, contenders = _build_all()
    predicates = problem.predicates(QUERIES, seed=4)
    # Exactness first: all contenders must agree with brute force.
    for p in predicates[:5]:
        expect = top_k_of(problem.elements, p, 32)
        for name, index in contenders.items():
            assert index.query(p, 32) == expect, name
    rows = []
    per_contender = {name: [] for name in contenders}
    for k in KS:
        row = [k]
        for name, index in contenders.items():
            start = time.perf_counter()
            for p in predicates:
                index.query(p, k)
            wall = 1e6 * (time.perf_counter() - start) / QUERIES
            row.append(round(wall, 1))
            per_contender[name].append(wall)
        rows.append(row)
    return rows, per_contender, contenders


def bench_e11_reduction_comparison(benchmark, results_sink):
    rows, per_contender, contenders = _sweep()
    results_sink(
        render_table(
            f"E11  All reductions on 1D range reporting (n={N}), us/query",
            ["k", "Thm1", "Thm2", "Count(c=1)", "Count(c=2)", "Baseline[28]"],
            rows,
            note=(
                "identical exact answers; baseline degrades fastest in k, "
                "Thm2 flattest, approx counting a constant factor over exact"
            ),
        )
    )
    # The baseline's growth in k must exceed Theorem 2's.
    def growth(name):
        series = per_contender[name]
        return series[-1] / max(series[0], 1e-9)

    assert growth("Baseline[28]") > growth("Thm2"), (
        growth("Baseline[28]"),
        growth("Thm2"),
    )
    # Approximate counting stays within a constant factor of exact.
    assert max(per_contender["Count(c=2)"]) <= 20 * max(per_contender["Count(c=1)"])

    problem = make_problem("range1d", N, seed=11)
    index = ExpectedTopKIndex(
        problem.elements, problem.prioritized_factory, problem.max_factory, seed=5
    )
    predicates = problem.predicates(QUERIES, seed=6)

    def run_batch():
        for p in predicates:
            index.query(p, KS[-1])

    benchmark(run_batch)
