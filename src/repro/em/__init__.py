"""External-memory (EM) model substrate.

The paper carries out its analysis in the standard external memory model
of Aggarwal and Vitter: a machine with ``M`` words of memory and a disk
formatted into blocks of ``B`` words; cost is the number of block I/Os.

This subpackage simulates that model faithfully enough to *count* I/Os:

* :mod:`repro.em.model` — the block device, the ``B``/``M`` parameters,
  an LRU frame cache and I/O counters.
* :mod:`repro.em.blockarray` — a record array laid out in blocks.
* :mod:`repro.em.sort` — external merge sort.
* :mod:`repro.em.selection` — ``O(n/B)`` k-selection, used by both
  reductions to finish a top-k query.
* :mod:`repro.em.btree` — a bulk-loaded B+-tree with ``O(log_B n)``
  searches and canonical-set decomposition over weight suffixes.

Every structure built on this substrate performs its reads and writes
through an :class:`~repro.em.model.EMContext`, so the benchmark harness
reports exact I/O counts rather than only wall-clock time.
"""

from repro.em.model import Disk, EMContext, IOStats
from repro.em.blockarray import BlockArray
from repro.em.sort import external_merge_sort
from repro.em.selection import select_top_k, select_top_k_blocked
from repro.em.btree import BPlusTree

__all__ = [
    "Disk",
    "EMContext",
    "IOStats",
    "BlockArray",
    "external_merge_sort",
    "select_top_k",
    "select_top_k_blocked",
    "BPlusTree",
]
