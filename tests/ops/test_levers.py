"""The new operator-facing levers on existing subsystems.

``force_failover`` / ``recover_replica`` (replication),
``recover_shard`` (sharding), and ``flush_cache`` (serving) are thin
public entry points over machinery PRs 2–5 already shipped — these
tests pin their contracts independently of the operator loop.
"""

import pytest

from repro.core.problem import top_k_of
from repro.resilience.errors import FailoverError, InvalidConfiguration

from ops_util import replicated_stack, sharded_stack


class TestForceFailover:
    def test_moves_primary_to_live_follower(self):
        elements, _, cluster, guard, _, probes = replicated_stack()
        old = cluster.replicas[cluster.primary_index]
        successor = cluster.force_failover()
        assert successor is cluster.replicas[cluster.primary_index]
        assert successor is not old
        assert successor.is_primary and not old.is_primary
        assert old.alive  # a *gentle* lever: the old primary survives
        assert cluster.stats.forced_failovers == 1
        assert cluster.stats.promotions == 1
        predicate, k = probes[0]
        assert guard.query(predicate, k) == top_k_of(elements, predicate, k)

    def test_bumps_commit_epoch(self):
        _, _, cluster, _, _, _ = replicated_stack()
        before = cluster.commit_epoch
        cluster.force_failover()
        assert cluster.commit_epoch == before + 1

    def test_requires_a_live_follower(self):
        _, _, cluster, _, _, _ = replicated_stack()
        for replica in cluster.replicas:
            if not replica.is_primary:
                replica.mark_dead()
        with pytest.raises(FailoverError):
            cluster.force_failover()

    def test_writes_continue_after_forced_move(self):
        elements, pool, cluster, _, _, probes = replicated_stack()
        cluster.force_failover()
        element = pool.pop(0)
        cluster.insert(element)
        elements.append(element)
        predicate, k = probes[1]
        assert cluster.query(predicate, k) == top_k_of(elements, predicate, k)


class TestRecoverReplica:
    def test_reboots_dead_follower_from_disk(self):
        elements, _, cluster, _, _, probes = replicated_stack()
        follower = next(r for r in cluster.replicas if not r.is_primary)
        follower.mark_dead()
        reborn = cluster.recover_replica(follower.name)
        assert reborn.name == follower.name
        assert reborn.alive and not reborn.is_primary
        assert cluster.stats.replica_reboots == 1
        assert cluster.replica_lag()[reborn.name] == 0  # aligned on reboot
        predicate, k = probes[0]
        assert cluster.query(predicate, k) == top_k_of(elements, predicate, k)

    def test_reboot_clears_an_armed_fault_plan(self):
        # Adoption attaches a fresh, disarmed plan: the lever that
        # actually stops an environment stuck injecting faults.
        _, _, cluster, _, plan, _ = replicated_stack(
            target="replica-1", read_fail_rate=1.0, write_fail_rate=1.0
        )
        plan.arm()
        reborn = cluster.recover_replica("replica-1")
        assert reborn.plan is not plan
        assert not reborn.plan.armed

    def test_power_cycles_a_live_replica(self):
        _, _, cluster, _, _, _ = replicated_stack()
        follower = next(r for r in cluster.replicas if not r.is_primary)
        reborn = cluster.recover_replica(follower.name)
        assert reborn.alive
        assert cluster.stats.replica_reboots == 1

    def test_recovering_the_primary_eleects_a_successor_first(self):
        _, _, cluster, _, _, _ = replicated_stack()
        old_primary = cluster.replicas[cluster.primary_index].name
        reborn = cluster.recover_replica(old_primary)
        assert reborn.alive
        assert cluster.replicas[cluster.primary_index].name != old_primary

    def test_unknown_name_rejected(self):
        _, _, cluster, _, _, _ = replicated_stack()
        with pytest.raises(InvalidConfiguration):
            cluster.recover_replica("replica-99")


class TestRecoverShard:
    def test_reboots_dead_shard(self):
        elements, _, sharded, _, probes = sharded_stack()
        shard = sharded.router.shards["shard-1"]
        shard.machine.mark_dead()
        assert sharded.recover_shard("shard-1") is True
        assert sharded.router.shards["shard-1"].alive
        predicate, k = probes[0]
        assert sharded.query(predicate, k) == top_k_of(elements, predicate, k)

    def test_healthy_shard_is_a_noop(self):
        _, _, sharded, _, _ = sharded_stack()
        assert sharded.recover_shard("shard-1") is False

    def test_unknown_shard_rejected(self):
        _, _, sharded, _, _ = sharded_stack()
        with pytest.raises(InvalidConfiguration):
            sharded.recover_shard("shard-99")


class TestFlushCache:
    def test_drops_cached_answers_and_recomputes(self):
        from repro.serving import ServingEngine

        _, _, cluster, _, _, probes = replicated_stack()
        engine = ServingEngine(cluster)
        predicate, _ = probes[0]
        first = engine.query(predicate, 4)
        engine.query(predicate, 4)  # now a cache hit
        assert engine.cache.stats.hits >= 1
        dropped = engine.flush_cache()
        assert dropped >= 1
        traversals = engine.stats.traversals
        assert engine.query(predicate, 4) == first
        assert engine.stats.traversals == traversals + 1  # recomputed
