"""Smoke tests: the example scripts must run and self-verify.

Each example asserts its own correctness internally (comparisons with
brute force); running ``main()`` in-process is the test.  Only the
fast examples run here — the EM accounting example sweeps five block
sizes and belongs to manual runs.
"""

import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
sys.path.insert(0, str(EXAMPLES_DIR))


def test_quickstart_runs(capsys):
    import quickstart

    quickstart.main()
    out = capsys.readouterr().out
    assert "Top-10 offers" in out
    assert "agrees" in out


def test_spatial_similarity_runs(capsys):
    import spatial_similarity

    spatial_similarity.main()
    out = capsys.readouterr().out
    assert "Matches brute force" in out
    assert "Theorem 1 instantiation agrees" in out


def test_resilient_service_runs(capsys):
    import resilient_service

    resilient_service.main()
    out = capsys.readouterr().out
    assert "Degradation ladder: ExpectedTopKIndex -> WorstCaseTopKIndex -> scan" in out
    assert "matched the brute-force oracle" in out
    # The KeyboardInterrupt path: checkpoint-on-shutdown, then recovery.
    assert "checkpointed on shutdown" in out
    assert "health reports 1 recovery" in out
    assert "The restarted service lost nothing." in out


def test_resilient_service_interrupt_mid_group(capsys):
    """Interrupting inside an uncommitted WAL group must lose nothing:
    the shutdown checkpoint commits the pending tail first."""
    import resilient_service

    # 7 ingests with commit_interval=4: three ops sit uncommitted when
    # the interrupt lands.
    resilient_service.main(interrupt_after=7)
    out = capsys.readouterr().out
    assert "Interrupted after 7 ingests" in out
    assert "The restarted service lost nothing." in out


def test_replicated_service_runs(capsys):
    import replicated_service

    replicated_service.main()
    out = capsys.readouterr().out
    assert "promoted replica-1 (replayed 40 unapplied records)" in out
    assert "post-failover top-8 matches the brute-force oracle exactly" in out
    assert "repaired=['replica-2']" in out
    assert "promotions=1 scrub_repairs=1" in out


@pytest.mark.slow
def test_hotel_search_runs(capsys):
    import hotel_search

    hotel_search.main()
    out = capsys.readouterr().out
    assert "Top-10 hotels" in out


@pytest.mark.slow
def test_dating_site_runs(capsys):
    import dating_site

    dating_site.main()
    out = capsys.readouterr().out
    assert "Top-10 salaries" in out
