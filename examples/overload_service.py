"""A flash crowd hits a top-k service — twice: static, then autoscaled.

The same seeded open-loop crowd (arrivals keep coming whether or not
the service keeps up — no coordinated omission) is replayed against
two identical 2-shard serving stacks:

* **static** — fixed topology.  When the 8x spike lands, the queue
  grows, deadline admission sheds what cannot finish in time, the
  retry budget caps how hard clients hammer back, and the p99 blows
  through the SLO anyway: there is simply not enough capacity;
* **autoscaled** — the exact same stack plus the control plane.  The
  anomaly detector's SLO rules (p99 breach, queue growth, shed-rate
  spike) open an incident, the mitigation planner pulls the
  ``split_shard`` lever — repeatedly, each pull adding a server — and
  the brownout ladder keeps answers flowing (reduced-k prefixes,
  never wrong ones) while capacity catches up.

Everything runs in deterministic virtual time: latencies are counted,
not slept, so the whole story replays bit-for-bit from its seed.

Run:  python examples/overload_service.py
"""

from repro.loadgen import DEFAULT_LOAD_SCENARIOS, SHAPE_FLASH_CROWD, LoadScenarioRunner


def describe(result) -> None:
    report = result.report
    slo = result.spec.p99_slo
    verdict = "MET" if result.slo_met else "VIOLATED"
    print(f"  offered     : {report.fresh_arrivals} fresh requests "
          f"(+{report.retries} budgeted retries, "
          f"{report.retries_denied} denied)")
    print(f"  served      : {report.served} "
          f"({report.reduced_k_served} reduced-k, "
          f"{report.partial_served} partial)")
    print(f"  sheds       : {report.sheds} "
          f"({report.queue_sheds} queue-full, "
          f"{report.deadline_sheds} past-deadline)")
    print(f"  latency     : p50={report.latency.p50:.3f}s "
          f"p99={report.latency.p99:.3f}s p999={report.latency.p999:.3f}s")
    print(f"  p99 SLO {slo:.1f}s : {verdict}")
    print(f"  goodput     : {report.goodput:.1%}   "
          f"amplification: {report.amplification:.3f}x")
    print(f"  topology    : {result.final_shards} shards at end"
          + (f"   levers: {', '.join(result.levers)}" if result.levers else ""))
    print(f"  exactness   : {report.exact_ok}/{report.exact_checked} "
          f"spot-checks matched the brute-force oracle")


def main() -> None:
    spec = next(
        s for s in DEFAULT_LOAD_SCENARIOS if s.shape == SHAPE_FLASH_CROWD
    )
    runner = LoadScenarioRunner()

    print(f"flash crowd: {spec.base_rate:.0f} req/s baseline, "
          f"{spec.spike:.0f}x spike for {spec.window_duration:.0f}s, "
          f"p99 SLO {spec.p99_slo:.1f}s\n")

    static, scaled = runner.flash_crowd_comparison(spec)

    print("[1] static topology — no control plane")
    describe(static)
    print()
    print("[2] autoscaled — SLO detection + split_shard + brownout ladder")
    describe(scaled)
    print()

    assert not static.slo_met and scaled.slo_met
    assert scaled.final_shards > spec.num_shards
    print(
        f"same crowd, same seed: scale-out cut p99 from "
        f"{static.report.latency.p99:.3f}s to "
        f"{scaled.report.latency.p99:.3f}s and goodput rose from "
        f"{static.report.goodput:.1%} to {scaled.report.goodput:.1%}, "
        f"with every non-degraded answer oracle-exact"
    )


if __name__ == "__main__":
    main()
