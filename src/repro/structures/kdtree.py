"""kd-trees for halfspace and ball queries in dimension ``d >= 2``.

Theorem 3's second and third bullets concern regimes where the
prioritized query cost is *polynomial* (``Q_pri ~ n^{1 - 1/floor(d/2)}``),
in which case Theorem 1 adds **no** asymptotic overhead.  Any substrate
with polynomial query cost exhibits that regime; a kd-tree
(``O(n^{1-1/d} + t)`` for convex ranges) is the canonical
implementable choice (substituting for the partition trees of
Afshani–Chan [4] and Agarwal et al. [6] — DESIGN.md section 4).

The tree stores, at every node, its axis-aligned bounding box, the
subtree's elements ordered by descending weight, and the subtree's
maximum weight — supporting all three query flavours:

* prioritized: prune by ``region x box`` relations and by subtree max
  weight; fully-contained subtrees stream their weight-descending list
  down to ``tau``, so the output term is exact.
* max: branch-and-bound on subtree max weight.
* top-k (native): best-first search — used as an independent
  comparison point in bench E9.

Regions are :class:`~repro.geometry.primitives.Halfplane` (any ``d``),
:class:`~repro.geometry.primitives.Ball`, or :class:`Box` (orthogonal
range reporting, the survey's flagship problem); the node-box
classification logic lives in :func:`classify_halfspace` /
:func:`classify_ball` / :func:`classify_box`.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.columnar import register_predicate_compiler
from repro.core.interfaces import MaxIndex, OpCounter, PrioritizedIndex, PrioritizedResult
from repro.core.problem import Element, Predicate
from repro.geometry.primitives import Ball, Halfplane, Point

DISJOINT, PARTIAL, CONTAINED = 0, 1, 2

Region = Union[Halfplane, Ball, "Box"]


@dataclass(frozen=True)
class HalfspacePredicate(Predicate):
    """Matches every point inside the halfspace (any dimension)."""

    halfspace: Halfplane

    def matches(self, obj: Point) -> bool:
        return self.halfspace.contains(obj)


@register_predicate_compiler(HalfspacePredicate)
def _compile_halfspace(predicate: HalfspacePredicate):
    """Closure-specialized halfspace test; low dims unroll the dot."""
    normal, c = predicate.halfspace.normal, predicate.halfspace.c
    if len(normal) == 2:
        n0, n1 = normal
        return lambda obj: n0 * obj[0] + n1 * obj[1] >= c
    if len(normal) == 3:
        n0, n1, n2 = normal
        return lambda obj: n0 * obj[0] + n1 * obj[1] + n2 * obj[2] >= c
    return predicate.halfspace.contains


@dataclass(frozen=True)
class Box:
    """An axis-parallel box ``[lo_1, hi_1] x ... x [lo_d, hi_d]``.

    The query region of *orthogonal range reporting* — whose top-k
    variant is the problem the paper's survey calls the most
    extensively studied ([28, 29] for 2D, [3, 11, 33, 35] for 1D).
    """

    lo: Tuple[float, ...]
    hi: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("box corner dimensions differ")
        if any(a > b for a, b in zip(self.lo, self.hi)):
            raise ValueError(f"empty box: {self.lo} .. {self.hi}")

    def contains(self, point: Sequence[float]) -> bool:
        return all(
            lo <= c <= hi for lo, c, hi in zip(self.lo, point, self.hi)
        )

    @property
    def dim(self) -> int:
        return len(self.lo)


@dataclass(frozen=True)
class OrthogonalRangePredicate(Predicate):
    """Matches every point inside the axis-parallel query box."""

    box: Box

    @property
    def region(self) -> Box:
        return self.box

    def matches(self, obj: Point) -> bool:
        return self.box.contains(obj)


@register_predicate_compiler(OrthogonalRangePredicate)
def _compile_orthorange(predicate: OrthogonalRangePredicate):
    """Closure-specialized box test; low dims unroll the coordinate loop."""
    lo, hi = predicate.box.lo, predicate.box.hi
    if len(lo) == 2:
        l0, l1 = lo
        h0, h1 = hi
        return lambda obj: l0 <= obj[0] <= h0 and l1 <= obj[1] <= h1
    if len(lo) == 3:
        l0, l1, l2 = lo
        h0, h1, h2 = hi
        return lambda obj: (
            l0 <= obj[0] <= h0 and l1 <= obj[1] <= h1 and l2 <= obj[2] <= h2
        )
    return predicate.box.contains


def classify_halfspace(halfspace: Halfplane, lo: Point, hi: Point) -> int:
    """Relation of the box ``[lo, hi]`` to the halfspace.

    Evaluated at the box corners extreme along the normal: if even the
    best corner misses, the box is disjoint; if even the worst corner
    is inside, the box is contained.
    """
    best = 0.0
    worst = 0.0
    for axis, coeff in enumerate(halfspace.normal):
        if coeff >= 0:
            best += coeff * hi[axis]
            worst += coeff * lo[axis]
        else:
            best += coeff * lo[axis]
            worst += coeff * hi[axis]
    if best < halfspace.c:
        return DISJOINT
    if worst >= halfspace.c:
        return CONTAINED
    return PARTIAL


def classify_ball(ball: Ball, lo: Point, hi: Point) -> int:
    """Relation of the box ``[lo, hi]`` to the closed ball."""
    near = 0.0
    far = 0.0
    for axis, center in enumerate(ball.center):
        clamped = min(max(center, lo[axis]), hi[axis])
        near += (center - clamped) ** 2
        far += max(center - lo[axis], hi[axis] - center) ** 2
    r2 = ball.radius**2
    if near > r2:
        return DISJOINT
    if far <= r2:
        return CONTAINED
    return PARTIAL


def classify_box(box: "Box", lo: Point, hi: Point) -> int:
    """Relation of the node box ``[lo, hi]`` to the query box."""
    contained = True
    for axis in range(len(lo)):
        if hi[axis] < box.lo[axis] or lo[axis] > box.hi[axis]:
            return DISJOINT
        if lo[axis] < box.lo[axis] or hi[axis] > box.hi[axis]:
            contained = False
    return CONTAINED if contained else PARTIAL


def classify(region: Region, lo: Point, hi: Point) -> int:
    """Dispatch on the region type."""
    if isinstance(region, Halfplane):
        return classify_halfspace(region, lo, hi)
    if isinstance(region, Ball):
        return classify_ball(region, lo, hi)
    if isinstance(region, Box):
        return classify_box(region, lo, hi)
    raise TypeError(f"unsupported region type: {type(region).__name__}")


class _KDNode:
    __slots__ = ("lo", "hi", "elements_desc", "left", "right", "max_weight")

    def __init__(self) -> None:
        self.lo: Point = ()
        self.hi: Point = ()
        self.elements_desc: List[Element] = []  # subtree, weight-descending
        self.left: Optional["_KDNode"] = None
        self.right: Optional["_KDNode"] = None
        self.max_weight: float = -math.inf


class KDTreeIndex(PrioritizedIndex):
    """A weight-augmented kd-tree answering all three query flavours.

    ``leaf_size`` controls the recursion cutoff; per-node
    weight-descending element lists make space ``O(n log n)`` words.
    The region to query comes from the predicate's ``region`` attribute
    (:class:`HalfspacePredicate` or circular predicates).
    """

    def __init__(self, elements: Sequence[Element], leaf_size: int = 8) -> None:
        self.ops = OpCounter()
        self._n = len(elements)
        self._dim = len(elements[0].obj) if elements else 2
        self._leaf_size = max(1, leaf_size)
        self._root = self._build(list(elements), 0)

    def _build(self, elements: List[Element], depth: int) -> Optional[_KDNode]:
        if not elements:
            return None
        node = _KDNode()
        node.lo = tuple(min(e.obj[a] for e in elements) for a in range(self._dim))
        node.hi = tuple(max(e.obj[a] for e in elements) for a in range(self._dim))
        node.elements_desc = sorted(elements, key=lambda e: -e.weight)
        node.max_weight = node.elements_desc[0].weight
        if len(elements) > self._leaf_size:
            axis = depth % self._dim
            elements.sort(key=lambda e: e.obj[axis])
            mid = len(elements) // 2
            node.left = self._build(elements[:mid], depth + 1)
            node.right = self._build(elements[mid:], depth + 1)
        return node

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    def query_cost_bound(self) -> float:
        """``Q_pri ~ n^{1 - 1/d}`` — the polynomial regime of Theorem 3."""
        if self._n <= 1:
            return 1.0
        return float(self._n) ** (1.0 - 1.0 / self._dim)

    def _region_of(self, predicate: Predicate) -> Region:
        region = getattr(predicate, "region", None)
        if region is None and isinstance(predicate, HalfspacePredicate):
            region = predicate.halfspace
        if region is None:
            raise TypeError(
                f"predicate {type(predicate).__name__} carries no kd-tree region"
            )
        return region

    def query(
        self, predicate: Predicate, tau: float, limit: Optional[int] = None
    ) -> PrioritizedResult:
        """Prioritized reporting: region members with weight >= tau."""
        region = self._region_of(predicate)
        out: List[Element] = []
        truncated = self._collect(self._root, region, tau, limit, out)
        return PrioritizedResult(out, truncated=truncated)

    def _collect(
        self,
        node: Optional[_KDNode],
        region: Region,
        tau: float,
        limit: Optional[int],
        out: List[Element],
    ) -> bool:
        if node is None or node.max_weight < tau:
            return False
        self.ops.node_visits += 1
        relation = classify(region, node.lo, node.hi)
        if relation == DISJOINT:
            return False
        if relation == CONTAINED:
            for element in node.elements_desc:
                if element.weight < tau:
                    break
                out.append(element)
                self.ops.scanned += 1
                if limit is not None and len(out) > limit:
                    return True
            return False
        if node.left is None and node.right is None:
            for element in node.elements_desc:
                if element.weight < tau:
                    break
                self.ops.scanned += 1
                if region.contains(element.obj):
                    out.append(element)
                    if limit is not None and len(out) > limit:
                        return True
            return False
        if self._collect(node.left, region, tau, limit, out):
            return True
        return self._collect(node.right, region, tau, limit, out)

    # ------------------------------------------------------------------
    def max_query(self, predicate: Predicate) -> Optional[Element]:
        """Max reporting by branch-and-bound on subtree max weights."""
        region = self._region_of(predicate)
        return self._max(self._root, region, None)

    def _max(
        self, node: Optional[_KDNode], region: Region, best: Optional[Element]
    ) -> Optional[Element]:
        if node is None:
            return best
        if best is not None and node.max_weight <= best.weight:
            return best
        self.ops.node_visits += 1
        relation = classify(region, node.lo, node.hi)
        if relation == DISJOINT:
            return best
        if relation == CONTAINED:
            candidate = node.elements_desc[0]
            if best is None or candidate.weight > best.weight:
                return candidate
            return best
        if node.left is None and node.right is None:
            for element in node.elements_desc:
                if best is not None and element.weight <= best.weight:
                    break
                if region.contains(element.obj):
                    best = element
                    break
            return best
        # Prefer the child with the larger potential first.
        children = [child for child in (node.left, node.right) if child is not None]
        children.sort(key=lambda child: -child.max_weight)
        for child in children:
            best = self._max(child, region, best)
        return best

    def top_k(self, predicate: Predicate, k: int) -> List[Element]:
        """Native top-k by best-first search (comparison point, bench E9)."""
        region = self._region_of(predicate)
        if self._root is None or k <= 0:
            return []
        out: List[Element] = []
        heap: List[Tuple[float, int, str, object]] = []
        counter = itertools.count()
        heap.append((-self._root.max_weight, next(counter), "node", self._root))
        while heap and len(out) < k:
            _, _, kind, item = heapq.heappop(heap)
            if kind == "element":
                out.append(item)
                continue
            node: _KDNode = item
            self.ops.node_visits += 1
            relation = classify(region, node.lo, node.hi)
            if relation == DISJOINT:
                continue
            if relation == CONTAINED:
                for element in node.elements_desc[:k]:
                    heapq.heappush(heap, (-element.weight, next(counter), "element", element))
                continue
            if node.left is None and node.right is None:
                for element in node.elements_desc:
                    if region.contains(element.obj):
                        heapq.heappush(
                            heap, (-element.weight, next(counter), "element", element)
                        )
                continue
            for child in (node.left, node.right):
                if child is not None:
                    heapq.heappush(heap, (-child.max_weight, next(counter), "node", child))
        return out

    def space_units(self) -> int:
        """``O(n log n)`` words: per-node subtree lists."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            total += len(node.elements_desc)
            stack.extend((node.left, node.right))
        return total


class KDTreeMax(MaxIndex):
    """Adapter exposing :meth:`KDTreeIndex.max_query` as a MaxIndex."""

    def __init__(self, elements: Sequence[Element], leaf_size: int = 8) -> None:
        self._tree = KDTreeIndex(elements, leaf_size)
        self.ops = self._tree.ops

    @property
    def n(self) -> int:
        return self._tree.n

    def query_cost_bound(self) -> float:
        return max(1.0, math.log2(max(2, self.n)) ** 2)

    def query(self, predicate: Predicate) -> Optional[Element]:
        return self._tree.max_query(predicate)

    def space_units(self) -> int:
        return self._tree.space_units()
