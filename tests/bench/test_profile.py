"""The profiling entry point runs and prints a stats table."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.bench.profile import INDEXES, main


@pytest.mark.parametrize("index", INDEXES)
def test_profile_runs_each_index(index, capsys):
    assert main([
        "--index", index, "--n", "120", "--queries", "10",
        "--k", "4", "--top", "5",
    ]) == 0
    out = capsys.readouterr().out
    assert f"index={index}" in out
    assert "cumulative" in out  # pstats header made it out


def test_profile_rejects_unknown_problem(capsys):
    with pytest.raises(SystemExit):
        main(["--problem", "no-such-problem"])


def test_module_entry_point():
    result = subprocess.run(
        [sys.executable, "-m", "repro.bench.profile",
         "--n", "100", "--queries", "5", "--top", "3"],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "Ordered by" in result.stdout
