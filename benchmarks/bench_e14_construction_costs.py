"""E14 — construction costs: every structure's build scaling.

The paper's bounds are query/space/update bounds; construction is
"preprocessing" and may be superlinear, but a usable library must keep
it near-linear-with-logs.  This experiment measures build wall time per
element across ``n`` for every registered problem's prioritized and max
structures plus both reductions, asserting no build explodes
(log-log slope safely below quadratic).
"""

import time

from repro.bench.runner import fit_loglog_slope
from repro.bench.tables import render_table
from repro.bench.workloads import make_problem
from repro.core.theorem1 import WorstCaseTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex

SIZES = (500, 1_000, 2_000, 4_000)
PROBLEMS = ("range1d", "interval_stabbing", "dominance3d", "halfplane2d")


def _build_time(build) -> float:
    start = time.perf_counter()
    build()
    return time.perf_counter() - start


def _sweep():
    rows = []
    worst_slope = 0.0
    for name in PROBLEMS:
        times_pri, times_t2 = [], []
        for n in SIZES:
            problem = make_problem(name, n, seed=14)
            times_pri.append(
                _build_time(lambda: problem.prioritized_factory(problem.elements))
            )
            times_t2.append(
                _build_time(
                    lambda: ExpectedTopKIndex(
                        problem.elements,
                        problem.prioritized_factory,
                        problem.max_factory,
                        seed=1,
                    )
                )
            )
        slope_pri = fit_loglog_slope(list(SIZES), times_pri)
        slope_t2 = fit_loglog_slope(list(SIZES), times_t2)
        worst_slope = max(worst_slope, slope_pri, slope_t2)
        rows.append(
            [
                name,
                round(1e3 * times_pri[-1], 1),
                round(slope_pri, 2),
                round(1e3 * times_t2[-1], 1),
                round(slope_t2, 2),
            ]
        )
    return rows, worst_slope


def bench_e14_construction_costs(benchmark, results_sink):
    rows, worst_slope = _sweep()
    results_sink(
        render_table(
            f"E14  Build costs at n={SIZES[-1]} and build-time slopes over n",
            ["problem", "prioritized ms", "slope", "Theorem 2 ms", "slope"],
            rows,
            note="slopes near 1 = near-linear construction; anything ~2 would flag quadratic blow-up",
        )
    )
    assert worst_slope < 1.8, f"a construction cost is close to quadratic: {worst_slope:.2f}"

    problem = make_problem("interval_stabbing", 2_000, seed=14)

    def run_build():
        WorstCaseTopKIndex(problem.elements, problem.prioritized_factory, seed=2)

    benchmark(run_build)
