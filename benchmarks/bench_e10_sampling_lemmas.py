"""E10 — the probabilistic engine: Lemmas 1, 2 and 3, measured.

Paper claims:

* Lemma 1 — in a p-sample, the rank-``ceil(2kp)`` element has full-set
  rank in ``[k, 4k]`` with probability ``>= 1 - delta`` when
  ``kp >= 3 ln(3/delta)`` and ``n >= 4k``.
* Lemma 2 — the core-set has size ``<= 12 lam (n/K) ln n``.
* Lemma 3 — the max of a (1/K)-sample has rank in ``(K, 4K]`` with
  probability ``>= 0.09``.

Measured: Monte-Carlo success frequencies against the guaranteed
bounds, and core-set sizes against the 12-lambda envelope.
"""

import math
import random

from repro.bench.tables import render_table
from repro.core.coreset import build_coreset
from repro.core.params import TuningParams
from repro.core.problem import Element
from repro.core.sampling import empirical_rank_window, rank_of_max_in_sample

TRIALS = 300


def _lemma1_rows():
    rows = []
    rng = random.Random(1)
    for (n, k, delta) in ((4_000, 150, 0.3), (8_000, 300, 0.2), (16_000, 500, 0.1)):
        p = 3.0 * math.log(3.0 / delta) / k
        success, avg_size = empirical_rank_window(n, k, p, TRIALS, rng)
        rows.append(
            [n, k, round(p, 4), round(1 - delta, 2), round(success, 3), round(avg_size, 1)]
        )
    return rows


def _lemma2_rows():
    rows = []
    params = TuningParams.paper_faithful(lam=2.0)
    for (n, K) in ((4_000, 64.0), (8_000, 128.0), (16_000, 256.0)):
        elements = [Element(i, float(i)) for i in range(n)]
        sizes = [
            len(build_coreset(elements, K, params, random.Random(s))) for s in range(20)
        ]
        bound = 12 * params.lam * (n / K) * math.log(n)
        rows.append(
            [n, int(K), round(sum(sizes) / len(sizes), 1), round(bound, 1)]
        )
    return rows


def _lemma3_rows():
    rows = []
    rng = random.Random(2)
    for (n, K) in ((4_000, 100.0), (8_000, 200.0), (16_000, 400.0)):
        weights_desc = [float(n - i) for i in range(n)]
        hits = 0
        for _ in range(TRIALS):
            sample = [w for w in weights_desc if rng.random() < 1.0 / K]
            rank = rank_of_max_in_sample(weights_desc, sample)
            if rank is not None and K < rank <= 4 * K:
                hits += 1
        rows.append([n, int(K), round(hits / TRIALS, 3), 0.09])
    return rows


def bench_e10_sampling_lemmas(benchmark, results_sink):
    l1 = _lemma1_rows()
    results_sink(
        render_table(
            "E10a  Lemma 1: rank-window success frequency vs guarantee",
            ["n", "k", "p", "guaranteed >=", "measured", "avg |R|"],
            l1,
        )
    )
    for row in l1:
        assert row[4] >= row[3] - 0.08, f"Lemma 1 frequency below bound: {row}"

    l2 = _lemma2_rows()
    results_sink(
        render_table(
            "E10b  Lemma 2: core-set size vs the 12*lam*(n/K)*ln n envelope",
            ["n", "K", "mean |R|", "bound"],
            l2,
        )
    )
    for row in l2:
        assert row[2] <= row[3], f"core-set exceeded the lemma bound: {row}"

    l3 = _lemma3_rows()
    results_sink(
        render_table(
            "E10c  Lemma 3: max-of-sample rank in (K, 4K] vs the 0.09 guarantee",
            ["n", "K", "measured", "guaranteed >="],
            l3,
        )
    )
    for row in l3:
        assert row[2] >= row[3], f"Lemma 3 frequency below bound: {row}"

    rng = random.Random(3)

    def run_monte_carlo():
        empirical_rank_window(4_000, 150, 0.05, 20, rng)

    benchmark(run_monte_carlo)
