"""The profiling entry point runs and prints a stats table."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.bench.profile import INDEXES, main


@pytest.mark.parametrize("index", INDEXES)
def test_profile_runs_each_index(index, capsys):
    assert main([
        "--index", index, "--n", "120", "--queries", "10",
        "--k", "4", "--top", "5",
    ]) == 0
    out = capsys.readouterr().out
    assert f"index={index}" in out
    assert "cumulative" in out  # pstats header made it out


def test_profile_rejects_unknown_problem(capsys):
    with pytest.raises(SystemExit):
        main(["--problem", "no-such-problem"])


def test_module_entry_point():
    result = subprocess.run(
        [sys.executable, "-m", "repro.bench.profile",
         "--n", "100", "--queries", "5", "--top", "3"],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "Ordered by" in result.stdout


def test_profile_json_output(capsys):
    import json as json_module

    assert main([
        "--n", "120", "--queries", "10", "--k", "4", "--top", "5", "--json",
    ]) == 0
    doc = json_module.loads(capsys.readouterr().out)
    assert doc["n"] == 120 and doc["queries"] == 10
    assert doc["wall_seconds"] > 0
    assert len(doc["frames"]) <= 5
    assert all("cumtime" in frame for frame in doc["frames"])


def test_profile_compare_modes(capsys):
    import json as json_module

    assert main([
        "--n", "150", "--queries", "12", "--k", "4",
        "--compare", "columnar,legacy", "--json",
    ]) == 0
    doc = json_module.loads(capsys.readouterr().out)
    assert set(doc["modes"]) == {"columnar", "legacy"}
    assert doc["modes"]["legacy"]["wall_seconds"] > 0
    assert "speedup" in doc


def test_profile_compare_single_mode_text(capsys):
    assert main([
        "--n", "150", "--queries", "12", "--compare", "legacy",
    ]) == 0
    out = capsys.readouterr().out
    assert "legacy" in out
    assert "speedup" not in out  # needs both modes


def test_profile_compare_rejects_unknown_mode():
    with pytest.raises(SystemExit):
        main(["--compare", "turbo"])
