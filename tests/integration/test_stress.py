"""Stress campaigns: larger instances, long mixed workloads, many seeds.

Each test is bounded to a few seconds but covers far more ground than
the unit tests: thousands of queries, long update traces, and seed
sweeps over the probabilistic machinery.
"""

import math
import random

import pytest

from oracles import oracle_top_k
from repro.bench.workloads import make_problem
from repro.core.theorem1 import WorstCaseTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex
from toy import RangePredicate, ToyMax, ToyPrioritized, make_toy_elements


class TestSeedSweeps:
    """The randomized reductions must be exact for *every* seed."""

    @pytest.mark.parametrize("seed", range(12))
    def test_theorem1_many_seeds(self, seed):
        elements = make_toy_elements(300, seed)
        index = WorstCaseTopKIndex(elements, ToyPrioritized, seed=seed)
        rng = random.Random(seed + 1000)
        for _ in range(10):
            a, b = sorted((rng.uniform(0, 3000), rng.uniform(0, 3000)))
            p = RangePredicate(a, b)
            k = rng.choice([1, 7, 50, 299])
            assert index.query(p, k) == oracle_top_k(elements, p, k)

    @pytest.mark.parametrize("seed", range(12))
    def test_theorem2_many_seeds(self, seed):
        elements = make_toy_elements(300, seed)
        index = ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=seed)
        rng = random.Random(seed + 2000)
        for _ in range(10):
            a, b = sorted((rng.uniform(0, 3000), rng.uniform(0, 3000)))
            p = RangePredicate(a, b)
            k = rng.choice([1, 7, 50, 299])
            assert index.query(p, k) == oracle_top_k(elements, p, k)


class TestLargeInstances:
    def test_big_interval_stabbing_campaign(self):
        problem = make_problem("interval_stabbing", 3_000, seed=31)
        index = ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory, problem.max_factory, seed=1
        )
        rng = random.Random(32)
        for p in problem.predicates(40, seed=32):
            k = rng.choice([1, 10, 100, 1500])
            assert index.query(p, k) == oracle_top_k(problem.elements, p, k)

    def test_big_range1d_all_reductions_agree(self):
        problem = make_problem("range1d", 5_000, seed=33)
        t1 = WorstCaseTopKIndex(problem.elements, problem.prioritized_factory, seed=2)
        t2 = ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory, problem.max_factory, seed=3
        )
        for p in problem.predicates(25, seed=34):
            for k in (1, 20, 400):
                assert t1.query(p, k) == t2.query(p, k)


class TestLongUpdateTrace:
    def test_thousand_update_trace_stays_exact(self):
        problem = make_problem("range1d_dynamic", 500, seed=35)
        index = ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory, problem.max_factory, seed=4
        )
        rng = random.Random(36)
        current = list(problem.elements)
        top_weight = max(e.weight for e in current)
        for step in range(1000):
            if rng.random() < 0.55 or len(current) < 50:
                fresh = problem.element_gen(rng, top_weight + 1.0 + step)
                index.insert(fresh)
                current.append(fresh)
            else:
                victim = current.pop(rng.randrange(len(current)))
                index.delete(victim)
            if step % 100 == 99:
                for p in problem.predicates(3, seed=step):
                    assert index.query(p, 12) == oracle_top_k(current, p, 12)
        assert index.n == len(current)


class TestExtremeParameters:
    def test_k_equals_one_everywhere(self):
        """k=1 (max reporting) across a broad predicate sweep."""
        problem = make_problem("dominance3d", 400, seed=37)
        index = ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory, problem.max_factory, seed=5
        )
        for p in problem.predicates(60, seed=38):
            assert index.query(p, 1) == oracle_top_k(problem.elements, p, 1)

    def test_k_equals_n_everywhere(self):
        problem = make_problem("halfplane2d", 300, seed=39)
        index = WorstCaseTopKIndex(problem.elements, problem.prioritized_factory, seed=6)
        for p in problem.predicates(20, seed=40):
            assert index.query(p, 300) == oracle_top_k(problem.elements, p, 300)

    def test_tiny_inputs_all_problems(self):
        from repro.bench.workloads import PROBLEMS

        for name in PROBLEMS:
            for n in (1, 2, 3, 5):
                problem = make_problem(name, n, seed=41)
                index = ExpectedTopKIndex(
                    problem.elements,
                    problem.prioritized_factory,
                    problem.max_factory,
                    seed=7,
                )
                for p in problem.predicates(4, seed=42):
                    for k in (1, 2, 10):
                        assert index.query(p, k) == oracle_top_k(problem.elements, p, k)
