"""Shared builders for the sharding test suite.

Named ``*_util`` (not ``conftest``) so pytest never shadows the real
per-directory conftest machinery; import directly (``tests/`` is on
``sys.path`` via the top-level conftest).
"""

from __future__ import annotations

import random
from typing import List

from repro.core.problem import Element
from repro.sharding import ShardedTopKIndex, sharded_index
from toy import RangePredicate, ToyMax, ToyPrioritized

N_DEFAULT = 96


def make_uniform_elements(n: int = N_DEFAULT, seed: int = 0) -> List[Element]:
    """Distinct integer weights drawn uniformly, random positions."""
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    positions = rng.sample(range(10 * n), n)
    return [Element(positions[i], float(weights[i])) for i in range(n)]


def make_zipf_elements(
    n: int = N_DEFAULT, seed: int = 0, alpha: float = 1.2
) -> List[Element]:
    """Zipf-skewed weights: rank ``r`` carries ``~1/r**alpha`` of the mass.

    Ranks are distinct, so weights are distinct by construction; the
    *values* are heavily concentrated in the first few ranks — the
    regime where weight-aware range partitioning concentrates the
    answer set in few shards.
    """
    rng = random.Random(seed)
    positions = rng.sample(range(10 * n), n)
    return [
        Element(positions[r], 1_000_000.0 / (r + 1) ** alpha) for r in range(n)
    ]


def make_sharded(elements, **kwargs) -> ShardedTopKIndex:
    """A sharded index over the toy structures, small blocks throughout."""
    kwargs.setdefault("num_shards", 4)
    kwargs.setdefault("seed", 3)
    return sharded_index(elements, ToyPrioritized, ToyMax, **kwargs)


def random_predicate(rng: random.Random, elements) -> RangePredicate:
    """A random closed range over the elements' position domain."""
    span = 10 * len(elements)
    lo = rng.randrange(-5, span)
    hi = rng.randrange(lo, span + 5)
    return RangePredicate(lo, hi)
