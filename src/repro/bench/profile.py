"""``python -m repro.bench.profile`` — cProfile a top-k workload.

Builds a named problem instance (:mod:`repro.bench.workloads`), runs a
batch of queries through the chosen index — one of the two reductions,
the binary-search baseline, or the full serving engine — under
:mod:`cProfile`, and prints the top-N functions by cumulative time.
This is the first stop when a bench regresses: the hot frames name the
layer (ladder probe, ground fetch, cache, dispatch) to look at next.

Examples
--------
::

    python -m repro.bench.profile
    python -m repro.bench.profile --index theorem1 --n 5000 --queries 400
    python -m repro.bench.profile --index serving --sort tottime --top 40
    python -m repro.bench.profile --json
    python -m repro.bench.profile --compare columnar,legacy --json

``--compare columnar,legacy`` times the same workload once per mode
(columnar fast paths on / pinned off) instead of profiling — the
one-command answer to "how much does the columnar core buy here?".
``--json`` switches either output to a machine-readable document
(consumed by the E23 bench and the ``columnar-speed`` CI job).
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from typing import Callable, List

from repro.bench.workloads import PROBLEMS, make_problem
from repro.core.columnar import columnar_disabled

INDEXES = ("theorem1", "theorem2", "baseline", "serving")
COMPARE_MODES = ("columnar", "legacy")


def _build_runner(args) -> Callable[[], None]:
    """The profiled body: build the index, answer every query."""
    problem = make_problem(args.problem, args.n, seed=args.seed)
    predicates = problem.predicates(args.queries, seed=args.seed + 1)

    if args.index == "theorem1":
        from repro.core.theorem1 import WorstCaseTopKIndex

        def run() -> None:
            index = WorstCaseTopKIndex(
                problem.elements, problem.prioritized_factory, seed=args.seed
            )
            for predicate in predicates:
                index.query(predicate, args.k)

    elif args.index == "theorem2":
        from repro.core.theorem2 import ExpectedTopKIndex

        def run() -> None:
            index = ExpectedTopKIndex(
                problem.elements,
                problem.prioritized_factory,
                problem.max_factory,
                seed=args.seed,
            )
            for predicate in predicates:
                index.query(predicate, args.k)

    elif args.index == "baseline":
        from repro.core.baseline import BinarySearchTopKIndex

        def run() -> None:
            index = BinarySearchTopKIndex(
                problem.elements, problem.prioritized_factory
            )
            for predicate in predicates:
                index.query(predicate, args.k)

    else:  # serving: the full batched/cached/replicated front door
        from repro.serving.engine import serving_engine

        def run() -> None:
            engine = serving_engine(
                problem.elements,
                problem.prioritized_factory,
                problem.max_factory,
                seed=args.seed,
            )
            with engine:
                batch = [(p, args.k) for p in predicates]
                for _ in range(args.rounds):
                    engine.serve(batch)

    return run


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.profile", description=__doc__.split("\n")[0]
    )
    parser.add_argument(
        "--problem", default="range1d", choices=sorted(PROBLEMS),
        help="workload from the problem registry (default: range1d)",
    )
    parser.add_argument(
        "--index", default="theorem2", choices=INDEXES,
        help="which index answers the queries (default: theorem2)",
    )
    parser.add_argument("--n", type=int, default=2000, help="dataset size")
    parser.add_argument("--queries", type=int, default=200, help="query count")
    parser.add_argument("--k", type=int, default=10, help="answer size k")
    parser.add_argument(
        "--rounds", type=int, default=2,
        help="serving only: how many times the batch repeats (warm cache)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--top", type=int, default=25, help="functions to print (default: 25)"
    )
    parser.add_argument(
        "--sort", default="cumulative",
        choices=("cumulative", "tottime", "ncalls"),
        help="pstats sort key (default: cumulative)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON document instead of text",
    )
    parser.add_argument(
        "--compare", default=None, metavar="MODES",
        help="comma-separated modes from {columnar,legacy}: time the "
        "workload once per mode instead of profiling",
    )
    args = parser.parse_args(argv)

    config = {
        "index": args.index, "problem": args.problem, "n": args.n,
        "queries": args.queries, "k": args.k, "seed": args.seed,
    }

    if args.compare is not None:
        modes = [mode.strip() for mode in args.compare.split(",") if mode.strip()]
        unknown = [mode for mode in modes if mode not in COMPARE_MODES]
        if not modes or unknown:
            parser.error(
                f"--compare takes modes from {set(COMPARE_MODES)}, got {args.compare!r}"
            )
        return _run_compare(args, modes, config)

    run = _build_runner(args)
    profiler = cProfile.Profile()
    profiler.enable()
    began = time.perf_counter()
    run()
    wall_seconds = time.perf_counter() - began
    profiler.disable()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort)
    if args.as_json:
        frames = []
        for func in stats.fcn_list[: args.top]:  # already sorted
            cc, nc, tottime, cumtime, _ = stats.stats[func]
            filename, line, name = func
            frames.append({
                "function": f"{filename}:{line}({name})",
                "ncalls": nc,
                "tottime": round(tottime, 6),
                "cumtime": round(cumtime, 6),
            })
        print(json.dumps(
            {**config, "sort": args.sort, "wall_seconds": round(wall_seconds, 6),
             "frames": frames},
            indent=2,
        ))
    else:
        print(
            f"# profile: index={args.index} problem={args.problem} "
            f"n={args.n} queries={args.queries} k={args.k} seed={args.seed}"
        )
        stats.print_stats(args.top)
    return 0


def _run_compare(args, modes: List[str], config: dict) -> int:
    """Time the workload once per mode; no profiler in the timed region."""
    timings = {}
    for mode in modes:
        run = _build_runner(args)
        if mode == "legacy":
            with columnar_disabled():
                began = time.perf_counter()
                run()
                timings[mode] = time.perf_counter() - began
        else:
            began = time.perf_counter()
            run()
            timings[mode] = time.perf_counter() - began

    doc = {**config, "modes": {
        mode: {"wall_seconds": round(seconds, 6)}
        for mode, seconds in timings.items()
    }}
    if "columnar" in timings and "legacy" in timings and timings["columnar"] > 0:
        doc["speedup"] = round(timings["legacy"] / timings["columnar"], 2)

    if args.as_json:
        print(json.dumps(doc, indent=2))
    else:
        print(
            f"# compare: index={args.index} problem={args.problem} "
            f"n={args.n} queries={args.queries} k={args.k} seed={args.seed}"
        )
        for mode, seconds in timings.items():
            print(f"{mode:>10}: {seconds * 1e3:9.2f} ms")
        if "speedup" in doc:
            print(f"{'speedup':>10}: {doc['speedup']:8.2f}x (legacy / columnar)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    sys.exit(main())
