"""ServingEngine and ResilientTopKIndex over a sharded backend."""

import random

from repro.resilience.guard import GuardPolicy, ResilientTopKIndex
from repro.serving.engine import ServingEngine

from oracles import oracle_top_k
from sharding_util import (
    make_sharded,
    make_uniform_elements,
    random_predicate,
)
from toy import RangePredicate

EVERYTHING = RangePredicate(-100, 10**9)


def make_engine(elements, num_shards=4, seed=51, **engine_kwargs):
    idx = make_sharded(elements, num_shards=num_shards, seed=seed)
    engine_kwargs.setdefault("pool_size", 2)
    engine_kwargs.setdefault("parallel_threshold", 3)
    return ServingEngine(idx, **engine_kwargs), idx


class TestEngineOverShards:
    def test_batch_answers_match_oracle(self):
        elements = make_uniform_elements(64, seed=51)
        with make_engine(elements)[0] as engine:
            rng = random.Random(51)
            requests = [
                (random_predicate(rng, elements), rng.randrange(1, 10))
                for _ in range(20)
            ]
            answers = engine.serve(requests)
            for (predicate, k), answer in zip(requests, answers):
                assert answer == oracle_top_k(elements, predicate, k)

    def test_parallel_fanout_used_for_wide_batches(self):
        elements = make_uniform_elements(64, seed=52)
        engine, idx = make_engine(elements, seed=52)
        with engine:
            requests = [
                (RangePredicate(i * 7, i * 7 + 200), 4) for i in range(12)
            ]
            answers = engine.serve(requests)
            for (predicate, k), answer in zip(requests, answers):
                assert answer == oracle_top_k(elements, predicate, k)
            assert engine.stats.parallel_batches >= 1
            assert idx.stats.parallel_batches >= 1

    def test_cache_stamped_by_router_epoch_and_lsn(self):
        elements = make_uniform_elements(48, seed=53)
        engine, idx = make_engine(elements, seed=53, pool_size=0)
        with engine:
            first = engine.query(EVERYTHING, 5)
            assert engine.query(EVERYTHING, 5) == first
            assert engine.cache.stats.hits >= 1
            # An update moves the summed LSN: the cached answer dies.
            extra = make_uniform_elements(1, seed=777)[0]
            if extra.weight not in idx._weights:
                idx.insert(extra)
                combined = elements + [extra]
            else:
                idx.delete(elements[0])
                combined = elements[1:]
            assert engine.query(EVERYTHING, 5) == oracle_top_k(
                combined, EVERYTHING, 5
            )

    def test_split_invalidates_cached_answers(self):
        elements = make_uniform_elements(48, seed=54)
        engine, idx = make_engine(elements, seed=54, pool_size=0)
        with engine:
            engine.query(EVERYTHING, 6)
            misses_before = engine.cache.stats.misses
            idx.split_shard()  # epoch bump -> every stamp is stale
            assert engine.query(EVERYTHING, 6) == oracle_top_k(
                elements, EVERYTHING, 6
            )
            assert engine.cache.stats.misses > misses_before

    def test_health_mirrors_sharding(self):
        elements = make_uniform_elements(48, seed=55)
        engine, idx = make_engine(elements, seed=55, pool_size=0)
        with engine:
            engine.query(EVERYTHING, 4)
            assert engine.health.shards == 4
            assert engine.health.shard_sizes == idx.router.shard_sizes()
            idx.split_shard()
            engine.query(EVERYTHING, 4)
            assert engine.health.shards == 5
            assert engine.health.shard_splits == 1
            assert 0.0 < engine.health.scatter_contact_ratio <= 1.0


class TestGuardOverShards:
    def test_guard_mirrors_sharding_health(self):
        elements = make_uniform_elements(48, seed=56)
        idx = make_sharded(elements, num_shards=4, seed=56)
        guard = ResilientTopKIndex(
            idx,
            elements=elements,
            policy=GuardPolicy(spot_check_rate=1.0),
        )
        answer, report = guard.query_with_report(EVERYTHING, 6)
        assert answer == oracle_top_k(elements, EVERYTHING, 6)
        assert not report.degraded
        assert guard.health.shards == 4
        assert guard.health.shard_sizes == idx.router.shard_sizes()

    def test_unavailable_shard_degrades_to_scan_rung(self):
        from repro.resilience.errors import ShardUnavailable

        elements = make_uniform_elements(48, seed=57)
        idx = make_sharded(elements, num_shards=3, seed=57)
        guard = ResilientTopKIndex(
            idx,
            elements=elements,
            policy=GuardPolicy(spot_check_rate=0.0),
        )
        top = max(elements, key=lambda e: e.weight)
        victim = idx.router.shard_for(top)
        victim.machine.mark_dead()

        def refuse(shard, trace=None):
            raise ShardUnavailable("durable record gone", shard=shard.name)

        idx._recover_shard = refuse
        answer, report = guard.query_with_report(EVERYTHING, 6)
        assert answer == oracle_top_k(elements, EVERYTHING, 6)
        assert report.degraded
        assert report.rung_unavailable == 1
        assert report.answered_by == "scan"
