"""Log-structured durable root: anchors, a manifest chain, compaction.

:class:`~repro.durability.store.DurableStore` commits its root by
overwriting one of two superblocks in place — harmless on a magnetic
disk, hostile on flash, where an in-place overwrite of the same logical
block on every checkpoint concentrates program/erase traffic and the
truncated WAL's abandoned chains are never declared dead, so the FTL
copies their garbage forever.  :class:`LogStructuredStore` keeps the
same store surface with a flash-native layout:

* **anchors** — blocks 0 and 1 hold ``("ANCHOR", version, anchor_seq,
  manifest_head)``.  They are rewritten only at *compaction* (anchor
  parity alternates with ``anchor_seq``), not per checkpoint, so the
  hottest blocks of the plain layout become the coldest ones here.
* **manifest chain** — an append-only chain of sealed blocks, each
  ``[("MANI", seq, next_id), ("ROOT", version, epoch, snapshots,
  wal_head, next_snapshot_id)]``.  A superblock commit *appends* one
  root record instead of overwriting anything; mounting walks the chain
  from the anchored head and adopts the **last** valid root.  The tail
  block is pre-allocated like every other chain in the store, so a torn
  commit fails its seal and mounting stops at the previous root.
* **space recycling** — chains dropped by a checkpoint (truncated WAL,
  expired snapshots) are retired into *limbo* and promoted to the free
  pool only once the superblock commit that stopped referencing them is
  durable.  :meth:`allocate` reuses free blocks **wipe-on-reuse**: the
  block is discarded (TRIM on flash, cleared on a plain disk) before it
  re-enters service, so a stale sealed chain block can never splice
  itself into a new chain after a crash.
* **compaction** (:meth:`compact`) — folds the ever-growing manifest
  into a single fresh record, flips the anchor, then discards every
  block the new root does not reference.  On a :class:`~repro.flash.
  disk.FlashDisk` those discards are the TRIMs that let garbage
  collection reclaim dead segments without copying them — the
  difference experiment E24 measures.

Crash ordering at compaction is load-bearing: (1) new manifest chain
durable, (2) anchor flip durable, (3) discards.  A crash inside (1) or
(2) leaves the old anchor pointing at the old, intact manifest; a crash
inside (3) leaves the new anchor pointing at the new, intact manifest —
either way recovery mounts a complete root.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.durability.store import (
    FORMAT_VERSION,
    DurableStore,
    SnapshotEntry,
    unseal,
)
from repro.em.model import Disk, block_checksum
from repro.resilience.errors import RecoveryError, SnapshotIntegrityError

_ANCHOR_BLOCKS = (0, 1)
_MANI_KIND = "MANI"


def is_log_structured(disk: Disk) -> bool:
    """Whether ``disk`` carries a :class:`LogStructuredStore` layout.

    Peeks at the anchor blocks raw (no context, no charge): a disk
    formatted by this store has a sealed ``ANCHOR`` record in block 0
    or 1, where the plain layout keeps ``SUPER`` records.  Used by
    recovery to mount the right store class without being told.
    """
    for block_id in _ANCHOR_BLOCKS:
        if block_id >= disk.num_blocks:
            return False
        try:
            payload = unseal(list(disk.raw_read(block_id)), block_id=block_id)
        except SnapshotIntegrityError:
            continue
        record = payload[0] if len(payload) == 1 else None
        if isinstance(record, tuple) and record and record[0] == "ANCHOR":
            return True
    return False


def open_store(disk: Disk, B: int = 16, M: Optional[int] = None) -> DurableStore:
    """Mount ``disk`` with whichever store class formatted it."""
    if is_log_structured(disk):
        return LogStructuredStore.open(disk, B=B, M=M)
    return DurableStore.open(disk, B=B, M=M)


class LogStructuredStore(DurableStore):
    """Append-only root publication over the plain store's block layer.

    Drop-in for :class:`DurableStore` — same ``allocate`` /
    ``write_sealed`` / chain / ``commit_superblock`` surface, so the
    WAL, snapshots, recovery, replication and anti-entropy layers run
    unmodified.  See the module docstring for the on-disk layout.
    """

    def __init__(
        self,
        ctx=None,
        B: int = 16,
        M: Optional[int] = None,
        _format: bool = True,
    ) -> None:
        super().__init__(ctx=ctx, B=B, M=M, _format=False)
        self.anchor_seq = 0
        self.compactions = 0
        self._mani_head: Optional[int] = None
        self._mani_open: Optional[int] = None
        self._mani_seq = 0
        self._free: List[int] = []
        self._limbo: List[int] = []
        if _format:
            for _ in _ANCHOR_BLOCKS:
                self.ctx.disk.allocate()
            self._mani_head = self.ctx.disk.allocate()
            self._mani_open = self._mani_head
            self._append_root()
            self._write_anchor(target=_ANCHOR_BLOCKS[0])
            self.ctx.flush()

    # ------------------------------------------------------------------
    # Space recycling
    # ------------------------------------------------------------------
    @property
    def free_blocks(self) -> int:
        """Blocks ready for reuse (dead, discarded on reallocation)."""
        return len(self._free)

    @property
    def limbo_blocks(self) -> int:
        """Retired blocks awaiting the commit that unreferences them."""
        return len(self._limbo)

    def allocate(self) -> int:
        if not self._free:
            return self.ctx.disk.allocate()
        block_id = self._free.pop(0)
        # Wipe-on-reuse: the block's stale sealed contents must be
        # unreadable before the id re-enters service, or a crash could
        # let recovery splice the retired chain it used to belong to
        # into a live one (their (kind, seq) headers can collide).
        self.ctx.disk.discard(block_id)
        self.ctx.drop_frame(block_id)
        return block_id

    def retire_chain(self, head: Optional[int]) -> None:
        if head is None:
            return
        self._limbo.extend(self._chain_blocks(head))

    # ------------------------------------------------------------------
    # Root publication
    # ------------------------------------------------------------------
    def commit_superblock(self) -> None:
        """Publish the root by appending one manifest record.

        Nothing is overwritten: the record goes into the pre-allocated
        manifest tail, a new tail is pre-allocated, and the flush makes
        it durable.  Until then, mounting sees the previous root; torn,
        the new record fails its seal and mounting *still* sees the
        previous root.  Once the commit is durable, limbo blocks —
        retired by the checkpoint this commit concludes — are finally
        unreferenced from every mountable root and re-enter the free
        pool.
        """
        self.epoch += 1
        self._append_root()
        self.ctx.flush()
        self._free.extend(sorted(set(self._limbo)))
        self._limbo.clear()

    def _append_root(self) -> None:
        next_id = self.allocate()
        record = (
            "ROOT",
            FORMAT_VERSION,
            self.epoch,
            tuple(entry.as_record() for entry in self.snapshots),
            self.wal_head,
            self.next_snapshot_id,
        )
        self.write_sealed(
            self._mani_open, [(_MANI_KIND, self._mani_seq, next_id), record]
        )
        self._mani_open = next_id
        self._mani_seq += 1

    def _write_anchor(self, target: int) -> None:
        self.write_sealed(
            target, [("ANCHOR", FORMAT_VERSION, self.anchor_seq, self._mani_head)]
        )

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Fold the manifest, flip the anchor, discard dead blocks.

        Returns the number of blocks discarded.  On flash the discards
        are TRIMs — after this, garbage collection reclaims every dead
        segment for free instead of copying its pages around.
        """
        self._mani_head = self.allocate()
        self._mani_open = self._mani_head
        self._mani_seq = 0
        self._append_root()
        self.ctx.flush()
        self.anchor_seq += 1
        self._write_anchor(target=_ANCHOR_BLOCKS[self.anchor_seq % 2])
        self.ctx.flush()
        live = set(self.reachable_blocks())
        trimmed = 0
        for block_id in range(self.ctx.disk.num_blocks):
            if block_id in live:
                continue
            self.ctx.disk.discard(block_id)
            self.ctx.drop_frame(block_id)
            trimmed += 1
        self._free = sorted(set(range(self.ctx.disk.num_blocks)) - live)
        self._limbo.clear()
        self.compactions += 1
        return trimmed

    # ------------------------------------------------------------------
    # Mounting
    # ------------------------------------------------------------------
    def _load_superblock(self) -> None:
        best: Optional[Tuple] = None
        for block_id in _ANCHOR_BLOCKS:
            try:
                payload = self.read_sealed(block_id)
            except SnapshotIntegrityError:
                continue
            if len(payload) != 1:
                continue
            record = payload[0]
            if not (
                isinstance(record, tuple)
                and len(record) == 4
                and record[0] == "ANCHOR"
            ):
                continue
            if record[1] != FORMAT_VERSION:
                raise SnapshotIntegrityError(
                    f"anchor {block_id} has format version {record[1]}, "
                    f"this build reads version {FORMAT_VERSION}"
                )
            if best is None or record[2] > best[2]:
                best = record
        if best is None:
            raise RecoveryError(
                "no valid anchor: both anchor blocks are damaged or the "
                "disk was never formatted by a LogStructuredStore"
            )
        self.anchor_seq = best[2]
        self._mani_head = best[3]

        root: Optional[Tuple] = None
        block_id: Optional[int] = self._mani_head
        seq = 0
        while block_id is not None and block_id < self.ctx.disk.num_blocks:
            try:
                payload = self.read_sealed(block_id)
            except SnapshotIntegrityError:
                break  # the pre-allocated open tail (or a torn commit)
            if len(payload) != 2:
                break
            header, record = payload
            if not (
                isinstance(header, tuple)
                and len(header) == 3
                and header[0] == _MANI_KIND
                and header[1] == seq
            ):
                break
            if not (
                isinstance(record, tuple)
                and len(record) == 6
                and record[0] == "ROOT"
            ):
                break
            root = record
            block_id = header[2]
            seq += 1
        if root is None:
            raise RecoveryError(
                f"anchor {self.anchor_seq} points at manifest block "
                f"{self._mani_head} but no valid root record is readable"
            )
        # Resume appending where the last valid root's pre-allocated
        # tail sits; a torn record there is simply rewritten (it never
        # sealed, so no durable state is overwritten).
        self._mani_open = block_id
        self._mani_seq = seq
        _, _, self.epoch, snapshots, self.wal_head, self.next_snapshot_id = root
        self.snapshots = [SnapshotEntry.from_record(r) for r in snapshots]
        live = set(self.reachable_blocks())
        self._free = sorted(set(range(self.ctx.disk.num_blocks)) - live)
        self._limbo = []
        if self._mani_open is None or self._mani_open >= self.ctx.disk.num_blocks:
            # Only reachable through a damaged next-pointer; give the
            # manifest a sound tail to continue on.
            self._mani_open = self.allocate()

    # ------------------------------------------------------------------
    # Audit surface
    # ------------------------------------------------------------------
    def reachable_blocks(self) -> List[int]:
        """Anchors + manifest chain + every chain the root references."""
        out = list(_ANCHOR_BLOCKS)
        if self._mani_head is not None:
            out.extend(self._chain_blocks(self._mani_head))
        for entry in self.snapshots:
            out.extend(self._chain_blocks(entry.head_block))
        if self.wal_head is not None:
            out.extend(self._chain_blocks(self.wal_head))
        return out

    def fingerprints(self) -> Dict[int, Tuple[int, bool]]:
        """The base walk plus the manifest chain.

        The manifest's terminal block is the pre-allocated open tail —
        unreadable by design, excluded exactly like the WAL's, so a
        healthy replica never fingerprints as damaged.  (Blocks 0 and 1
        are fingerprinted by the base walk; here they hold the anchors,
        which seal-verify the same way superblocks do.)
        """
        out = super().fingerprints()
        for block_id in _ANCHOR_BLOCKS:
            entry = out.get(block_id)
            if entry is None or entry[1]:
                continue
            self.ctx.stats.reads += 1
            if not list(self.ctx.disk.raw_read(block_id)):
                # An anchor the parity has not yet flipped to is blank
                # by design (anchors are written only at compaction) —
                # blank is not damage, so don't report it as such.
                del out[block_id]
        if self._mani_head is None:
            return out
        chain = self._chain_blocks(self._mani_head)
        for position, block_id in enumerate(chain):
            records = list(self.ctx.disk.raw_read(block_id))
            self.ctx.stats.reads += 1
            try:
                unseal(records, block_id=block_id)
                seal_ok = True
            except SnapshotIntegrityError:
                seal_ok = False
            if not seal_ok and position == len(chain) - 1:
                continue
            out[block_id] = (block_checksum(records), seal_ok)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogStructuredStore(epoch={self.epoch}, anchor_seq={self.anchor_seq}, "
            f"manifest={self._mani_head}..{self._mani_open}, "
            f"free={len(self._free)}, limbo={len(self._limbo)}, "
            f"blocks={self.ctx.disk.num_blocks})"
        )


__all__ = ["LogStructuredStore", "is_log_structured", "open_store"]
