"""ServingEngine: admission, caching, dispatch, and health mirroring."""

from __future__ import annotations

import pytest

from repro.core.problem import top_k_of
from repro.core.theorem2 import ExpectedTopKIndex
from repro.durability.durable import DurableTopKIndex
from repro.resilience import AdmissionRejected, SimulatedCrash
from repro.serving import QueryRequest, ServingEngine
from toy import RangePredicate, ToyMax, ToyPrioritized

from serving_util import make_elements, make_engine, make_requests


def oracle(elements, requests):
    return [top_k_of(elements, r.predicate, r.k) for r in requests]


class TestExactness:
    def test_serve_matches_oracle(self):
        elements = make_elements()
        requests = make_requests(50, seed=1)
        with make_engine(elements) as engine:
            assert engine.serve(requests) == oracle(elements, requests)

    def test_repeat_batches_hit_cache_and_stay_exact(self):
        elements = make_elements()
        requests = make_requests(30, seed=2)
        expected = oracle(elements, requests)
        with make_engine(elements) as engine:
            assert engine.serve(requests) == expected
            hits_before = engine.cache.stats.hits
            assert engine.serve(requests) == expected
            assert engine.cache.stats.hits > hits_before

    def test_query_single_request_path(self):
        elements = make_elements()
        p = RangePredicate(0.0, 300.0)
        with make_engine(elements) as engine:
            assert engine.query(p, 5) == top_k_of(elements, p, 5)

    def test_updates_invalidate_cached_answers(self):
        elements = make_elements()
        requests = make_requests(20, seed=3)
        with make_engine(elements) as engine:
            engine.serve(requests)  # warm
            extras = make_elements(4, seed=91, weight_offset=10_000.0)
            for extra in extras:
                engine.backend.insert(extra)
            assert engine.serve(requests) == oracle(
                elements + extras, requests
            )

    def test_raw_reduction_backend_batches_without_cache(self):
        # No LSN source at all: the cache must disable itself (a cached
        # answer could never be invalidated), batching still serves.
        elements = make_elements()

        class Plain:
            def __init__(self, inner):
                self.inner = inner
                self.n = inner.n

            def query(self, predicate, k, **kwargs):
                return self.inner.query(predicate, k, **kwargs)

        backend = Plain(
            ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=3)
        )
        requests = make_requests(20, seed=4)
        with ServingEngine(backend) as engine:
            assert not engine.cache.enabled
            assert engine.serve(requests) == oracle(elements, requests)
            assert engine.serve(requests) == oracle(elements, requests)
            assert engine.cache.stats.lookups == 0

    def test_durable_backend_caches_by_applied_lsn(self):
        elements = make_elements()
        durable = DurableTopKIndex(
            ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=3)
        )
        requests = make_requests(20, seed=5)
        with ServingEngine(durable) as engine:
            assert engine._pool is None  # no cluster, no dispatch pool
            assert engine.serve(requests) == oracle(elements, requests)
            assert engine.serve(requests) == oracle(elements, requests)
            assert engine.cache.stats.hits > 0
            extra = make_elements(1, seed=55, weight_offset=20_000.0)[0]
            durable.insert(extra)
            assert engine.serve(requests) == oracle(
                elements + [extra], requests
            )


class TestAdmission:
    def test_shed_beyond_max_pending(self):
        elements = make_elements()
        with make_engine(elements, max_pending=3) as engine:
            p = RangePredicate(0.0, 479.0)
            for _ in range(3):
                engine.submit(p, 2)
            with pytest.raises(AdmissionRejected) as excinfo:
                engine.submit(p, 2)
            assert excinfo.value.pending == 3
            assert engine.stats.load_sheds == 1
            # The queued requests survive the shed and drain exactly.
            answers = engine.drain()
            assert answers == [top_k_of(elements, p, 2)] * 3
            assert engine.pending == 0

    def test_drain_chunks_by_max_batch(self):
        elements = make_elements()
        requests = make_requests(25, seed=6)
        with make_engine(elements, max_batch=4) as engine:
            assert engine.serve(requests) == oracle(elements, requests)
            assert engine.stats.batches == 7  # ceil(25 / 4)


class TestParallelDispatch:
    def test_parallel_batches_stay_exact(self):
        elements = make_elements(n=64, seed=13)
        requests = make_requests(48, seed=7)
        with make_engine(
            elements, parallel_threshold=1, pool_size=3, cache_capacity=0
        ) as engine:
            assert engine.serve(requests) == oracle(elements, requests)
            assert engine.stats.parallel_batches > 0

    def test_worker_crash_falls_back_to_cluster_path(self):
        elements = make_elements(n=64, seed=13)
        requests = make_requests(48, seed=8)
        with make_engine(
            elements, parallel_threshold=1, pool_size=3, cache_capacity=0
        ) as engine:
            cluster = engine.backend
            victim = next(
                r for r in cluster.replicas if not r.is_primary
            )
            original = victim.durable.query

            def crashing(*args, **kwargs):
                raise SimulatedCrash("injected mid-dispatch")

            victim.durable.query = crashing
            try:
                assert engine.serve(requests) == oracle(elements, requests)
            finally:
                victim.durable.query = original
            assert engine.stats.dispatch_failovers > 0

    def test_pool_disabled_serves_serially(self):
        elements = make_elements()
        requests = make_requests(20, seed=9)
        with make_engine(
            elements, pool_size=0, parallel_threshold=1
        ) as engine:
            assert engine._pool is None
            assert engine.serve(requests) == oracle(elements, requests)
            assert engine.stats.parallel_batches == 0


class TestFailoverEpoch:
    def test_promotion_invalidates_cached_answers(self):
        elements = make_elements()
        requests = make_requests(20, seed=10)
        with make_engine(elements) as engine:
            cluster = engine.backend
            engine.serve(requests)  # warm at epoch 0
            epoch_before = cluster.commit_epoch
            cluster.primary.mark_dead()
            cluster.stats.primary_crashes += 1
            assert engine.serve(requests) == oracle(elements, requests)
            assert cluster.commit_epoch == epoch_before + 1
            assert engine.cache.stats.epoch_invalidations > 0

    def test_staleness_budget_serves_bounded_lag(self):
        elements = make_elements()
        p = RangePredicate(0.0, 479.0)
        extras = make_elements(3, seed=71, weight_offset=30_000.0)
        with make_engine(elements, max_staleness=2) as engine:
            stale = engine.query(p, 4)
            assert stale == top_k_of(elements, p, 4)
            # Two updates: within the budget, the stale answer may serve.
            for extra in extras[:2]:
                engine.backend.insert(extra)
            assert engine.query(p, 4) == stale
            assert engine.cache.stats.hits >= 1
            # A third update exceeds the budget: fresh answer required.
            engine.backend.insert(extras[2])
            assert engine.query(p, 4) == top_k_of(elements + extras, p, 4)


class TestHealthMirroring:
    def test_summary_carries_serving_and_replication_counters(self):
        elements = make_elements()
        requests = make_requests(30, seed=11)
        with make_engine(elements) as engine:
            engine.serve(requests)
            engine.serve(requests)
            health = engine.health
            assert health.served_queries == engine.stats.queries == 60
            assert health.served_batches == engine.stats.batches
            assert health.cache_hits == engine.cache.stats.hits > 0
            assert health.cache_hit_rate == engine.cache.stats.hit_rate
            assert health.serving_qps > 0
            assert health.serving_avg_latency > 0
            assert set(health.replica_lag) == {
                r.name for r in engine.backend.replicas
            }

    def test_summary_reset_restores_defaults(self):
        elements = make_elements()
        with make_engine(elements) as engine:
            engine.serve(make_requests(10, seed=12))
            engine.health.reset()
            assert engine.health.served_queries == 0
            assert engine.health.cache_hit_rate == 0.0
            assert engine.health.replica_lag == {}
