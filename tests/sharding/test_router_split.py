"""Online splits/merges, epoch safety, and the shard-loss ladder."""

import random
import threading

import pytest

from repro.resilience.errors import (
    InvalidConfiguration,
    ShardUnavailable,
    StaleShardMap,
)
from repro.sharding import ShardMap

from oracles import oracle_top_k
from sharding_util import (
    make_sharded,
    make_uniform_elements,
    make_zipf_elements,
    random_predicate,
)
from toy import RangePredicate

EVERYTHING = RangePredicate(-100, 10**9)


class TestSplitMerge:
    def test_split_preserves_exactness_and_bumps_epoch(self):
        elements = make_uniform_elements(80, seed=21)
        idx = make_sharded(elements, num_shards=3, seed=21)
        epoch_before = idx.router.epoch
        donor, new = idx.split_shard()
        # invalidate at start + install at end: two bumps minimum.
        assert idx.router.epoch >= epoch_before + 2
        assert idx.router.num_shards == 4
        assert idx.n == len(elements)
        donor_elems = set(idx.router.shards[donor].elements)
        new_elems = set(idx.router.shards[new].elements)
        assert donor_elems and new_elems and not (donor_elems & new_elems)
        rng = random.Random(21)
        for _ in range(10):
            predicate = random_predicate(rng, elements)
            k = rng.randrange(1, 15)
            assert idx.query(predicate, k) == oracle_top_k(elements, predicate, k)

    def test_split_routes_updates_to_new_owner(self):
        elements = make_uniform_elements(60, seed=22)
        idx = make_sharded(elements, num_shards=2, seed=22)
        idx.split_shard()
        fresh = make_uniform_elements(10, seed=99)
        added = []
        weights = {e.weight for e in elements}
        for e in fresh:
            if e.weight not in weights:
                idx.insert(e)
                weights.add(e.weight)
                added.append(e)
        combined = elements + added
        assert idx.query(EVERYTHING, 12) == oracle_top_k(combined, EVERYTHING, 12)
        for e in added:
            assert e in idx

    def test_merge_restores_topology_and_exactness(self):
        elements = make_uniform_elements(80, seed=23)
        idx = make_sharded(elements, num_shards=3, seed=23)
        donor, new = idx.split_shard()
        survivor = idx.merge_shards(donor, new)
        assert survivor == donor
        assert new not in idx.router.shards
        assert idx.router.num_shards == 3
        assert idx.n == len(elements)
        rng = random.Random(23)
        for _ in range(8):
            predicate = random_predicate(rng, elements)
            assert idx.query(predicate, 9) == oracle_top_k(elements, predicate, 9)
        assert idx.stats.splits == 1 and idx.stats.merges == 1

    def test_single_bucket_shard_cannot_split(self):
        elements = make_uniform_elements(30, seed=24)
        idx = make_sharded(elements, num_shards=2, num_buckets=2, seed=24)
        with pytest.raises(InvalidConfiguration):
            idx.split_shard()

    def test_rebalance_splits_hot_shard(self):
        # Range partitioning + zipf positions: force imbalance by
        # merging first, then let rebalance undo it.
        elements = make_uniform_elements(90, seed=25)
        idx = make_sharded(elements, num_shards=3, seed=25)
        a, b = sorted(idx.router.map.shard_names)[:2]
        idx.merge_shards(a, b)
        # Two shards left at ~2:1; a 1.2x-mean ceiling flags the big one.
        actions = idx.rebalance(max_ratio=1.2)
        assert actions  # the merged double-size shard split back
        assert idx.stats.rebalances == 1
        assert idx.query(EVERYTHING, 10) == oracle_top_k(elements, EVERYTHING, 10)


class TestEpochSafety:
    def test_mid_query_split_forces_retry_and_stays_exact(self):
        elements = make_uniform_elements(80, seed=31)
        idx = make_sharded(elements, num_shards=3, seed=31)
        fired = {"done": False}
        original = idx.executor._probe_fn

        def probe_with_split(shard, predicate, k_prime, trace):
            if not fired["done"]:
                fired["done"] = True
                idx.split_shard()  # topology changes mid-scatter
            return original(shard, predicate, k_prime, trace)

        idx.executor._probe_fn = probe_with_split
        answer = idx.query(EVERYTHING, 11)
        assert answer == oracle_top_k(elements, EVERYTHING, 11)
        assert fired["done"]
        assert idx.stats.stale_map_retries >= 1

    def test_map_churn_storm_raises_stale_shard_map(self):
        elements = make_uniform_elements(40, seed=32)
        idx = make_sharded(elements, num_shards=2, seed=32)
        original = idx.executor._probe_fn

        def probe_with_churn(shard, predicate, k_prime, trace):
            idx.router.invalidate()  # every probe invalidates the map
            return original(shard, predicate, k_prime, trace)

        idx.executor._probe_fn = probe_with_churn
        with pytest.raises(StaleShardMap) as excinfo:
            idx.query(EVERYTHING, 5)
        assert excinfo.value.current > excinfo.value.epoch

    def test_install_requires_monotone_epoch(self):
        elements = make_uniform_elements(30, seed=33)
        idx = make_sharded(elements, num_shards=2, seed=33)
        stale = ShardMap(
            epoch=idx.router.epoch,
            bucket_to_shard=idx.router.map.bucket_to_shard,
        )
        with pytest.raises(InvalidConfiguration):
            idx.router.install(stale)

    def test_query_blocks_inside_topology_change_window(self):
        """A query must not run entirely inside invalidate -> install.

        Epoch validation alone misses it: the query would snapshot the
        already-bumped epoch over half-moved shard contents and pass
        the gather-time check.  The in-flux latch makes it block until
        the change settles (here: aborts) instead.
        """
        elements = make_uniform_elements(60, seed=34)
        idx = make_sharded(elements, num_shards=3, seed=34)
        window = idx.router.topology_change()
        window.__enter__()
        assert idx.router.in_flux
        result = {}
        worker = threading.Thread(
            target=lambda: result.setdefault("answer", idx.query(EVERYTHING, 7))
        )
        worker.start()
        worker.join(timeout=0.3)
        assert worker.is_alive()  # blocked in snapshot, not answering
        assert "answer" not in result
        window.__exit__(None, None, None)  # abort: no install happened
        worker.join(timeout=5)
        assert not worker.is_alive()
        assert not idx.router.in_flux
        assert result["answer"] == oracle_top_k(elements, EVERYTHING, 7)

    def test_flux_that_never_settles_raises_stale_shard_map(self):
        elements = make_uniform_elements(30, seed=35)
        idx = make_sharded(elements, num_shards=2, seed=35)
        idx.router.flux_timeout = 0.05
        window = idx.router.topology_change()
        window.__enter__()
        try:
            with pytest.raises(StaleShardMap):
                idx.query(EVERYTHING, 3)
        finally:
            window.__exit__(None, None, None)
        # The latch released: queries flow again.
        assert idx.query(EVERYTHING, 3) == oracle_top_k(elements, EVERYTHING, 3)

    def test_nested_topology_changes_are_rejected(self):
        elements = make_uniform_elements(30, seed=36)
        idx = make_sharded(elements, num_shards=2, seed=36)
        with idx.router.topology_change():
            with pytest.raises(InvalidConfiguration):
                with idx.router.topology_change():
                    pass  # pragma: no cover
        assert not idx.router.in_flux


class TestShardLoss:
    def test_single_shard_crash_sweep_recovers_everywhere(self):
        elements = make_uniform_elements(72, seed=41)
        idx = make_sharded(elements, num_shards=4, seed=41)
        for round_, name in enumerate(sorted(idx.router.shards)):
            idx.router.shards[name].machine.mark_dead()
            # k = n cannot prune (the threshold never fills), so the
            # dead shard is guaranteed to be probed and recovered.
            k = len(elements)
            assert idx.query(EVERYTHING, k) == oracle_top_k(
                elements, EVERYTHING, k
            )
            assert idx.router.shards[name].machine.alive
            assert idx.stats.shard_recoveries == round_ + 1
        assert idx.stats.shard_losses == 4

    def test_crash_during_split_recovers_and_completes(self):
        elements = make_uniform_elements(64, seed=42)
        idx = make_sharded(elements, num_shards=2, seed=42)
        donor_name = max(
            sorted(idx.router.shard_sizes()),
            key=lambda s: idx.router.shard_sizes()[s],
        )
        donor = idx.router.shards[donor_name]
        # Kill the donor machine partway through the handover deletes.
        donor.machine.plan.schedule_crash(at_io=6)
        donor.machine.plan.arm()
        idx.split_shard(donor_name)
        assert idx.stats.shard_losses >= 1
        assert idx.stats.shard_recoveries >= 1
        assert idx.n == len(elements)
        rng = random.Random(42)
        for _ in range(8):
            predicate = random_predicate(rng, elements)
            assert idx.query(predicate, 7) == oracle_top_k(elements, predicate, 7)

    def test_unrecoverable_shard_raises_without_partial(self):
        elements = make_uniform_elements(48, seed=43)
        idx = make_sharded(elements, num_shards=3, seed=43)
        # The shard holding the global max is always visited first.
        top = max(elements, key=lambda e: e.weight)
        victim = idx.router.shard_for(top)
        victim.machine.mark_dead()

        def refuse(shard, trace=None):
            raise ShardUnavailable("durable record gone", shard=shard.name)

        idx._recover_shard = refuse
        with pytest.raises(ShardUnavailable):
            idx.query(EVERYTHING, 6)

    def test_unrecoverable_shard_serves_partial_with_flag(self):
        elements = make_zipf_elements(48, seed=44)
        idx = make_sharded(
            elements, num_shards=3, seed=44, allow_partial=True
        )
        # The shard holding the global max is always visited first.
        top = max(elements, key=lambda e: e.weight)
        victim = idx.router.shard_for(top)
        victim.machine.mark_dead()

        def refuse(shard, trace=None):
            raise ShardUnavailable("durable record gone", shard=shard.name)

        idx._recover_shard = refuse
        surviving = [
            e
            for name, shard in idx.router.shards.items()
            if name != victim.name
            for e in shard.elements
        ]
        answer = idx.query(EVERYTHING, 10)
        assert idx.last_partial
        assert idx.stats.partial_answers >= 1
        assert answer == oracle_top_k(surviving, EVERYTHING, 10)

    def test_unrecoverable_donor_mid_split_keeps_moving_elements_reachable(self):
        """Split failure atomicity: the recipient is published anyway.

        The recipient durably holds every moving element before the
        donor deletes begin, so a donor whose disk dies unrecoverably
        mid-handover must not strand them: the new map is installed,
        the moving elements serve from the recipient, and the dead
        donor degrades through the ordinary shard-loss ladder.
        """
        elements = make_uniform_elements(64, seed=46)
        idx = make_sharded(elements, num_shards=2, seed=46)
        sizes = idx.router.shard_sizes()
        donor_name = max(sorted(sizes), key=lambda s: sizes[s])
        donor = idx.router.shards[donor_name]
        before = set(idx.router.shards)

        original_update = idx._update
        seen = {"deletes": 0}

        def dying_update(shard, op, element):
            if op == "delete" and shard.name == donor_name:
                seen["deletes"] += 1
                if seen["deletes"] == 3:  # disk dies mid-handover
                    donor.machine.mark_dead()
                    raise ShardUnavailable(
                        "durable record gone", shard=donor_name
                    )
            return original_update(shard, op, element)

        idx._update = dying_update
        with pytest.raises(ShardUnavailable):
            idx.split_shard(donor_name)
        assert not idx.router.in_flux

        # The new shard is registered and owns the moving buckets.
        new_names = set(idx.router.shards) - before
        assert len(new_names) == 1
        new_name = new_names.pop()
        moving = set(idx.router.shards[new_name].elements)
        assert moving
        assert moving == {
            e
            for e in elements
            if idx.router.map.bucket_to_shard[
                idx.router.partitioner.bucket_of(e)
            ]
            == new_name
        }

        # The donor stays down; partial queries still serve everything
        # that is not stranded on it — all moving elements included.
        def refuse(shard, trace=None):
            raise ShardUnavailable("durable record gone", shard=shard.name)

        idx._recover_shard = refuse
        reachable = [
            e
            for name, shard in idx.router.shards.items()
            if name != donor_name
            for e in shard.elements
        ]
        assert moving <= set(reachable)
        answer = idx.query(EVERYTHING, len(elements), allow_partial=True)
        assert answer == oracle_top_k(reachable, EVERYTHING, len(elements))

    def test_partial_flag_is_per_call_under_concurrency(self):
        """allow_partial must never leak between concurrent queries.

        A strict query racing partial-tolerant ones has to raise — the
        per-call decision rides on the query's own trace, not shared
        index state.
        """
        from concurrent.futures import ThreadPoolExecutor

        elements = make_uniform_elements(48, seed=47)
        idx = make_sharded(elements, num_shards=3, seed=47, allow_partial=True)
        top = max(elements, key=lambda e: e.weight)
        victim = idx.router.shard_for(top)
        victim.machine.mark_dead()

        def refuse(shard, trace=None):
            raise ShardUnavailable("durable record gone", shard=shard.name)

        idx._recover_shard = refuse
        surviving = [
            e
            for name, shard in idx.router.shards.items()
            if name != victim.name
            for e in shard.elements
        ]
        expected = oracle_top_k(surviving, EVERYTHING, 8)
        with ThreadPoolExecutor(max_workers=4) as pool:
            loose = [pool.submit(idx.query, EVERYTHING, 8) for _ in range(8)]
            strict = [
                pool.submit(idx.query, EVERYTHING, 8, False) for _ in range(8)
            ]
            for future in loose:
                assert future.result() == expected
            for future in strict:
                with pytest.raises(ShardUnavailable):
                    future.result()
        assert idx.stats.partial_answers >= 8

    def test_replicated_shard_fails_over_internally(self):
        elements = make_uniform_elements(60, seed=45)
        idx = make_sharded(
            elements, num_shards=2, seed=45, replicas_per_shard=2
        )
        shard = idx.router.shards[sorted(idx.router.shards)[0]]
        shard.backend.replicas[0].mark_dead()  # primary of the set
        assert idx.query(EVERYTHING, 9) == oracle_top_k(elements, EVERYTHING, 9)
        # The set promoted a follower; the shard never counted as lost.
        assert idx.stats.shard_losses == 0
        epoch, _ = idx.read_stamp()
        assert epoch >= 1  # the failover epoch surfaces in the stamp
