"""Brownout ladder: graceful degradation under sustained queue growth.

Load shedding is the serving engine's *last* line of defence — it turns
excess demand away.  The brownout ladder is the line before it: under
sustained overload the engine trades answer quality for capacity, one
explicit rung at a time, and climbs back down as soon as pressure
clears.  Rungs, in escalation order:

``LEVEL_HEALTHY`` (0)
    Normal serving: the configured staleness budget, full ``k``, strict
    (non-partial) sharded answers.
``LEVEL_STALE`` (1)
    The result cache's staleness budget is widened to
    ``BrownoutPolicy.staleness_budget`` LSNs: hot answers keep serving
    across more updates, so traversals are saved exactly when they are
    scarcest.  Cached answers remain epoch-safe (a failover still
    invalidates unconditionally) — this rung only relaxes *freshness*,
    never correctness of what was true at the stamped LSN.
``LEVEL_REDUCED_K`` (2)
    Requested ``k`` is capped at ``BrownoutPolicy.k_cap``: a truncated
    answer costs proportionally less to compute and to merge.  Answers
    that were actually truncated are **flagged** (they are exact
    prefixes, but not the full answer the client asked for).
``LEVEL_PARTIAL`` (3)
    Sharded backends serve with ``allow_partial``: a lost shard no
    longer fails the query — surviving shards answer, flagged.  On a
    healthy topology this rung changes nothing (and flags nothing).

Escalation: the controller observes the queue depth at every drain;
``queue_high`` or more pending for ``sustain_drains`` consecutive
observations climbs one rung (and resets the streak).  De-escalation
is symmetric and conservative: ``queue_low`` or fewer for
``recover_drains`` consecutive observations steps one rung down.  Every
transition is recorded (`BrownoutStats`) and mirrored into
:class:`~repro.resilience.guard.HealthSummary`, so operators see the
ladder position the same place they see sheds and latency.

The controller is deterministic and wall-clock-free: it reacts only to
the queue-depth sequence it is shown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.resilience.errors import InvalidConfiguration

LEVEL_HEALTHY = 0
LEVEL_STALE = 1
LEVEL_REDUCED_K = 2
LEVEL_PARTIAL = 3

LEVEL_NAMES = ("healthy", "stale_ok", "reduced_k", "partial_ok")


@dataclass(frozen=True)
class BrownoutPolicy:
    """Thresholds and per-rung budgets of the brownout ladder.

    Attributes
    ----------
    queue_high / queue_low:
        Pending-queue watermarks.  At or above ``queue_high`` the
        pressure streak grows; at or below ``queue_low`` the recovery
        streak grows.  In between, both streaks reset (hysteresis).
    sustain_drains / recover_drains:
        Consecutive observations over (under) the watermark required to
        climb (descend) one rung — a single bursty drain never flips
        the ladder.
    staleness_budget:
        The widened cache staleness budget (LSNs) rungs >= 1 serve
        under.
    k_cap:
        The effective ``k`` ceiling rungs >= 2 serve under.
    max_level:
        The highest rung this deployment may climb to (e.g. 2 for an
        unsharded backend where ``partial_ok`` is meaningless).
    """

    queue_high: int = 64
    queue_low: int = 8
    sustain_drains: int = 2
    recover_drains: int = 3
    staleness_budget: int = 64
    k_cap: int = 3
    max_level: int = LEVEL_PARTIAL

    def __post_init__(self) -> None:
        if self.queue_low > self.queue_high:
            raise InvalidConfiguration(
                f"queue_low ({self.queue_low}) must be <= queue_high "
                f"({self.queue_high})"
            )
        if self.sustain_drains < 1 or self.recover_drains < 1:
            raise InvalidConfiguration(
                "sustain_drains and recover_drains must be >= 1"
            )
        if self.k_cap < 1:
            raise InvalidConfiguration(f"k_cap must be >= 1, got {self.k_cap}")
        if not LEVEL_HEALTHY <= self.max_level <= LEVEL_PARTIAL:
            raise InvalidConfiguration(
                f"max_level must be in [0, 3], got {self.max_level}"
            )


@dataclass
class BrownoutStats:
    """Transition counters plus the flagged-answer totals."""

    escalations: int = 0
    deescalations: int = 0
    drains_observed: int = 0
    drains_degraded: int = 0     # drains served at level >= 1
    reduced_k_answers: int = 0   # answers truncated by the k cap
    partial_answers: int = 0     # answers served while a shard was lost


class BrownoutController:
    """Queue-depth observations -> the current brownout rung."""

    def __init__(self, policy: Optional[BrownoutPolicy] = None) -> None:
        self.policy = policy if policy is not None else BrownoutPolicy()
        self.level = LEVEL_HEALTHY
        self.stats = BrownoutStats()
        self._pressure_streak = 0
        self._recovery_streak = 0
        #: ``(direction, from_level, to_level)`` transition history.
        self.transitions: List[Tuple[str, int, int]] = []

    # ------------------------------------------------------------------
    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.level]

    @property
    def active(self) -> bool:
        return self.level > LEVEL_HEALTHY

    def observe(self, queue_depth: int) -> int:
        """Fold one pre-drain queue depth in; returns the (new) level."""
        policy = self.policy
        self.stats.drains_observed += 1
        if queue_depth >= policy.queue_high:
            self._pressure_streak += 1
            self._recovery_streak = 0
            if (
                self._pressure_streak >= policy.sustain_drains
                and self.level < policy.max_level
            ):
                self.transitions.append(("up", self.level, self.level + 1))
                self.level += 1
                self.stats.escalations += 1
                self._pressure_streak = 0
        elif queue_depth <= policy.queue_low:
            self._recovery_streak += 1
            self._pressure_streak = 0
            if (
                self._recovery_streak >= policy.recover_drains
                and self.level > LEVEL_HEALTHY
            ):
                self.transitions.append(("down", self.level, self.level - 1))
                self.level -= 1
                self.stats.deescalations += 1
                self._recovery_streak = 0
        else:
            self._pressure_streak = 0
            self._recovery_streak = 0
        if self.active:
            self.stats.drains_degraded += 1
        return self.level

    # ------------------------------------------------------------------
    # Effective serving parameters at the current rung
    # ------------------------------------------------------------------
    def effective_staleness(self, base: int) -> int:
        """The cache staleness budget this rung serves under."""
        if self.level >= LEVEL_STALE:
            return max(base, self.policy.staleness_budget)
        return base

    def effective_k(self, k: int) -> int:
        """The (possibly capped) k this rung serves under."""
        if self.level >= LEVEL_REDUCED_K:
            return min(k, self.policy.k_cap)
        return k

    @property
    def partial_ok(self) -> bool:
        """Whether sharded answers may be partial at this rung."""
        return self.level >= LEVEL_PARTIAL

    def reset(self) -> None:
        """Back to healthy (operator lever); streaks and level clear."""
        if self.level != LEVEL_HEALTHY:
            self.transitions.append(("reset", self.level, LEVEL_HEALTHY))
        self.level = LEVEL_HEALTHY
        self._pressure_streak = 0
        self._recovery_streak = 0


__all__ = [
    "BrownoutController",
    "BrownoutPolicy",
    "BrownoutStats",
    "LEVEL_HEALTHY",
    "LEVEL_STALE",
    "LEVEL_REDUCED_K",
    "LEVEL_PARTIAL",
    "LEVEL_NAMES",
]
