"""Tests for the contract-validation harness (and with it, the contracts)."""

import random

import pytest

from repro.core.interfaces import OpCounter, PrioritizedResult
from repro.core.validation import (
    ValidationReport,
    validate_counting,
    validate_max,
    validate_prioritized,
    validate_problem_factories,
)
from toy import RangePredicate, ToyMax, ToyPrioritized, make_toy_elements
from test_counting import ToyCounter  # reuse the exact toy counter


def predicates(n, count, seed):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        a, b = sorted((rng.uniform(0, 10 * n), rng.uniform(0, 10 * n)))
        out.append(RangePredicate(a, b))
    return out


class TestReport:
    def test_ok_when_no_failures(self):
        report = ValidationReport("x")
        report.record(True, "fine")
        assert report.ok and report.checks == 1
        report.raise_if_failed()  # no-op

    def test_raise_lists_failures(self):
        report = ValidationReport("x")
        report.record(False, "broken thing")
        with pytest.raises(AssertionError, match="broken thing"):
            report.raise_if_failed()


class TestHonestStructuresPass:
    def test_toy_prioritized(self):
        elements = make_toy_elements(150, 1)
        report = validate_prioritized(
            ToyPrioritized(elements), elements, predicates(150, 12, 2)
        )
        assert report.ok, report.failures

    def test_toy_max(self):
        elements = make_toy_elements(150, 3)
        report = validate_max(ToyMax(elements), elements, predicates(150, 20, 4))
        assert report.ok

    def test_toy_counter(self):
        elements = make_toy_elements(150, 5)
        report = validate_counting(ToyCounter(elements), elements, predicates(150, 20, 6))
        assert report.ok

    def test_every_registered_problem_passes(self, problem):
        reports = validate_problem_factories(
            problem.elements,
            problem.predicates(5, seed=7),
            prioritized_factory=problem.prioritized_factory,
            max_factory=problem.max_factory,
        )
        assert all(report.ok for report in reports)


class TestBrokenStructuresCaught:
    def test_missing_elements_detected(self):
        class Lossy(ToyPrioritized):
            def query(self, predicate, tau, limit=None):
                result = super().query(predicate, tau, limit)
                return PrioritizedResult(result.elements[:-1], result.truncated)

        elements = make_toy_elements(100, 8)
        report = validate_prioritized(Lossy(elements), elements, predicates(100, 8, 9))
        assert not report.ok

    def test_missing_truncation_flag_detected(self):
        class NeverTruncates(ToyPrioritized):
            def query(self, predicate, tau, limit=None):
                return super().query(predicate, tau, limit=None)

        elements = make_toy_elements(100, 10)
        report = validate_prioritized(
            NeverTruncates(elements), elements, predicates(100, 8, 11)
        )
        assert any("truncated flag not set" in f for f in report.failures)

    def test_wrong_max_detected(self):
        class MinInstead(ToyMax):
            def query(self, predicate):
                matching = [e for e in self._elements if predicate.matches(e.obj)]
                return min(matching, key=lambda e: e.weight, default=None)

        elements = make_toy_elements(100, 12)
        report = validate_max(MinInstead(elements), elements, predicates(100, 10, 13))
        assert not report.ok

    def test_undercounting_detected(self):
        class UnderCounter(ToyCounter):
            def count(self, predicate):
                return max(0, super().count(predicate) - 1)

        elements = make_toy_elements(100, 14)
        report = validate_counting(
            UnderCounter(elements), elements, predicates(100, 10, 15)
        )
        assert not report.ok

    def test_factory_helper_raises(self):
        class Broken(ToyMax):
            def query(self, predicate):
                return None

        elements = make_toy_elements(80, 16)
        with pytest.raises(AssertionError, match="violated its contract"):
            validate_problem_factories(
                elements, predicates(80, 6, 17), max_factory=Broken
            )
