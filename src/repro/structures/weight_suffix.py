"""The weight-suffix composition pattern of Sections 5.4 and 5.5.

Both of the paper's halfspace prioritized structures share one shape:
build a tree over the elements' *weights* — binary in RAM (Section
5.4), a B-tree with fanout ``(n/B)^{eps/2}`` in EM (Section 5.5) — and
attach to every node an *unweighted reporting* structure over the
node's elements.  A prioritized query ``(q, tau)`` collects the
canonical cover of ``{w >= tau}`` (``O(log n)`` nodes binary,
``O(fanout)`` nodes with ``O(1)`` B-tree levels) and unions one
reporting query per cover node.

:class:`WeightSuffixPrioritized` implements the pattern generically so
any reporting black box plugs in; :func:`em_halfspace_prioritized`
instantiates Section 5.5 exactly — the weight B-tree over a shared
:class:`~repro.em.model.EMContext` with kd-tree reporting per node
(substituting for Agarwal et al. [6], see DESIGN.md section 4).
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, List, Optional, Sequence

from repro.core.interfaces import OpCounter, PrioritizedIndex, PrioritizedResult
from repro.core.problem import Element, Predicate
from repro.em.btree import BPlusTree
from repro.em.model import EMContext
from repro.structures.kdtree import KDTreeIndex

# A reporting black box: report(predicate, limit) -> (elements, truncated).
ReportingFactory = Callable[[Sequence[Element]], "SupportsReport"]


class SupportsReport:
    """Protocol for per-node reporting structures (duck-typed)."""

    def report(self, predicate: Predicate, limit: Optional[int] = None):
        raise NotImplementedError


class _PrioritizedAsReporter:
    """Adapts any PrioritizedIndex into the unweighted reporting role."""

    def __init__(self, inner: PrioritizedIndex) -> None:
        self.inner = inner

    def report(self, predicate: Predicate, limit: Optional[int] = None):
        result = self.inner.query(predicate, -math.inf, limit=limit)
        return result.elements, result.truncated

    def space_units(self) -> int:
        return self.inner.space_units()


class WeightSuffixPrioritized(PrioritizedIndex):
    """Prioritized reporting from unweighted reporting via a weight tree.

    Parameters
    ----------
    elements:
        The weighted input set.
    reporting_factory:
        Builds the per-node unweighted black box; either an object with
        ``report(predicate, limit) -> (elements, truncated)`` or any
        :class:`PrioritizedIndex` (adapted automatically).
    fanout:
        ``2`` gives Section 5.4's binary tree (``O(log n)`` canonical
        nodes); larger fanouts give Section 5.5's flat B-tree shape
        (``O(fanout * height)`` canonical nodes over ``O(1)`` levels
        when ``fanout = n^Theta(1)``).
    ctx:
        Optional EM context: the weight tree is then a real
        :class:`BPlusTree` whose node visits cost I/Os.
    """

    def __init__(
        self,
        elements: Sequence[Element],
        reporting_factory,
        fanout: int = 2,
        ctx: Optional[EMContext] = None,
    ) -> None:
        self.ops = OpCounter()
        self.ctx = ctx
        self._n = len(elements)
        self._fanout = max(2, fanout)
        ordered = sorted(elements, key=lambda e: e.weight)
        self._reporters = {}
        if ctx is not None:
            self._btree: Optional[BPlusTree] = BPlusTree(
                ctx,
                [(e.weight, e) for e in ordered],
                fanout=self._fanout,
                presorted=True,
            )
            for node in self._btree.iter_nodes():
                subtree = [e for _, e in self._btree.leaf_items_under(node.node_id)]
                self._reporters[node.node_id] = self._adapt(reporting_factory(subtree))
            self._ordered = ordered
        else:
            self._btree = None
            self._ordered = ordered
            self._build_binary(0, len(ordered), reporting_factory)

    @staticmethod
    def _adapt(structure):
        if hasattr(structure, "report"):
            return structure
        return _PrioritizedAsReporter(structure)

    def _build_binary(self, a: int, b: int, reporting_factory) -> None:
        if a >= b:
            return
        self._reporters[(a, b)] = self._adapt(reporting_factory(self._ordered[a:b]))
        if b - a > 1:
            mid = (a + b) // 2
            self._build_binary(a, mid, reporting_factory)
            self._build_binary(mid, b, reporting_factory)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    def query_cost_bound(self) -> float:
        """Canonical-cover size times one reporting search."""
        if self._n <= 1:
            return 1.0
        log_n = math.log2(self._n)
        if self._btree is not None:
            levels = max(1, self._btree.height)
            return self._fanout * levels
        return log_n

    def query(
        self, predicate: Predicate, tau: float, limit: Optional[int] = None
    ) -> PrioritizedResult:
        out: List[Element] = []
        for reporter in self._canonical_reporters(tau):
            self.ops.node_visits += 1
            remaining = None if limit is None else limit - len(out)
            elements, truncated = reporter.report(predicate, remaining)
            out.extend(e for e in elements if e.weight >= tau)
            if truncated:
                return PrioritizedResult(out, truncated=True)
            if limit is not None and len(out) > limit:
                return PrioritizedResult(out, truncated=True)
        return PrioritizedResult(out, truncated=False)

    def _canonical_reporters(self, tau: float):
        if self._btree is not None:
            for node in self._btree.canonical_cover_geq(tau):
                yield self._reporters[node.node_id]
            return
        # Binary variant: walk the boundary path over the sorted array.
        weights = [e.weight for e in self._ordered]
        cut = bisect.bisect_left(weights, tau)
        yield from self._binary_cover(0, len(self._ordered), cut)

    def _binary_cover(self, a: int, b: int, cut: int):
        """Canonical nodes covering the rank suffix ``[cut, n)``."""
        if a >= b or b <= cut:
            return
        if cut <= a:
            yield self._reporters[(a, b)]
            return
        mid = (a + b) // 2
        yield from self._binary_cover(a, mid, cut)
        yield from self._binary_cover(mid, b, cut)

    def space_units(self) -> int:
        """Sum over every node's reporting structure."""
        return sum(r.space_units() for r in self._reporters.values())


def em_halfspace_prioritized(
    elements: Sequence[Element],
    ctx: EMContext,
    epsilon: float = 0.5,
) -> WeightSuffixPrioritized:
    """Section 5.5's EM prioritized halfspace structure, literally.

    A weight B-tree with fanout ``f = (n/B)^{eps/2}`` (so the tree has
    ``O(1)`` levels) and a halfspace reporting structure per node —
    here the kd-tree standing in for Agarwal et al. [6].  A prioritized
    query collects the ``O(f)`` canonical nodes in ``O(1 + f/B)`` I/Os
    and runs one halfspace query on each.
    """
    n = max(2, len(elements))
    fanout = max(2, round((n / ctx.B) ** (epsilon / 2.0)))
    return WeightSuffixPrioritized(
        elements, KDTreeIndex, fanout=fanout, ctx=ctx
    )
