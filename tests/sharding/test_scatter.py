"""Scatter-gather: oracle exactness, threshold pruning, k-way merge."""

import random

from repro.core.problem import Element
from repro.sharding import merge_topk

from oracles import oracle_top_k
from sharding_util import (
    make_sharded,
    make_uniform_elements,
    make_zipf_elements,
    random_predicate,
)
from toy import RangePredicate


class TestMergeTopK:
    def test_matches_concatenate_and_sort(self):
        rng = random.Random(0)
        for trial in range(30):
            runs = []
            weight = 0
            for _ in range(rng.randrange(0, 5)):
                size = rng.randrange(0, 6)
                weights = []
                for _ in range(size):
                    weight += rng.randrange(1, 5)
                    weights.append(float(weight))
                runs.append(
                    [Element(i, w) for i, w in enumerate(reversed(weights))]
                )
            k = rng.randrange(0, 10)
            expected = sorted(
                (e for run in runs for e in run),
                key=lambda e: -e.weight,
            )[:k]
            assert merge_topk(runs, k) == expected

    def test_k_nonpositive_and_empty_runs(self):
        assert merge_topk([], 3) == []
        assert merge_topk([[Element(1, 1.0)]], 0) == []
        assert merge_topk([[], []], 2) == []

    def test_single_run_returns_fresh_prefix(self):
        run = [Element(1, 3.0), Element(2, 2.0), Element(3, 1.0)]
        out = merge_topk([run], 2)
        assert out == run[:2]
        assert out is not run


class TestExactness:
    def test_property_sweep_matches_oracle(self):
        """Random (elements, S, strategy, predicate, k) stay oracle-exact."""
        for seed in range(6):
            rng = random.Random(100 + seed)
            maker = make_uniform_elements if seed % 2 else make_zipf_elements
            elements = maker(72, seed=seed)
            num_shards = rng.choice([1, 2, 4, 8])
            strategy = rng.choice(["hash", "range"])
            idx = make_sharded(
                elements, num_shards=num_shards, strategy=strategy, seed=seed
            )
            for _ in range(12):
                predicate = random_predicate(rng, elements)
                k = rng.choice([1, 2, 3, 7, 20, len(elements)])
                assert idx.query(predicate, k) == oracle_top_k(
                    elements, predicate, k
                ), (seed, num_shards, strategy, predicate, k)

    def test_trace_accounting_is_conserved(self):
        elements = make_uniform_elements(64, seed=9)
        idx = make_sharded(elements, num_shards=8, seed=9)
        rng = random.Random(9)
        for _ in range(10):
            idx.query(random_predicate(rng, elements), rng.randrange(1, 12))
        s = idx.stats
        # Every mapped shard per query is contacted, pruned, or empty.
        assert s.shards_contacted + s.shards_pruned + s.shards_empty == s.shard_slots
        assert s.max_probes == s.shard_slots
        assert s.shard_probes >= s.shards_contacted
        assert s.escalations == s.shard_probes - s.shards_contacted

    def test_k_zero_returns_empty(self):
        elements = make_uniform_elements(20, seed=1)
        idx = make_sharded(elements, num_shards=2)
        assert idx.query(RangePredicate(0, 10**9), 0) == []


class TestPruning:
    def test_range_partitioning_prunes_skewed_weights(self):
        """Weight-aware bands concentrate top-k: few shards contacted."""
        elements = make_zipf_elements(160, seed=11)
        everything = RangePredicate(-10, 10 * len(elements) + 10)
        ranged = make_sharded(
            elements, num_shards=16, strategy="range", seed=11
        )
        hashed = make_sharded(elements, num_shards=16, strategy="hash", seed=11)
        for idx in (ranged, hashed):
            for k in (1, 2, 4, 8):
                assert idx.query(everything, k) == oracle_top_k(
                    elements, everything, k
                )
        assert ranged.stats.contact_ratio <= 0.5
        # The ordinal pruning rule sees *ranks*, so value skew only
        # helps when placement is weight-aware: range must beat hash.
        assert ranged.stats.contact_ratio < hashed.stats.contact_ratio

    def test_small_k_prunes_even_under_hash(self):
        elements = make_uniform_elements(160, seed=12)
        idx = make_sharded(elements, num_shards=16, strategy="hash", seed=12)
        everything = RangePredicate(-10, 10 * len(elements) + 10)
        for _ in range(8):
            assert len(idx.query(everything, 1)) == 1
        # k=1: only the globally heaviest shard is visited; the other
        # 15 are pruned by its exact bound.
        assert idx.stats.shards_contacted == idx.stats.queries
        assert idx.stats.contact_ratio <= 1 / 8
