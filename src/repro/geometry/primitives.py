"""Geometric primitives and exact predicates.

Points are plain tuples of floats (``Point = Tuple[float, ...]``) so
they hash, compare and unpack naturally; the shaped objects the paper
queries — intervals, rectangles, halfplanes/halfspaces, balls — are
small frozen dataclasses with a ``contains`` test each.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

Point = Tuple[float, ...]


def dot(a: Sequence[float], b: Sequence[float]) -> float:
    """Inner product of two equal-length vectors."""
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    return sum(x * y for x, y in zip(a, b))


def cross(o: Point, a: Point, b: Point) -> float:
    """2D cross product of ``(a - o)`` and ``(b - o)``.

    Positive when the turn o->a->b is counter-clockwise.
    """
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def squared_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance (avoids the sqrt in comparisons)."""
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    return sum((x - y) ** 2 for x, y in zip(a, b))


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` on the real line.

    The element domain of the interval-stabbing problem (Theorem 4).
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval: [{self.lo}, {self.hi}]")

    def contains(self, x: float) -> bool:
        """Whether the stabbing point ``x`` lies inside."""
        return self.lo <= x <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two closed intervals intersect."""
        return self.lo <= other.hi and other.lo <= self.hi

    @property
    def length(self) -> float:
        return self.hi - self.lo


@dataclass(frozen=True)
class Rect:
    """An axis-parallel rectangle ``[x1, x2] x [y1, y2]``.

    The element domain of 2D point enclosure (Theorem 5).
    """

    x1: float
    x2: float
    y1: float
    y2: float

    def __post_init__(self) -> None:
        if self.x1 > self.x2 or self.y1 > self.y2:
            raise ValueError(
                f"empty rectangle: [{self.x1}, {self.x2}] x [{self.y1}, {self.y2}]"
            )

    def contains(self, point: Point) -> bool:
        """Whether the query point falls inside (closed on all sides)."""
        x, y = point[0], point[1]
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    @property
    def x_interval(self) -> Interval:
        return Interval(self.x1, self.x2)

    @property
    def y_interval(self) -> Interval:
        return Interval(self.y1, self.y2)


@dataclass(frozen=True)
class Halfplane:
    """The halfspace ``{x : normal . x >= c}`` in any fixed dimension.

    The predicate domain of halfspace reporting (Theorem 3).  In 2D,
    a *lower* halfplane ``y <= a x + b`` is ``Halfplane((a, -1), -b)``
    and an *upper* halfplane ``y >= a x + b`` is ``Halfplane((-a, 1), b)``.
    """

    normal: Tuple[float, ...]
    c: float

    def contains(self, point: Sequence[float]) -> bool:
        """Whether ``point`` satisfies ``normal . point >= c``."""
        return dot(self.normal, point) >= self.c

    @property
    def dim(self) -> int:
        return len(self.normal)

    @staticmethod
    def below_line(a: float, b: float) -> "Halfplane":
        """The 2D halfplane on or below ``y = a x + b``.

        ``y <= a x + b`` rewrites as ``(a, -1) . (x, y) >= -b``.
        """
        return Halfplane((a, -1.0), -b)

    @staticmethod
    def above_line(a: float, b: float) -> "Halfplane":
        """The 2D halfplane on or above ``y = a x + b``.

        ``y >= a x + b`` rewrites as ``(-a, 1) . (x, y) >= b``.
        """
        return Halfplane((-a, 1.0), b)


@dataclass(frozen=True)
class Ball:
    """The ball ``{x : dist(x, center) <= radius}``.

    The predicate domain of circular range reporting (Corollary 1).
    """

    center: Tuple[float, ...]
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"negative radius: {self.radius}")

    def contains(self, point: Sequence[float]) -> bool:
        """Whether ``point`` lies inside the closed ball."""
        return squared_distance(self.center, point) <= self.radius**2

    @property
    def dim(self) -> int:
        return len(self.center)


@dataclass(frozen=True)
class Line2D:
    """The non-vertical line ``y = a x + b`` (dual-space object)."""

    a: float
    b: float

    def at(self, x: float) -> float:
        """Evaluate the line at abscissa ``x``."""
        return self.a * x + self.b

    def intersect_x(self, other: "Line2D") -> float:
        """Abscissa where the two (non-parallel) lines cross."""
        if self.a == other.a:
            raise ValueError("parallel lines do not cross")
        return (other.b - self.b) / (self.a - other.a)
