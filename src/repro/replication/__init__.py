"""Replicated top-k serving: WAL shipping, failover, anti-entropy.

The replication layer turns the single-machine durability stack into a
replica set of N independent simulated machines:

* :mod:`repro.replication.replica` — one machine (disk + scoped fault
  plan + durable store + index);
* :mod:`repro.replication.cluster` — the :class:`ReplicaSet`:
  synchronous WAL shipping, quorum/hedged/primary reads with staleness
  bounds, and the degradation ladder down to
  rebuild-from-durable-record;
* :mod:`repro.replication.failover` — deterministic failure detection
  and promotion by highest durable LSN;
* :mod:`repro.replication.antientropy` — the scrubber: per-replica
  seal walks, cross-replica state digests, snapshot + WAL-tail resync.

A :class:`ReplicaSet` is itself a
:class:`~repro.core.interfaces.TopKIndex`, so it plugs into
:class:`~repro.resilience.guard.ResilientTopKIndex` as a primary
backend — replication health (lag, promotions, hedge wins, scrub
repairs) then surfaces through the guard's health summary.
"""

from repro.replication.antientropy import AntiEntropyScrubber, ScrubReport
from repro.replication.cluster import (
    APPLY_EAGER,
    APPLY_LAZY,
    READ_HEDGED,
    READ_PRIMARY,
    READ_QUORUM,
    ReplicaSet,
    ReplicationStats,
    replicated_index,
)
from repro.replication.failover import FailoverController, FailoverPolicy
from repro.replication.replica import ROLE_FOLLOWER, ROLE_PRIMARY, Replica

__all__ = [
    "AntiEntropyScrubber",
    "ScrubReport",
    "ReplicaSet",
    "ReplicationStats",
    "replicated_index",
    "READ_PRIMARY",
    "READ_QUORUM",
    "READ_HEDGED",
    "APPLY_LAZY",
    "APPLY_EAGER",
    "FailoverController",
    "FailoverPolicy",
    "Replica",
    "ROLE_PRIMARY",
    "ROLE_FOLLOWER",
]
