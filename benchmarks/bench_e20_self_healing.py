"""E20 — Self-healing: chaos scenarios graded end to end.

Runs the :mod:`repro.ops` control plane against the scripted chaos
suite (:data:`~repro.ops.scenarios.DEFAULT_SCENARIOS`) plus a healthy
soak, and records the grading the subsystem exists to earn:

* **detection latency** — ticks from scripted injection to the first
  incident (gauge-driven faults detect at 0; telemetry-driven ones a
  tick or two later);
* **localization accuracy** — fraction of scenarios whose first
  incident blamed exactly the machine/shard the script injected into;
* **time to mitigate** — ticks from detection to verified resolution;
* **exactness** — every workload answer during the chaos and a full
  probe sweep after resolution equal the brute-force oracle.

Acceptance (asserted, recorded in the JSON): localization accuracy
>= 0.9 across >= 4 scenarios, every incident mitigated via existing
levers with 100% oracle-exact answers, and the healthy soak opens
**zero** incidents and fires **zero** mitigations.

Results land as JSON in ``benchmarks/results/e20_self_healing.json``
(the CI ops-chaos job uploads it as an artifact).

Set ``REPRO_BENCH_QUICK=1`` to run a reduced soak (CI smoke mode).
"""

import json
import os
from pathlib import Path

from repro.bench.tables import render_table
from repro.ops.scenarios import ChaosScenarioRunner, DEFAULT_SCENARIOS, grade_suite

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SOAK_TICKS = 10 if QUICK else 25
LOCALIZATION_FLOOR = 0.9
RESULTS_JSON = (
    Path(__file__).resolve().parent / "results" / "e20_self_healing.json"
)


def bench_e20_self_healing(benchmark, results_sink):
    runner = ChaosScenarioRunner()
    results = runner.run_suite()
    grade = grade_suite(results)

    rows = []
    per_scenario = []
    for result in results:
        rows.append([
            result.spec.name,
            result.spec.kind,
            result.detection_latency,
            "yes" if result.localization_correct else "NO",
            "+".join(dict.fromkeys(result.levers)),
            result.resolved_at - result.detected_at
            if result.resolved_at is not None
            else "-",
            "100%" if result.all_exact else "DIVERGED",
        ])
        per_scenario.append({
            "name": result.spec.name,
            "kind": result.spec.kind,
            "target": result.truth,
            "detection_latency_ticks": result.detection_latency,
            "localized_to": result.localized_to,
            "localization_correct": result.localization_correct,
            "levers": result.levers,
            "time_to_mitigate_ticks": (
                result.resolved_at - result.detected_at
                if result.resolved_at is not None
                else None
            ),
            "answers": result.answers,
            "answers_exact": result.answers_exact,
            "post_probes_exact": result.post_probes_exact,
            "timeline": result.timeline,
        })

    # Acceptance: the control plane must find, blame, and fix chaos...
    assert grade["scenarios"] >= 4
    assert grade["localization_accuracy"] >= LOCALIZATION_FLOOR, grade
    assert grade["all_mitigated"], [r.timeline for r in results]
    assert grade["all_answers_exact"], [r.spec.name for r in results]

    # ...while a healthy cluster soak draws no blood at all.
    soak = runner.run_healthy(ticks=SOAK_TICKS)
    assert soak.log.incidents == [], soak.log.timeline()
    assert soak.verifications == 0 and soak.deferrals == 0

    results_sink(
        render_table(
            f"E20 Self-healing chaos suite ({grade['scenarios']} scenarios "
            f"+ {SOAK_TICKS}-tick healthy soak)",
            ["scenario", "kind", "detect", "blamed", "levers", "fix", "exact"],
            rows,
            note=(
                f"acceptance: localization >= {LOCALIZATION_FLOOR:.0%}, every "
                "incident mitigated via existing levers, all answers oracle-"
                "exact, healthy soak opens zero incidents; 'detect' and 'fix' "
                "are simulated control ticks"
            ),
        )
    )

    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(
        json.dumps(
            {
                "quick": QUICK,
                "localization_floor": LOCALIZATION_FLOOR,
                "grade": grade,
                "scenarios": per_scenario,
                "healthy_soak": {
                    "ticks": SOAK_TICKS,
                    "incidents": len(soak.log.incidents),
                    "mitigations": soak.verifications,
                    "deferrals": soak.deferrals,
                },
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Timing hook: one full storm scenario, build to grade.
    benchmark(lambda: ChaosScenarioRunner().run(DEFAULT_SCENARIOS[0]))
