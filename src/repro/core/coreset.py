"""Top-k core-sets (Lemma 2) and nested core-set hierarchies.

A *core-set* for level ``K`` is a subset ``R`` of ``D`` such that for
every "large" predicate (``|q(D)| >= 4K``), the element with weight rank
``ceil(8*lambda*ln n)`` in ``q(R)`` has weight rank between ``K`` and
``4K`` in ``q(D)``.  Lemma 2 proves such a set of size
``O((n/K) log n)`` exists by sampling each element with probability
``p = 4*(lambda/K) ln n``; the same sampling realises it here.

The paper's proof is existential (a positive-probability argument over
all ``n^lambda`` predicates); verifying the property for every predicate
is neither possible for infinite ``Q`` nor necessary: Theorem 1's query
algorithm detects a bad probe (the fetched prefix is too small or too
large) and the implementation falls back to an exact prioritized query,
counting the event in :attr:`CoresetHierarchy.stats`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.params import TuningParams
from repro.core.problem import Element
from repro.core.sampling import bernoulli_sample


@dataclass
class CoresetStats:
    """Build-time accounting for a hierarchy of core-sets."""

    sizes: List[int] = field(default_factory=list)
    rates: List[float] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.sizes)


def build_coreset(
    elements: Sequence[Element],
    K: float,
    params: TuningParams,
    rng: random.Random,
) -> List[Element]:
    """One Lemma-2 core-set of ``elements`` for rank level ``K``.

    Expected size ``c * (n/K) * lam * ln n``; each element kept
    independently, so a core-set of a core-set is again a valid sample of
    the original set (the nesting Theorem 1 relies on).
    """
    n = len(elements)
    if n == 0:
        return []
    p = params.coreset_rate(n, K)
    return bernoulli_sample(elements, p, rng)


@dataclass
class CoresetHierarchy:
    """The nested chain ``R_0 = D, R_1, R_2, ...`` used for small-k queries.

    Section 3.2: take a core-set ``R_1`` of ``D`` with ``K = f``, then a
    core-set ``R_2`` of ``R_1`` with the same ``K``, and so on until the
    level has at most ``slack * f`` elements.  Eq. (12) shows each level
    shrinks by a factor ``>= g*sqrt(B)`` under the paper's constants, so
    the depth is ``O(log_{g sqrt B} n)``.
    """

    levels: List[List[Element]]
    K: float
    stats: CoresetStats
    #: Lazy columnar mirrors of the levels (built on first probe; a
    #: hierarchy is static, so a mirror can never go stale).
    _columns: Optional[List[Optional["ColumnSet"]]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def depth(self) -> int:
        """Number of levels including ``R_0 = D``."""
        return len(self.levels)

    def column(self, j: int) -> "ColumnSet":
        """Level ``j`` as a weight-descending :class:`ColumnSet` (cached).

        The columnar query paths probe levels by rank/offset arithmetic;
        mirroring lazily means legacy-mode hierarchies never pay the
        sort, and each level pays it at most once.
        """
        from repro.core.columnar import ColumnSet

        if self._columns is None:
            self._columns = [None] * len(self.levels)
        columns = self._columns[j]
        if columns is None:
            columns = self._columns[j] = ColumnSet(self.levels[j])
        return columns


def build_hierarchy(
    elements: Sequence[Element],
    K: float,
    params: TuningParams,
    rng: random.Random,
    stop_size: Optional[int] = None,
) -> CoresetHierarchy:
    """Build the nested chain bottoming out at ``stop_size`` elements.

    ``stop_size`` defaults to ``slack * K`` (the paper's ``4f``).  A
    guard stops the recursion if a level fails to shrink (possible under
    aggressive practical constants when ``p`` saturates at 1).
    """
    if stop_size is None:
        stop_size = max(1, math.ceil(params.slack * K))
    stats = CoresetStats()
    levels: List[List[Element]] = [list(elements)]
    stats.sizes.append(len(elements))
    stats.rates.append(1.0)
    while len(levels[-1]) > stop_size:
        current = levels[-1]
        p = params.coreset_rate(len(current), K)
        nxt = bernoulli_sample(current, p, rng)
        if len(nxt) >= len(current):
            # p saturated; further levels cannot shrink — stop here.
            break
        levels.append(nxt)
        stats.sizes.append(len(nxt))
        stats.rates.append(p)
    return CoresetHierarchy(levels=levels, K=K, stats=stats)


def doubling_coresets(
    elements: Sequence[Element],
    f: int,
    params: TuningParams,
    rng: random.Random,
) -> List[List[Element]]:
    """The large-k ladder ``R[1..h]`` with ``K = 2^{i-1} f`` (Section 3.2).

    ``R[i]`` is a core-set of ``D`` at level ``K = 2^{i-1} f``; ``h`` is
    the largest ``i`` with ``2^{i-1} f <= n``.  Returns the list
    ``[R[1], ..., R[h]]`` (possibly empty when ``f > n``).
    """
    n = len(elements)
    ladder: List[List[Element]] = []
    i = 1
    while (2 ** (i - 1)) * f <= n:
        K = float((2 ** (i - 1)) * f)
        ladder.append(build_coreset(elements, K, params, rng))
        i += 1
    return ladder
