"""Tests for the standalone experiment runner."""

from repro.bench.run_all import reduction_comparison, scaling_table


class TestReductionComparison:
    def test_produces_table_with_all_contenders(self):
        table = reduction_comparison(n=200, ks=[1, 4], query_count=4)
        assert "Thm1" in table and "Thm2" in table
        assert "Counting" in table and "Baseline" in table
        assert table.count("\n") >= 4  # title + header + rule + 2 rows


class TestScalingTable:
    def test_reports_slope(self):
        table = scaling_table("range1d", sizes=[100, 200], k=5, query_count=4)
        assert "log-log slope" in table
        assert "range1d" in table

    def test_works_for_every_registry_problem_smoke(self):
        # One geometric problem beyond range1d, at tiny sizes.
        table = scaling_table("interval_stabbing", sizes=[100, 200], k=3, query_count=3)
        assert "interval_stabbing" in table
