"""Unit tests of the fabric itself: links, faults, dedupe, the clock."""

from __future__ import annotations

import pytest

from repro.net import LinkPlan, NetworkFabric
from repro.resilience.errors import (
    FencedError,
    InvalidConfiguration,
    PartitionedError,
)


def echo_endpoint(fabric, name="b"):
    """Register a counting echo handler; returns the call log."""
    calls = []

    def handler(message):
        calls.append(message)
        return ("echo", message.payload)

    fabric.register(name, handler)
    return calls


class TestPerfectFabric:
    def test_send_invokes_handler_and_returns_reply(self):
        fabric = NetworkFabric(seed=0)
        calls = echo_endpoint(fabric)
        assert fabric.send("a", "b", "probe", 42) == ("echo", 42)
        assert len(calls) == 1
        assert calls[0].src == "a" and calls[0].kind == "probe"

    def test_clock_advances_per_send_plus_delay(self):
        fabric = NetworkFabric(seed=0)
        echo_endpoint(fabric)
        fabric.send("a", "b", "probe")
        assert fabric.now == 1
        fabric.link("a", "b").plan.delay = 3
        fabric.send("a", "b", "probe")
        assert fabric.now == 5

    def test_unregistered_endpoint_is_definite_failure(self):
        fabric = NetworkFabric(seed=0)
        with pytest.raises(PartitionedError) as err:
            fabric.send("a", "nowhere", "probe")
        assert not err.value.indeterminate


class TestLinkPlanValidation:
    def test_rates_validated(self):
        with pytest.raises(InvalidConfiguration):
            LinkPlan(drop_rate=1.5)
        with pytest.raises(InvalidConfiguration):
            LinkPlan(drop_rate=0.6, dup_rate=0.6)
        with pytest.raises(InvalidConfiguration):
            LinkPlan(reorder_window=0)
        with pytest.raises(InvalidConfiguration):
            LinkPlan(delay=-1)


class TestPartitions:
    def test_window_refuses_definitely(self):
        fabric = NetworkFabric(seed=0)
        echo_endpoint(fabric)
        fabric.partition("a", "b", start=0, end=100)
        with pytest.raises(PartitionedError) as err:
            fabric.send("a", "b", "probe")
        assert not err.value.indeterminate
        assert fabric.stats.partition_refusals == 1

    def test_window_expires_with_the_clock(self):
        fabric = NetworkFabric(seed=0)
        echo_endpoint(fabric)
        fabric.partition("a", "b", start=0, end=10)
        fabric.advance_to(10)
        assert fabric.send("a", "b", "probe", 1) == ("echo", 1)

    def test_asymmetric_partition_one_direction_only(self):
        fabric = NetworkFabric(seed=0)
        echo_endpoint(fabric, "a")
        echo_endpoint(fabric, "b")
        fabric.partition("a", "b", start=0, end=100, symmetric=False)
        with pytest.raises(PartitionedError):
            fabric.send("a", "b", "probe")
        assert fabric.send("b", "a", "probe", 9) == ("echo", 9)

    def test_isolate_cuts_both_directions(self):
        fabric = NetworkFabric(seed=0)
        for name in ("a", "b", "c"):
            echo_endpoint(fabric, name)
        fabric.isolate("a", ["b", "c"], start=0, end=100)
        for peer in ("b", "c"):
            with pytest.raises(PartitionedError):
                fabric.send("a", peer, "probe")
            with pytest.raises(PartitionedError):
                fabric.send(peer, "a", "probe")
        assert fabric.send("b", "c", "probe", 5) == ("echo", 5)
        assert fabric.active_partitions() == 4

    def test_heal_clears_windows_but_not_rates(self):
        fabric = NetworkFabric(seed=0)
        echo_endpoint(fabric)
        fabric.partition("a", "b", start=0, end=None)
        fabric.link("a", "b").plan.drop_rate = 0.5
        assert fabric.heal() == 2  # both directions had windows
        assert fabric.active_partitions() == 0
        assert fabric.link("a", "b").plan.drop_rate == 0.5


class TestChaos:
    def test_drops_surface_as_indeterminate_timeouts(self):
        fabric = NetworkFabric(seed=1)
        calls = echo_endpoint(fabric)
        fabric.link("a", "b").plan.drop_rate = 1.0
        for _ in range(20):
            with pytest.raises(PartitionedError) as err:
                fabric.send("a", "b", "probe", key=None)
            assert err.value.indeterminate
        assert fabric.stats.drops == 20
        # Roughly half are reply-drops: the handler DID run for those.
        assert fabric.stats.reply_drops == len(calls)
        assert 0 < fabric.stats.reply_drops < 20

    def test_retry_after_reply_drop_dedupes(self):
        fabric = NetworkFabric(seed=1)
        calls = echo_endpoint(fabric)
        link = fabric.link("a", "b")
        # Force reply-drops until one happens, then retry clean.
        link.plan.drop_rate = 1.0
        ran = 0
        while not calls:
            with pytest.raises(PartitionedError):
                fabric.send("a", "b", "probe", "payload", key="op-1")
            ran += 1
        link.plan.drop_rate = 0.0
        reply = fabric.send("a", "b", "probe", "payload", key="op-1")
        assert reply == ("echo", "payload")
        # The retry was answered from the dedupe cache: handler ran once.
        assert len(calls) == 1
        assert fabric.stats.duplicates_detected == 1

    def test_duplicate_delivery_absorbed_by_key(self):
        fabric = NetworkFabric(seed=1)
        calls = echo_endpoint(fabric)
        fabric.link("a", "b").plan.dup_rate = 1.0
        reply = fabric.send("a", "b", "probe", 7, key="op-dup")
        assert reply == ("echo", 7)
        assert fabric.stats.duplicates == 1
        # Handler ran once for real; the duplicate hit the cache.
        assert len(calls) == 1
        assert fabric.stats.duplicates_detected == 1

    def test_duplicate_without_key_runs_handler_twice(self):
        fabric = NetworkFabric(seed=1)
        calls = echo_endpoint(fabric)
        fabric.link("a", "b").plan.dup_rate = 1.0
        fabric.send("a", "b", "probe", 7, key=None)
        assert len(calls) == 2

    def test_reordered_message_delivered_late(self):
        fabric = NetworkFabric(seed=1)
        calls = echo_endpoint(fabric)
        link = fabric.link("a", "b")
        link.plan.reorder_rate = 1.0
        link.plan.reorder_window = 2
        with pytest.raises(PartitionedError) as err:
            fabric.send("a", "b", "probe", "old", key="held")
        assert err.value.indeterminate
        assert fabric.stats.reorders_held == 1
        assert not calls
        link.plan.reorder_rate = 0.0
        fabric.send("a", "b", "probe", "new-1", key="n1")
        fabric.send("a", "b", "probe", "new-2", key="n2")
        fabric.send("a", "b", "probe", "new-3", key="n3")
        # The held message was flushed behind the younger traffic.
        assert [m.payload for m in calls][-1] in ("old", "new-3")
        assert "old" in [m.payload for m in calls]
        assert calls[0].payload == "new-1"
        assert fabric.stats.late_deliveries == 1

    def test_flush_all_holdback_drains_everything(self):
        fabric = NetworkFabric(seed=1)
        calls = echo_endpoint(fabric)
        link = fabric.link("a", "b")
        link.plan.reorder_rate = 1.0
        link.plan.reorder_window = 100
        for i in range(3):
            with pytest.raises(PartitionedError):
                fabric.send("a", "b", "probe", i, key=("h", i))
        assert not calls
        fabric.flush_all_holdback()
        assert [m.payload for m in calls] == [0, 1, 2]

    def test_late_delivery_swallows_handler_errors(self):
        fabric = NetworkFabric(seed=1)

        def fencer(message):
            raise FencedError("stale", epoch=message.epoch, current=5)

        fabric.register("b", fencer)
        link = fabric.link("a", "b")
        link.plan.reorder_rate = 1.0
        with pytest.raises(PartitionedError):
            fabric.send("a", "b", "probe", key="held")
        fabric.flush_all_holdback()  # must not raise
        assert fabric.stats.fenced_rejects == 1


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        outcomes = []
        for _ in range(2):
            fabric = NetworkFabric(seed=42)
            echo_endpoint(fabric)
            fabric.link("a", "b").plan.drop_rate = 0.4
            fabric.link("a", "b").plan.dup_rate = 0.2
            run = []
            for i in range(40):
                try:
                    fabric.send("a", "b", "probe", i, key=("d", i))
                    run.append("ok")
                except PartitionedError:
                    run.append("timeout")
            outcomes.append((run, fabric.stats.drops, fabric.stats.duplicates))
        assert outcomes[0] == outcomes[1]

    def test_links_draw_independently(self):
        fabric = NetworkFabric(seed=42)
        assert (
            fabric.link("a", "b").rng.random()
            != fabric.link("b", "a").rng.random()
        )
