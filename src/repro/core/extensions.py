"""Extensions from the surrounding literature, built on the reductions.

Section 2 surveys problems adjacent to plain top-k that the reduction
framework immediately serves:

* **Online sorted reporting** (Brodal et al. [12]): report matches one
  by one in descending weight, not knowing ``k`` in advance.
  :func:`iter_top` turns any :class:`TopKIndex` into such an iterator
  by geometric re-querying — fetching ``1, 2, 4, ...`` heaviest matches
  costs ``O(Q_top(n) log k + k)`` amortised for ``k`` consumed items,
  with every item yielded exactly once and in exact order.
* **Colored (categorical) top-k** ([25, 30]; also the categorical
  range maxima of [26]): report the ``k`` heaviest *distinct colors*,
  where each match's color is derived from its payload.
  :class:`ColoredTopKIndex` oversamples the underlying top-k structure
  geometrically until ``k`` distinct colors surface — exact, with
  expected overhead proportional to the color-duplication rate.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.core.interfaces import TopKIndex
from repro.core.problem import Element, Predicate


def iter_top(
    index: TopKIndex,
    predicate: Predicate,
    start_k: int = 1,
) -> Iterator[Element]:
    """Yield matches heaviest-first, lazily, without a k in advance.

    Each exhausted batch doubles ``k`` and re-queries; since the top-k
    structures return *prefixes* of the same descending order, already
    yielded elements are skipped positionally, not by membership tests.
    """
    if start_k < 1:
        raise ValueError(f"start_k must be >= 1, got {start_k}")
    k = start_k
    yielded = 0
    while True:
        batch = index.query(predicate, k)
        for element in batch[yielded:]:
            yield element
            yielded += 1
        if len(batch) < k:
            return  # fewer matches than asked: everything is out
        k *= 2


class ColoredTopKIndex:
    """Top-k *distinct colors*: the heaviest representative per color.

    Parameters
    ----------
    index:
        Any exact top-k structure over the elements.
    color_of:
        Maps an element to its color (hashable).  Defaults to the
        element's payload.

    A query returns, for the ``k`` heaviest distinct colors among the
    matches, that color's heaviest matching element — the categorical
    semantics of [25, 26].  Implementation: consume the underlying
    structure's descending stream and keep first-seen colors; the
    stream is fetched in geometrically growing batches so the cost is
    ``O(Q_top log m + m)`` where ``m`` is how deep the stream must go
    to surface ``k`` colors.
    """

    def __init__(
        self,
        index: TopKIndex,
        color_of: Optional[Callable[[Element], Any]] = None,
    ) -> None:
        self._index = index
        self._color_of = color_of if color_of is not None else _payload_color

    @property
    def n(self) -> int:
        return self._index.n

    def query(self, predicate: Predicate, k: int) -> List[Element]:
        """The heaviest representative of each of the top-k colors."""
        if k <= 0:
            return []
        representatives: Dict[Any, Element] = {}
        for element in iter_top(self._index, predicate, start_k=max(1, 2 * k)):
            color = self._color_of(element)
            if color not in representatives:
                representatives[color] = element
                if len(representatives) == k:
                    break
        # Dict preserves insertion order == descending weight order.
        return list(representatives.values())

    def colors_matching(self, predicate: Predicate) -> int:
        """Total distinct matching colors (diagnostic, exhaustive)."""
        seen = set()
        for element in iter_top(self._index, predicate):
            seen.add(self._color_of(element))
        return len(seen)


def _payload_color(element: Element) -> Any:
    return element.payload
