"""EM-mode point enclosure: a second I/O-counted problem end to end."""

import math
import random

from oracles import oracle_prioritized, oracle_top_k, sorted_desc
from repro.core.theorem2 import ExpectedTopKIndex
from repro.core.problem import Element
from repro.em.model import EMContext
from repro.geometry.primitives import Rect
from repro.structures.point_enclosure import (
    CascadedRectangleStabbingMax,
    EnclosurePredicate,
    RectanglePrioritized,
)


def make_rects(n, seed=0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    out = []
    for i in range(n):
        x1, x2 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
        y1, y2 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
        out.append(Element(Rect(x1, x2, y1, y2), float(weights[i])))
    return out


class TestEMPointEnclosure:
    def test_prioritized_exact_with_io_counting(self):
        ctx = EMContext(B=16, M=256)
        elements = make_rects(300, 1)
        index = RectanglePrioritized(elements, ctx=ctx)
        rng = random.Random(2)
        ctx.drop_cache()
        ctx.stats.reset()
        for _ in range(25):
            q = (rng.uniform(-5, 105), rng.uniform(-5, 105))
            p = EnclosurePredicate(q)
            tau = rng.uniform(0, 3000)
            assert sorted_desc(index.query(p, tau).elements) == oracle_prioritized(
                elements, p, tau
            )
        assert ctx.stats.total > 0  # the queries really hit the disk

    def test_theorem2_on_em_substrate(self):
        ctx = EMContext(B=16, M=256)
        elements = make_rects(300, 3)
        index = ExpectedTopKIndex(
            elements,
            lambda subset: RectanglePrioritized(subset, ctx=ctx),
            CascadedRectangleStabbingMax,  # RAM max; mixed modes are fine
            B=ctx.B,
            seed=4,
        )
        rng = random.Random(5)
        for _ in range(15):
            q = (rng.uniform(0, 100), rng.uniform(0, 100))
            p = EnclosurePredicate(q)
            for k in (1, 5, 25):
                assert index.query(p, k) == oracle_top_k(elements, p, k)

    def test_em_output_term_blocked(self):
        """t reported rectangles cost ~t/B I/Os beyond the search term."""
        B = 16
        ctx = EMContext(B=B, M=8 * B)
        # All rectangles contain the query point.
        elements = [
            Element(Rect(0, 100 + i * 1e-9, 0, 100), float(i)) for i in range(512)
        ]
        index = RectanglePrioritized(elements, ctx=ctx)
        ctx.drop_cache()
        ctx.stats.reset()
        result = index.query(EnclosurePredicate((50.0, 50.0)), -math.inf)
        assert len(result.elements) == 512
        assert ctx.stats.total <= 8 * (512 / B) + 128
