"""E22 — Partition tolerance: the scenario grid under the history checker.

Three claims about ``repro.net`` + the fenced :class:`ReplicaSet`:

1. **Fenced clusters survive the grid.**  Every partition scenario
   (primary isolated, minority/majority splits, asymmetric link cuts,
   flapping, lossy links, plus the sharded split-under-partition run)
   is driven across many seeds.  Every produced history must pass the
   offline checker — no acknowledged write lost, no unacknowledged
   write visible without an ``info`` verdict, every read the exact
   top-k of its legal state — with **zero** stale-epoch applies at the
   replica layer and 100% oracle-exact post-heal reads.
2. **The checker is not a rubber stamp.**  The same driver with
   fencing ablated (no epochs, no leases) and a failover forced in the
   middle of the partition window must produce histories the checker
   *rejects*, citing a lost acknowledged write or a phantom.
3. **Liveness is preserved.**  Across the grid the majority side keeps
   acknowledging writes — partitions degrade throughput, never
   correctness.

Results also land as JSON in
``benchmarks/results/e22_partition_tolerance.json`` (the CI
partition-chaos job uploads it as an artifact).

Set ``REPRO_BENCH_QUICK=1`` to run a reduced sweep (CI smoke mode).
"""

import json
import os
from pathlib import Path

from repro.bench.tables import render_table
from repro.net import (
    SCENARIOS,
    run_partition_scenario,
    run_sharded_partition_scenario,
)
from repro.net.history import LOST_ACK_WRITE, UNACKED_VISIBLE

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SEEDS = list(range(1, 6)) if QUICK else list(range(1, 26))
ABLATION_SEEDS = SEEDS[: 5 if QUICK else 15]
SHARDED_SEEDS = SEEDS[: 5 if QUICK else 12]
RESULTS_JSON = (
    Path(__file__).resolve().parent / "results" / "e22_partition_tolerance.json"
)


# ----------------------------------------------------------------------
# E22a — the fenced scenario grid
# ----------------------------------------------------------------------
def _fenced_grid():
    per_scenario = []
    for scenario in SCENARIOS:
        ok_writes = indeterminate = failed = reads = post_heal = 0
        for seed in SEEDS:
            run = run_partition_scenario(scenario, seed=seed)
            assert run.check.ok, (
                f"{scenario.name} seed {seed}: {run.check.violations[:3]}"
            )
            assert run.fabric.stats.stale_epoch_applies == 0, (
                f"{scenario.name} seed {seed}: a stale-epoch record was "
                "applied despite fencing"
            )
            assert run.check.exact_reads == run.check.reads_checked, (
                f"{scenario.name} seed {seed}: an acknowledged read was "
                "not the exact top-k"
            )
            assert run.ok_writes > 0, (
                f"{scenario.name} seed {seed}: the majority side never "
                "acknowledged a write — liveness lost"
            )
            ok_writes += run.ok_writes
            indeterminate += run.indeterminate_writes
            failed += run.failed_writes
            reads += run.check.reads_checked
            post_heal += run.post_heal_reads
        per_scenario.append(
            {
                "scenario": scenario.name,
                "seeds": len(SEEDS),
                "ok_writes": ok_writes,
                "indeterminate_writes": indeterminate,
                "failed_writes": failed,
                "reads_checked": reads,
                "post_heal_reads": post_heal,
                "violations": 0,
                "stale_epoch_applies": 0,
            }
        )
    return per_scenario


# ----------------------------------------------------------------------
# E22b — sharded split under a coordinator partition
# ----------------------------------------------------------------------
def _sharded_grid():
    ok_writes = failed_reads = reads = 0
    for seed in SHARDED_SEEDS:
        run = run_sharded_partition_scenario(seed=seed)
        assert run.check.ok, f"sharded seed {seed}: {run.check.violations[:3]}"
        assert run.check.exact_reads == run.check.reads_checked
        ok_writes += run.ok_writes
        failed_reads += run.failed_reads
        reads += run.check.reads_checked
    return {
        "seeds": len(SHARDED_SEEDS),
        "ok_writes": ok_writes,
        "reads_checked": reads,
        "failed_reads_during_window": failed_reads,
        "violations": 0,
    }


# ----------------------------------------------------------------------
# E22c — the unfenced ablation must be CAUGHT
# ----------------------------------------------------------------------
def _ablation():
    caught = 0
    kinds_seen = set()
    for seed in ABLATION_SEEDS:
        run = run_partition_scenario(
            SCENARIOS[0], seed=seed, fenced=False, force_failover_at=12
        )
        if not run.check.ok:
            caught += 1
            kinds_seen.update(run.check.kinds())
    assert caught > 0, (
        "fencing ablated and a failover forced mid-partition, yet the "
        "checker signed off every history — the checker is a rubber stamp"
    )
    assert kinds_seen & {LOST_ACK_WRITE, UNACKED_VISIBLE}, kinds_seen
    return {
        "seeds": len(ABLATION_SEEDS),
        "histories_rejected": caught,
        "violation_kinds": sorted(kinds_seen),
    }


def bench_e22_partition_tolerance(benchmark, results_sink):
    grid = _fenced_grid()
    results_sink(
        render_table(
            f"E22a Fenced scenario grid ({len(SEEDS)} seeds per scenario)",
            ["scenario", "acked writes", "indeterminate", "reads checked",
             "post-heal reads", "violations", "stale applies"],
            [[row["scenario"], row["ok_writes"],
              row["indeterminate_writes"], row["reads_checked"],
              row["post_heal_reads"], 0, 0] for row in grid],
            note="every history passed the offline checker: no acked "
            "write lost, no phantom, every acknowledged read the exact "
            "top-k; zero stale-epoch applies at the replica layer",
        )
    )

    sharded = _sharded_grid()
    results_sink(
        render_table(
            f"E22b Sharded split under coordinator partition "
            f"({sharded['seeds']} seeds)",
            ["acked writes", "reads checked",
             "loud failures in window", "violations"],
            [[sharded["ok_writes"], sharded["reads_checked"],
              sharded["failed_reads_during_window"], 0]],
            note="an online shard split completes while the coordinator "
            "cannot reach the donor; unreachable probes fail loudly, "
            "never return a short answer",
        )
    )

    ablation = _ablation()
    results_sink(
        render_table(
            f"E22c Unfenced ablation ({ablation['seeds']} seeds, failover "
            "forced mid-partition)",
            ["histories rejected", "violation kinds"],
            [[f"{ablation['histories_rejected']}/{ablation['seeds']}",
              ", ".join(ablation["violation_kinds"])]],
            note="without epochs and leases the forced failover splits "
            "the brain; the checker must reject those histories",
        )
    )

    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(
        json.dumps(
            {"quick": QUICK, "e22a_fenced_grid": grid,
             "e22b_sharded": sharded, "e22c_ablation": ablation},
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Timing: one full fenced scenario run, checker included.
    benchmark(lambda: run_partition_scenario(SCENARIOS[0], seed=1))
