"""Fault injection in the EM machine: determinism, detection, accounting."""

import pytest

from repro.em.model import Disk, EMContext, block_checksum
from repro.resilience.errors import (
    CorruptBlockError,
    InvalidConfiguration,
    SimulatedCrash,
    TransientIOError,
)
from repro.resilience.faults import FaultPlan


def drive(plan, operations=200):
    """Replay a fixed operation sequence; return the outcome trace."""
    trace = []
    for i in range(operations):
        records = [i, i + 1, i + 2]
        try:
            seen = plan.on_read(i, records)
            trace.append("corrupt" if seen != records else "ok")
        except TransientIOError:
            trace.append("fail")
        try:
            plan.on_write(i, records)
            trace.append("w-ok")
        except TransientIOError:
            trace.append("w-fail")
    return trace


class TestFaultPlan:
    def test_same_seed_same_fault_sequence(self):
        make = lambda: FaultPlan(
            seed=7, read_fail_rate=0.2, write_fail_rate=0.1, corrupt_rate=0.2
        )
        assert drive(make()) == drive(make())

    def test_different_seed_different_sequence(self):
        a = FaultPlan(seed=1, read_fail_rate=0.3, corrupt_rate=0.3)
        b = FaultPlan(seed=2, read_fail_rate=0.3, corrupt_rate=0.3)
        assert drive(a) != drive(b)

    def test_rates_are_validated(self):
        with pytest.raises(InvalidConfiguration):
            FaultPlan(read_fail_rate=1.5)
        with pytest.raises(InvalidConfiguration):
            FaultPlan(corrupt_rate=-0.1)

    def test_disarmed_plan_is_a_no_op(self):
        plan = FaultPlan(seed=0, read_fail_rate=1.0, armed=False)
        records = [1, 2]
        assert plan.on_read(0, records) is records
        assert plan.stats.reads_seen == 0
        plan.arm()
        with pytest.raises(TransientIOError):
            plan.on_read(0, records)

    def test_corruption_changes_records_but_not_length_semantics(self):
        plan = FaultPlan(seed=3, corrupt_rate=1.0)
        out = plan.on_read(5, [10, 20, 30])
        assert out != [10, 20, 30]
        assert plan.stats.corruptions == 1

    def test_latency_units_accumulate(self):
        plan = FaultPlan(seed=0, read_latency=5, write_latency=2)
        plan.on_read(0, [1])
        plan.on_write(0, [1])
        plan.on_read(1, [1])
        assert plan.stats.latency_units == 12


class TestDiskChecksums:
    def test_enable_checksums_covers_existing_blocks(self):
        disk = Disk()
        bid = disk.allocate()
        disk.raw_write(bid, [1, 2, 3])
        disk.enable_checksums()
        assert disk.verify(bid, [1, 2, 3])
        assert not disk.verify(bid, [1, 2, 4])

    def test_verify_without_checksums_trusts_everything(self):
        disk = Disk()
        bid = disk.allocate()
        assert disk.verify(bid, ["anything"])

    def test_checksum_tracks_rewrites(self):
        disk = Disk(checksums=True)
        bid = disk.allocate()
        disk.raw_write(bid, [1])
        disk.raw_write(bid, [2])
        assert disk.verify(bid, [2])
        assert not disk.verify(bid, [1])

    def test_block_checksum_is_content_sensitive(self):
        assert block_checksum([1, 2]) != block_checksum([2, 1])
        assert block_checksum([]) == block_checksum([])


class TestEMContextInjection:
    def _fresh_ctx(self, **plan_kwargs):
        ctx = EMContext(B=4, M=8)
        bids = [ctx.allocate_block([i, i + 1]) for i in range(6)]
        ctx.flush()
        ctx.attach_fault_plan(FaultPlan(**plan_kwargs))
        return ctx, bids

    def test_read_fault_raises_and_charges_the_io(self):
        ctx, bids = self._fresh_ctx(seed=0, read_fail_rate=1.0)
        ctx.stats.reset()
        with pytest.raises(TransientIOError):
            ctx.read_block(bids[0])
        assert ctx.stats.reads == 1  # the failed attempt still cost an I/O
        assert ctx.fault_plan.stats.read_faults == 1

    def test_read_retry_succeeds_when_fault_clears(self):
        ctx, bids = self._fresh_ctx(seed=1, read_fail_rate=0.5)
        answer = None
        for _ in range(50):
            try:
                answer = list(ctx.read_block(bids[2]))
                break
            except TransientIOError:
                continue
        assert answer == [2, 3]

    def test_corruption_detected_via_checksums(self):
        # attach_fault_plan auto-enables checksums for corrupting plans.
        ctx, bids = self._fresh_ctx(seed=2, corrupt_rate=1.0)
        assert ctx.disk.checksums_enabled
        with pytest.raises(CorruptBlockError):
            ctx.read_block(bids[1])
        # The disk copy is intact: disarm and re-read the true records.
        ctx.fault_plan.disarm()
        assert list(ctx.read_block(bids[1])) == [1, 2]

    def test_undetected_corruption_is_silent(self):
        """Without checksums the corrupted block is served — the failure
        mode that motivates the integrity layer."""
        ctx = EMContext(B=4, M=8)
        bids = [ctx.allocate_block([i, i + 1]) for i in range(3)]
        ctx.flush()
        ctx.attach_fault_plan(
            FaultPlan(seed=3, corrupt_rate=1.0), enable_checksums=False
        )
        seen = list(ctx.read_block(bids[0]))
        assert seen != [0, 1]  # silently wrong
        assert ctx.fault_plan.stats.corruptions == 1

    def test_write_fault_raises_without_losing_the_frame(self):
        ctx = EMContext(B=4, M=8, fault_plan=FaultPlan(seed=4, write_fail_rate=1.0))
        bid = ctx.allocate_block()
        ctx.write_block(bid, [7, 8])
        with pytest.raises(TransientIOError):
            ctx.flush()
        # The dirty frame survived the failed write-back; a fault-free
        # flush persists it.
        ctx.fault_plan.disarm()
        ctx.flush()
        assert ctx.disk.raw_read(bid) == [7, 8]

    def test_cache_hits_never_fault(self):
        ctx, bids = self._fresh_ctx(seed=5, read_fail_rate=0.0)
        records = ctx.read_block(bids[0])
        ctx.fault_plan.read_fail_rate = 1.0
        # Resident block: free and fault-free regardless of the plan.
        assert ctx.read_block(bids[0]) is records

    def test_detach_restores_normal_operation(self):
        ctx, bids = self._fresh_ctx(seed=6, read_fail_rate=1.0)
        ctx.attach_fault_plan(None)
        assert list(ctx.read_block(bids[3])) == [3, 4]


class TestCrashSchedule:
    """schedule_crash: deterministic machine death, dead stays dead."""

    def test_crash_at_nth_transfer(self):
        plan = FaultPlan(armed=False)
        plan.schedule_crash(at_io=3)
        plan.on_read(0, [1])
        plan.on_write(1, [2])
        with pytest.raises(SimulatedCrash):
            plan.on_read(2, [3])
        assert plan.crashed
        assert plan.stats.crashes == 1

    def test_crash_fires_even_when_disarmed(self):
        plan = FaultPlan(armed=False)
        plan.schedule_crash(at_io=1)
        with pytest.raises(SimulatedCrash):
            plan.on_read(0, [1])

    def test_crash_on_write_carries_torn_keep(self):
        plan = FaultPlan(armed=False)
        plan.schedule_crash(at_io=1, torn_fraction=0.5)
        with pytest.raises(SimulatedCrash) as excinfo:
            plan.on_write(9, [1, 2, 3, 4])
        assert excinfo.value.torn_keep == 2
        assert excinfo.value.block_id == 9
        assert plan.stats.torn_writes == 1

    def test_dead_machine_persists_nothing_further(self):
        plan = FaultPlan(armed=False)
        plan.schedule_crash(at_io=1)
        with pytest.raises(SimulatedCrash):
            plan.on_write(0, [1, 2])
        with pytest.raises(SimulatedCrash) as excinfo:
            plan.on_write(1, [3, 4])
        assert excinfo.value.torn_keep is None
        assert plan.stats.crashes == 1  # one machine, one death

    def test_crash_is_not_transient(self):
        # Retry ladders must not swallow a machine death.
        assert not issubclass(SimulatedCrash, TransientIOError)

    def test_schedule_validation(self):
        plan = FaultPlan()
        with pytest.raises(InvalidConfiguration):
            plan.schedule_crash(at_io=0)
        with pytest.raises(InvalidConfiguration):
            plan.schedule_crash(at_io=1, torn_fraction=1.5)

    def test_sweeping_crash_points_is_exhaustive(self):
        # The same workload crashes at every distinct transfer exactly once.
        for at_io in range(1, 11):
            plan = FaultPlan(armed=False)
            plan.schedule_crash(at_io=at_io)
            died_at = None
            for i in range(10):
                try:
                    if i % 2 == 0:
                        plan.on_read(i, [i])
                    else:
                        plan.on_write(i, [i])
                except SimulatedCrash:
                    died_at = i + 1
                    break
            assert died_at == at_io


class TestPhaseSchedule:
    def test_phase_applies_at_the_scheduled_transfer(self):
        plan = FaultPlan()
        plan.schedule_phase(3, read_fail_rate=1.0)
        plan.on_read(0, [1])          # transfer 1: old rates
        plan.on_read(1, [1])          # transfer 2: old rates
        with pytest.raises(TransientIOError):
            plan.on_read(2, [1])      # transfer 3: new rates
        assert plan.read_fail_rate == 1.0

    def test_counting_is_relative_to_now(self):
        plan = FaultPlan()
        plan.on_write(0, [1])
        plan.on_write(1, [1])
        plan.schedule_phase(1, write_fail_rate=1.0)
        with pytest.raises(TransientIOError):
            plan.on_write(2, [1])     # the very next transfer

    def test_counts_while_disarmed(self):
        # Phase countdowns tick on every intercepted transfer, armed or
        # not — mirroring schedule_crash.
        plan = FaultPlan(armed=True)
        plan.disarm()
        plan.schedule_phase(2, read_fail_rate=1.0)
        plan.on_read(0, [1])
        plan.on_read(1, [1])          # phase flips, but plan is disarmed
        assert plan.read_fail_rate == 1.0
        plan.arm()
        with pytest.raises(TransientIOError):
            plan.on_read(2, [1])

    def test_unnamed_fields_keep_previous_values(self):
        plan = FaultPlan(armed=False, read_latency=7)
        plan.schedule_phase(1, read_fail_rate=0.5)
        plan.on_read(0, [1])
        assert plan.read_latency == 7

    def test_successive_phases_compose_piecewise(self):
        plan = FaultPlan(armed=False)
        plan.schedule_phase(1, read_fail_rate=0.2)
        plan.schedule_phase(3, read_fail_rate=0.0, corrupt_rate=0.1)
        plan.on_read(0, [1])
        assert (plan.read_fail_rate, plan.corrupt_rate) == (0.2, 0.0)
        plan.on_read(1, [1])
        plan.on_read(2, [1])
        assert (plan.read_fail_rate, plan.corrupt_rate) == (0.0, 0.1)

    def test_validation(self):
        plan = FaultPlan()
        with pytest.raises(InvalidConfiguration):
            plan.schedule_phase(0, read_fail_rate=0.5)
        with pytest.raises(InvalidConfiguration):
            plan.schedule_phase(1)
        with pytest.raises(InvalidConfiguration):
            plan.schedule_phase(1, bogus_field=1.0)
        with pytest.raises(InvalidConfiguration):
            plan.schedule_phase(1, corrupt_rate=1.5)

    def test_scheduled_corruption_counts_as_injecting(self):
        # EMContext auto-enables checksums off this property at attach
        # time; a clean plan whose *later* phase corrupts must count.
        plan = FaultPlan(armed=False)
        assert not plan.injects_corruption
        plan.schedule_phase(5, corrupt_rate=0.1)
        assert plan.injects_corruption


class TestMerge:
    def test_probabilities_combine_by_max(self):
        a = FaultPlan(seed=1, read_fail_rate=0.3, write_fail_rate=0.1)
        b = FaultPlan(seed=2, read_fail_rate=0.2, write_fail_rate=0.4)
        merged = FaultPlan.merge(a, b)
        assert merged.read_fail_rate == 0.3
        assert merged.write_fail_rate == 0.4

    def test_latencies_add(self):
        a = FaultPlan(seed=1, read_latency=3)
        b = FaultPlan(seed=2, read_latency=4, write_latency=2)
        merged = FaultPlan.merge(a, b)
        assert merged.read_latency == 7
        assert merged.write_latency == 2

    def test_offsets_delay_a_constituent(self):
        quiet = FaultPlan(seed=1)
        storm = FaultPlan(seed=2, read_fail_rate=1.0)
        merged = FaultPlan.merge(quiet, storm, offsets=[0, 2], armed=True)
        merged.on_read(0, [1])        # transfer 1: storm not yet active
        merged.on_read(1, [1])        # transfer 2: still quiet
        with pytest.raises(TransientIOError):
            merged.on_read(2, [1])    # transfer 3: storm window opens

    def test_durations_window_a_constituent(self):
        storm = FaultPlan(seed=2, read_fail_rate=1.0)
        merged = FaultPlan.merge(storm, durations=[2], armed=True)
        for i in range(2):
            with pytest.raises(TransientIOError):
                merged.on_read(i, [1])
        merged.on_read(2, [1])        # window expired: back to zero rates

    def test_overlap_keeps_single_injection_semantics(self):
        # Two total storms overlapping still fail each read exactly once
        # (max, not sum): the stats count one fault per transfer.
        a = FaultPlan(seed=1, read_fail_rate=1.0)
        b = FaultPlan(seed=2, read_fail_rate=1.0)
        merged = FaultPlan.merge(a, b, armed=True)
        for i in range(5):
            with pytest.raises(TransientIOError):
                merged.on_read(i, [1])
        assert merged.stats.read_faults == 5

    def test_pending_crash_earliest_wins(self):
        a = FaultPlan(seed=1)
        a.schedule_crash(at_io=9)
        b = FaultPlan(seed=2)
        b.schedule_crash(at_io=4, torn_fraction=0.0)
        merged = FaultPlan.merge(a, b, armed=True)
        for i in range(3):
            merged.on_write(i, [1])
        with pytest.raises(SimulatedCrash) as excinfo:
            merged.on_write(3, [1, 2])
        assert excinfo.value.torn_keep == 0  # b's torn fraction carried over

    def test_constituents_are_untouched(self):
        a = FaultPlan(seed=1, read_fail_rate=0.5, machine="m-a")
        merged = FaultPlan.merge(a, durations=[1])
        merged.on_read(0, [1])
        merged.on_read(1, [1])
        assert a.read_fail_rate == 0.5
        assert a.stats.reads_seen == 0    # fresh, unbound result
        assert merged.machine == "m-a"    # first labelled machine wins

    def test_seed_derivation_is_deterministic(self):
        a, b = FaultPlan(seed=1), FaultPlan(seed=2)
        assert FaultPlan.merge(a, b).seed == FaultPlan.merge(a, b).seed
        assert FaultPlan.merge(a, b).seed != FaultPlan.merge(b, a).seed

    def test_merged_corruption_enables_checksums_on_attach(self):
        clean = FaultPlan(seed=1)
        dripper = FaultPlan(seed=2, corrupt_rate=0.2)
        merged = FaultPlan.merge(clean, dripper, offsets=[0, 50])
        ctx = EMContext(M=64, B=4, fault_plan=merged)
        assert ctx.disk.checksums_enabled

    def test_validation(self):
        with pytest.raises(InvalidConfiguration):
            FaultPlan.merge()
        with pytest.raises(InvalidConfiguration):
            FaultPlan.merge(FaultPlan(), offsets=[1, 2])
        with pytest.raises(InvalidConfiguration):
            FaultPlan.merge(FaultPlan(), offsets=[-1])
        with pytest.raises(InvalidConfiguration):
            FaultPlan.merge(FaultPlan(), durations=[0])
