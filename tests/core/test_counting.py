"""Tests for the Section 2 counting-based reduction."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import oracle_top_k
from repro.core.counting import CountingTopKIndex, InflatedCounter
from repro.core.interfaces import CountingIndex, OpCounter
from repro.core.problem import Element
from repro.structures.range1d import (
    RangePredicate1D,
    RangeTree1DCounter,
    RangeTree1DPrioritized,
)
from toy import RangePredicate, ToyPrioritized, make_toy_elements


class ToyCounter(CountingIndex):
    """Exact brute-force counter for the toy problem."""

    def __init__(self, elements):
        self.ops = OpCounter()
        self._elements = list(elements)

    @property
    def n(self):
        return len(self._elements)

    def count(self, predicate):
        self.ops.scanned += len(self._elements)
        return sum(1 for e in self._elements if predicate.matches(e.obj))


def random_predicate(rng, n):
    a, b = sorted((rng.uniform(0, 10 * n), rng.uniform(0, 10 * n)))
    return RangePredicate(a, b)


class TestExactCounting:
    def test_matches_oracle(self):
        elements = make_toy_elements(400, 1)
        index = CountingTopKIndex(elements, ToyPrioritized, ToyCounter)
        rng = random.Random(2)
        for _ in range(40):
            p = random_predicate(rng, 400)
            for k in (1, 3, 17, 90, 399, 1000):
                assert index.query(p, k) == oracle_top_k(elements, p, k)

    def test_k_zero_and_empty(self):
        elements = make_toy_elements(50, 3)
        index = CountingTopKIndex(elements, ToyPrioritized, ToyCounter)
        assert index.query(RangePredicate(0, 10), 0) == []
        empty = CountingTopKIndex([], ToyPrioritized, ToyCounter)
        assert empty.query(RangePredicate(0, 10), 5) == []

    def test_counting_probe_count_logarithmic(self):
        elements = make_toy_elements(1024, 4)
        index = CountingTopKIndex(elements, ToyPrioritized, ToyCounter)
        index.stats.reset()
        index.query(RangePredicate(-1, math.inf), 5)
        assert index.stats.monitored_probes <= math.ceil(math.log2(1024)) + 2

    def test_space_is_log_factor(self):
        """S_top = O((S_rep + S_cnt) log n) — the structure's stated cost."""
        elements = make_toy_elements(512, 5)
        index = CountingTopKIndex(elements, ToyPrioritized, ToyCounter)
        per_level = 512 * 2  # reporter + counter are linear each
        assert index.space_units() <= per_level * (math.log2(512) + 2)

    def test_on_range1d_substrate(self):
        rng = random.Random(6)
        coords = rng.sample(range(4000), 300)
        weights = rng.sample(range(3000), 300)
        elements = [Element(float(c), float(w)) for c, w in zip(coords, weights)]
        index = CountingTopKIndex(elements, RangeTree1DPrioritized, RangeTree1DCounter)
        for _ in range(30):
            a, b = sorted((rng.uniform(0, 4000), rng.uniform(0, 4000)))
            p = RangePredicate1D(a, b)
            for k in (1, 8, 64):
                assert index.query(p, k) == oracle_top_k(elements, p, k)


class TestApproximateCounting:
    @pytest.mark.parametrize("c", [1.5, 2.0, 4.0])
    def test_exact_answers_despite_approx_counts(self, c):
        elements = make_toy_elements(300, 7)

        def counting_factory(subset):
            return InflatedCounter(ToyCounter(subset), c, salt=int(c * 10))

        index = CountingTopKIndex(elements, ToyPrioritized, counting_factory)
        rng = random.Random(8)
        for _ in range(30):
            p = random_predicate(rng, 300)
            for k in (1, 5, 40, 200):
                assert index.query(p, k) == oracle_top_k(elements, p, k)

    def test_inflated_counter_bounds(self):
        elements = make_toy_elements(200, 9)
        exact = ToyCounter(elements)
        inflated = InflatedCounter(ToyCounter(elements), 3.0)
        rng = random.Random(10)
        for _ in range(40):
            p = random_predicate(rng, 200)
            true = exact.count(p)
            approx = inflated.count(p)
            assert true <= approx <= 3 * true

    def test_inflated_counter_validation(self):
        elements = make_toy_elements(10, 11)
        with pytest.raises(ValueError, match=">= 1"):
            InflatedCounter(ToyCounter(elements), 0.5)
        with pytest.raises(ValueError, match="exact"):
            InflatedCounter(InflatedCounter(ToyCounter(elements), 2.0), 2.0)

    def test_zero_count_stays_zero(self):
        elements = make_toy_elements(50, 12)
        inflated = InflatedCounter(ToyCounter(elements), 2.0)
        assert inflated.count(RangePredicate(-10, -5)) == 0


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 150),
    seed=st.integers(0, 1000),
    k=st.integers(1, 200),
    qseed=st.integers(0, 1000),
    c=st.sampled_from([1.0, 2.0]),
)
def test_property_matches_oracle(n, seed, k, qseed, c):
    elements = make_toy_elements(n, seed)

    def counting_factory(subset):
        counter = ToyCounter(subset)
        return counter if c == 1.0 else InflatedCounter(counter, c, salt=qseed)

    index = CountingTopKIndex(elements, ToyPrioritized, counting_factory)
    rng = random.Random(qseed)
    p = random_predicate(rng, n)
    assert index.query(p, k) == oracle_top_k(elements, p, k)
