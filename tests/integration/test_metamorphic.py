"""Metamorphic consistency: the query flavours must agree with each other.

Beyond per-structure oracle checks, the three query types are tied by
identities the paper's framework relies on.  For every registered
problem:

* max reporting == top-1 reporting == head of the sorted stream;
* prioritized(q, tau) == the sorted stream cut at tau;
* top-k == the first k of the sorted stream;
* counting (where available) == |prioritized(q, -inf)|;
* the inverse reduction applied to a forward reduction recovers the
  original prioritized answers.
"""

import math
import itertools
import random

import pytest

from repro.core.extensions import iter_top
from repro.core.inverse import PrioritizedFromTopK
from repro.core.theorem2 import ExpectedTopKIndex


def build(problem, seed=0):
    return ExpectedTopKIndex(
        problem.elements, problem.prioritized_factory, problem.max_factory, seed=seed
    )


class TestQueryFlavourIdentities:
    def test_max_equals_top1_equals_stream_head(self, problem):
        index = build(problem, seed=1)
        max_index = problem.max_factory(problem.elements)
        for p in problem.predicates(8, seed=1):
            top1 = index.query(p, 1)
            stream_head = list(itertools.islice(iter_top(index, p), 1))
            max_answer = max_index.query(p)
            assert top1 == stream_head
            if top1:
                assert max_answer == top1[0]
            else:
                assert max_answer is None

    def test_prioritized_equals_stream_cut_at_tau(self, problem):
        prioritized = problem.prioritized_factory(problem.elements)
        index = build(problem, seed=2)
        rng = random.Random(3)
        for p in problem.predicates(6, seed=2):
            tau = rng.uniform(0, 10 * len(problem.elements))
            via_stream = list(
                itertools.takewhile(lambda e: e.weight >= tau, iter_top(index, p))
            )
            direct = sorted(prioritized.query(p, tau).elements, key=lambda e: -e.weight)
            assert direct == via_stream

    def test_topk_is_stream_prefix(self, problem):
        index = build(problem, seed=4)
        for p in problem.predicates(5, seed=4):
            stream = list(itertools.islice(iter_top(index, p), 12))
            assert index.query(p, 12) == stream

    def test_inverse_of_forward_is_identity(self, problem):
        prioritized = problem.prioritized_factory(problem.elements)
        forward = build(problem, seed=5)
        inverse = PrioritizedFromTopK(forward)
        rng = random.Random(6)
        for p in problem.predicates(5, seed=5):
            tau = rng.uniform(0, 10 * len(problem.elements))
            direct = sorted(prioritized.query(p, tau).elements, key=lambda e: -e.weight)
            recovered = sorted(inverse.query(p, tau).elements, key=lambda e: -e.weight)
            assert direct == recovered

    def test_monotone_in_k(self, problem):
        """query(q, k) is a prefix of query(q, k+1)."""
        index = build(problem, seed=7)
        for p in problem.predicates(5, seed=7):
            previous = []
            for k in (1, 2, 4, 9, 20):
                current = index.query(p, k)
                assert current[: len(previous)] == previous
                previous = current

    def test_monotone_in_tau(self, problem):
        """Raising tau can only shrink the prioritized answer set."""
        prioritized = problem.prioritized_factory(problem.elements)
        weights = sorted(e.weight for e in problem.elements)
        taus = [-math.inf, weights[len(weights) // 4], weights[-len(weights) // 4], math.inf]
        for p in problem.predicates(4, seed=8):
            sizes = [len(prioritized.query(p, tau).elements) for tau in taus]
            assert sizes == sorted(sizes, reverse=True)


class TestCountingConsistency:
    def test_counting_equals_reporting_cardinality(self):
        from repro.bench.workloads import make_problem
        from repro.structures.range1d import RangeTree1DCounter
        from repro.structures.interval_stabbing import IntervalStabbingCounter

        for name, counter_cls in (
            ("range1d", RangeTree1DCounter),
            ("interval_stabbing", IntervalStabbingCounter),
        ):
            problem = make_problem(name, 150, seed=9)
            counter = counter_cls(problem.elements)
            prioritized = problem.prioritized_factory(problem.elements)
            for p in problem.predicates(10, seed=9):
                reported = len(prioritized.query(p, -math.inf).elements)
                assert counter.count(p) == reported
