"""`ServingEngine`: the high-throughput front door of a top-k service.

Three amortisation layers stack in front of any backend index
(canonically a :class:`~repro.replication.cluster.ReplicaSet`; any
:class:`~repro.core.interfaces.TopKIndex` works):

1. an **LSN-versioned result cache**
   (:class:`~repro.serving.cache.ResultCache`) — answers are stamped
   with the backend's ``(commit_epoch, applied LSN)`` read stamp at
   batch-plan time and served again only within the configured
   staleness bound (and never across a failover epoch), so repeated
   hot queries cost one dict probe;
2. **batched execution** (:mod:`repro.serving.batch`) — cache misses
   are grouped by predicate and answered with one traversal per group
   at the group's largest ``k``, smaller members sliced off as
   prefixes;
3. **parallel replica dispatch** — when the backend is a replica set,
   the batch's groups are partitioned round-robin across the replicas
   currently eligible to serve within the staleness bound (primary
   plus caught-up followers, per
   :meth:`~repro.replication.cluster.ReplicaSet.serving_replicas`) and
   each partition runs on a thread-pool worker.  Workers only *read*
   their own machine — all cluster bookkeeping (catch-up, failover,
   death marking) stays on the coordinating thread; a partition that
   faults mid-flight is re-run through the cluster's own fault-aware
   ``query`` path, so crashes during dispatch degrade to the ordinary
   PR-3 failover story instead of racing it.

Admission control is a bounded pending queue: :meth:`submit` beyond
``max_pending`` raises
:class:`~repro.resilience.errors.AdmissionRejected` and counts a load
shed — backpressure is explicit, never an unbounded queue.

Metrics (QPS, per-query latency, hit rate, sheds, parallel batches)
are kept in :class:`ServingStats` and mirrored into the engine's
:class:`~repro.resilience.guard.HealthSummary` after every batch, so
operators read one summary for cache, batching, dispatch, and (when
the backend is a guarded replica set) replication health alike.

Concurrency contract: the engine itself is *not* thread-safe — one
coordinator thread submits and drains; only the read-only partition
work fans out.  Updates go directly to the backend between drains (the
stamp read at batch start is the serving snapshot; anything committed
after it is picked up by the next batch's stamp).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.interfaces import TopKIndex
from repro.core.problem import Element, Predicate
from repro.serving.batch import (
    BatchGroup,
    QueryRequest,
    execute_batch,
    plan_batch,
    predicate_key,
)
from repro.serving.cache import ResultCache
from repro.resilience.errors import (
    AdmissionRejected,
    InvalidConfiguration,
    ReplicaUnavailable,
    ReproError,
    SimulatedCrash,
    TransientIOError,
)
from repro.resilience.guard import HealthSummary


@dataclass
class ServingStats:
    """Everything the engine did, in counters."""

    queries: int = 0             # requests answered (cache hits included)
    batches: int = 0
    traversals: int = 0          # backend queries actually executed
    shared_answers: int = 0      # requests served by another member's traversal
    load_sheds: int = 0
    parallel_batches: int = 0    # batches fanned out across replicas
    dispatch_failovers: int = 0  # partitions re-run through the cluster path
    busy_seconds: float = 0.0    # wall time spent inside drain()
    max_latency_seconds: float = 0.0  # slowest single drain, amortised per query
    _started: float = field(default_factory=time.perf_counter, repr=False)

    @property
    def cache_traversals_saved(self) -> int:
        return self.queries - self.traversals - self.shared_answers

    @property
    def avg_latency_seconds(self) -> float:
        """Mean per-query serving time (batch wall time amortised)."""
        return self.busy_seconds / self.queries if self.queries else 0.0

    @property
    def qps(self) -> float:
        """Requests per second of busy serving time."""
        return self.queries / self.busy_seconds if self.busy_seconds > 0 else 0.0


class ServingEngine(TopKIndex):
    """Batching + caching + parallel dispatch over one backend index.

    Parameters
    ----------
    backend:
        The index being served.  A
        :class:`~repro.replication.cluster.ReplicaSet` unlocks parallel
        dispatch; a :class:`~repro.durability.durable.DurableTopKIndex`
        (or anything with a ``read_stamp()`` / ``applied_lsn``) unlocks
        LSN-stamped caching.  A backend with neither still batches, but
        the cache stays disabled — without an LSN source a cached
        answer could never be invalidated by an update.
    cache_capacity / max_staleness:
        Result-cache size (0 disables) and the LSN staleness budget a
        cached answer may carry, mirroring the replication read modes.
    max_batch:
        Largest batch :meth:`drain` hands to one execution round.
    max_pending:
        Admission bound: :meth:`submit` beyond this sheds.
    pool_size / parallel_threshold:
        Dispatch thread pool width (0 disables) and the minimum number
        of distinct groups before fanning out is worth the overhead.
    read_kwargs:
        Extra keyword arguments for every backend query (e.g.
        ``mode="hedged"`` for a replica-set backend).
    """

    def __init__(
        self,
        backend: TopKIndex,
        cache_capacity: int = 1024,
        max_staleness: int = 0,
        max_batch: int = 64,
        max_pending: int = 4096,
        pool_size: int = 4,
        parallel_threshold: int = 4,
        read_kwargs: Optional[dict] = None,
    ) -> None:
        if max_batch < 1:
            raise InvalidConfiguration(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise InvalidConfiguration(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_staleness < 0:
            raise InvalidConfiguration(
                f"max_staleness must be >= 0, got {max_staleness}"
            )
        self.backend = backend
        self.max_staleness = max_staleness
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.parallel_threshold = max(1, parallel_threshold)
        self.read_kwargs = dict(read_kwargs) if read_kwargs else {}
        self.cache = ResultCache(cache_capacity if self._has_stamp() else 0)
        self.stats = ServingStats()
        self.health = HealthSummary()
        self._pending: List[QueryRequest] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_size = max(0, pool_size)
        from repro.replication.cluster import ReplicaSet

        self._cluster = backend if isinstance(backend, ReplicaSet) else None
        from repro.sharding.sharded import ShardedTopKIndex

        self._sharded = backend if isinstance(backend, ShardedTopKIndex) else None
        if (
            self._cluster is not None or self._sharded is not None
        ) and self._pool_size > 0:
            self._pool = ThreadPoolExecutor(
                max_workers=self._pool_size,
                thread_name_prefix="repro-serving",
            )

    # ------------------------------------------------------------------
    def _has_stamp(self) -> bool:
        return (
            hasattr(self.backend, "read_stamp")
            or hasattr(self.backend, "applied_lsn")
        )

    def _read_stamp(self) -> Tuple[int, int]:
        """The backend's current ``(commit_epoch, applied LSN)``."""
        stamp = getattr(self.backend, "read_stamp", None)
        if stamp is not None:
            return stamp()
        return (0, getattr(self.backend, "applied_lsn", 0))

    def close(self) -> None:
        """Shut the dispatch pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # TopKIndex surface
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.backend.n

    @property
    def pending(self) -> int:
        return len(self._pending)

    def query(self, predicate: Predicate, k: int) -> List[Element]:
        """One request through the full cache + batch path."""
        return self.serve([QueryRequest(predicate, k)])[0]

    def flush_cache(self) -> int:
        """Drop every cached answer (operator lever for suspected staleness).

        The cache's epoch/LSN stamps already make it stale-*safe*; this
        lever is for the residual suspicion the stamps cannot see —
        failed contract spot-checks, a backend whose state digest
        drifted — where serving only freshly-computed answers is the
        conservative play.  Returns the number of entries dropped; the
        mirrored health summary is refreshed so the flush shows up in
        the next telemetry tick.
        """
        dropped = self.cache.invalidate()
        self._mirror_health()
        return dropped

    # ------------------------------------------------------------------
    # Admission / drain
    # ------------------------------------------------------------------
    def submit(self, predicate: Predicate, k: int) -> int:
        """Enqueue one request; returns its position in the next drain.

        Raises :class:`AdmissionRejected` (and counts a shed) when the
        pending queue is at ``max_pending`` — callers retry later or
        route the overflow elsewhere; the engine never queues
        unboundedly.
        """
        if len(self._pending) >= self.max_pending:
            self.stats.load_sheds += 1
            self._mirror_health()
            raise AdmissionRejected(
                f"pending queue full ({self.max_pending}); query shed",
                pending=len(self._pending),
            )
        self._pending.append(QueryRequest(predicate, k))
        return len(self._pending) - 1

    def drain(self) -> List[List[Element]]:
        """Answer everything pending, in submission order."""
        requests, self._pending = self._pending, []
        answers: List[List[Element]] = []
        for start in range(0, len(requests), self.max_batch):
            answers.extend(self._execute(requests[start:start + self.max_batch]))
        return answers

    def serve(self, requests: Sequence) -> List[List[Element]]:
        """Submit-and-drain convenience for an already-collected batch.

        Accepts :class:`QueryRequest` objects or ``(predicate, k)``
        pairs interchangeably.
        """
        for request in requests:
            if isinstance(request, QueryRequest):
                self.submit(request.predicate, request.k)
            else:
                predicate, k = request
                self.submit(predicate, k)
        return self.drain()

    # ------------------------------------------------------------------
    # One batch
    # ------------------------------------------------------------------
    def _execute(self, requests: Sequence[QueryRequest]) -> List[List[Element]]:
        if not requests:
            return []
        began = time.perf_counter()
        self.stats.batches += 1
        self.stats.queries += len(requests)
        epoch, lsn = self._read_stamp()
        answers: List[Optional[List[Element]]] = [None] * len(requests)
        misses: List[Tuple[int, QueryRequest]] = []
        for position, request in enumerate(requests):
            if self.cache.enabled:
                cached = self.cache.get(
                    predicate_key(request.predicate), request.k,
                    epoch, lsn, self.max_staleness,
                )
                if cached is not None:
                    answers[position] = cached
                    continue
            misses.append((position, request))
        if misses:
            plan = plan_batch([request for _, request in misses])
            self.stats.traversals += plan.traversals
            self.stats.shared_answers += plan.shared
            full_by_group = self._dispatch(plan.groups)
            for group, full in zip(plan.groups, full_by_group):
                self.cache.put(group.key, group.max_k, full, epoch, lsn)
                for member_position, k in group.members:
                    answers[misses[member_position][0]] = full[:k]
        elapsed = time.perf_counter() - began
        self.stats.busy_seconds += elapsed
        per_query = elapsed / len(requests)
        if per_query > self.stats.max_latency_seconds:
            self.stats.max_latency_seconds = per_query
        self._mirror_health()
        return answers  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Dispatch: partitioned across replicas, or serial
    # ------------------------------------------------------------------
    def _dispatch(self, groups: List[BatchGroup]) -> List[List[Element]]:
        """One full answer per group, in group order."""
        if self._sharded is not None:
            # A sharded backend owns its own fan-out: groups are
            # partitioned across the pool's workers and each worker
            # runs whole scatter-gathers (per-shard locks serialize
            # machine access), with every shard's probe-memo window
            # open for the batch's duration.
            if self._pool is not None and len(groups) >= self.parallel_threshold:
                self.stats.parallel_batches += 1
            return self._sharded.batch_groups(
                [(g.predicate, g.max_k) for g in groups],
                pool=self._pool,
                parallel_threshold=self.parallel_threshold,
            )
        if (
            self._pool is not None
            and self._cluster is not None
            and len(groups) >= self.parallel_threshold
        ):
            servers = self._cluster.serving_replicas(self.max_staleness)
            if len(servers) > 1:
                return self._dispatch_parallel(groups, servers)
        window = getattr(self.backend, "batched", None)
        if window is not None:
            # A raw reduction backend: share its memoized sub-probes
            # across the whole batch, not just within one group.
            with window():
                return [self._query_backend(g.predicate, g.max_k) for g in groups]
        return [self._query_backend(g.predicate, g.max_k) for g in groups]

    def _query_backend(self, predicate: Predicate, k: int) -> List[Element]:
        return self.backend.query(predicate, k, **self.read_kwargs)

    def _dispatch_parallel(
        self, groups: List[BatchGroup], servers: List
    ) -> List[List[Element]]:
        """Fan the groups out round-robin over the eligible replicas.

        One pool task per replica runs its whole partition sequentially
        — a machine is never touched by two threads, and the
        coordinator touches no replica while workers run.  Workers
        return faults as data; any group a worker could not answer is
        re-run through the cluster's own ``query`` (which owns failover
        and death-marking), so a crash mid-dispatch costs one serial
        retry, never a raced promotion.
        """
        self.stats.parallel_batches += 1
        partitions: List[List[Tuple[int, BatchGroup]]] = [[] for _ in servers]
        for index, group in enumerate(groups):
            partitions[index % len(servers)].append((index, group))
        assert self._pool is not None
        futures = [
            self._pool.submit(self._run_partition, server, partition)
            for server, partition in zip(servers, partitions)
            if partition
        ]
        answers: List[Optional[List[Element]]] = [None] * len(groups)
        retry: List[Tuple[int, BatchGroup]] = []
        for future in futures:
            for index, group, answer in future.result():
                if answer is None:
                    retry.append((index, group))
                else:
                    answers[index] = answer
        for index, group in retry:
            self.stats.dispatch_failovers += 1
            answers[index] = self._query_backend(group.predicate, group.max_k)
        return answers  # type: ignore[return-value]

    @staticmethod
    def _run_partition(server, partition):
        """Worker body: read-only queries against one replica.

        Returns ``(group index, group, answer-or-None)`` triples;
        ``None`` marks a fault (machine crash, transient I/O, replica
        down) left for the coordinator to handle serially.
        """
        out = []
        dead = False
        for index, group in partition:
            if dead:
                out.append((index, group, None))
                continue
            try:
                answer = server.durable.query(group.predicate, group.max_k)
            except SimulatedCrash:
                # The machine died; everything else in this partition
                # fails over too (a crashed plan serves no further I/O).
                dead = True
                out.append((index, group, None))
            except (TransientIOError, ReplicaUnavailable, ReproError):
                out.append((index, group, None))
            else:
                out.append((index, group, answer))
        return out

    # ------------------------------------------------------------------
    def _mirror_health(self) -> None:
        self.health.record_serving(self)
        if self._cluster is not None:
            self.health.record_replication(self._cluster)
        if self._sharded is not None:
            self.health.record_sharding(self._sharded)


def serving_engine(
    elements,
    prioritized_factory,
    max_factory,
    num_replicas: int = 3,
    seed: int = 0,
    **engine_kwargs,
):
    """A :class:`ServingEngine` over a canonical replicated Theorem 2 set."""
    from repro.replication.cluster import replicated_index

    cluster = replicated_index(
        elements, prioritized_factory, max_factory,
        num_replicas=num_replicas, seed=seed,
    )
    return ServingEngine(cluster, **engine_kwargs)


__all__ = ["ServingEngine", "ServingStats", "serving_engine"]
