"""The opposite direction: prioritized reporting from a top-k structure.

Section 1.2 recalls the known reduction [26, 28, 29]: a top-k structure
with space ``S_top`` and query ``Q_top + O(k/B)`` yields a prioritized
structure with ``S_pri = O(S_top)`` and ``Q_pri = O(Q_top)`` — i.e.
prioritized reporting is *no harder* than top-k reporting, which is why
the paper's forward reductions complete an equivalence.

Implementation: doubling search on ``k``.  Query ``(q, tau)`` asks for
top-``B``, top-``2B``, top-``4B``... until the answer either has fewer
than ``k`` elements (so it is all of ``q(D)``) or its lightest element
falls below ``tau`` (so everything at or above ``tau`` is present).
With output size ``t``, the last call dominates: ``O(Q_top + t/B)``
amortized over the geometric ladder.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.interfaces import PrioritizedIndex, PrioritizedResult, OpCounter
from repro.core.interfaces import TopKIndex
from repro.core.problem import Element, Predicate


class PrioritizedFromTopK(PrioritizedIndex):
    """Answers prioritized queries by doubling ``k`` on a top-k structure."""

    def __init__(self, topk: TopKIndex, B: int = 2) -> None:
        self._topk = topk
        self._B = max(1, B)
        self.ops = OpCounter()

    @property
    def n(self) -> int:
        return self._topk.n

    def query(
        self, predicate: Predicate, tau: float, limit: Optional[int] = None
    ) -> PrioritizedResult:
        """All matches with weight >= tau via geometrically growing top-k calls."""
        k = self._B
        while True:
            top: List[Element] = self._topk.query(predicate, k)
            self.ops.node_visits += 1
            if len(top) < k or top[-1].weight < tau:
                elements = [e for e in top if e.weight >= tau]
                if limit is not None and len(elements) > limit:
                    return PrioritizedResult(elements[: limit + 1], truncated=True)
                return PrioritizedResult(elements, truncated=False)
            if limit is not None and len(top) > limit:
                # Already more than the monitor allows; stop early.
                return PrioritizedResult(top[: limit + 1], truncated=True)
            k *= 2
