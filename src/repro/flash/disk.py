"""`FlashDisk`: the `Disk` surface over a flash-translation layer.

Drop-in for :class:`~repro.em.model.Disk` — same ``allocate`` /
``raw_read`` / ``raw_write`` / ``torn_write`` / checksum / ``label``
surface, so the EM machine, :class:`~repro.resilience.faults.FaultPlan`
chaos, durability, replication, and sharding all run unmodified on
either device.  Underneath, every logical block is one flash *page*
managed by a :class:`~repro.flash.ftl.FlashTranslationLayer`: writes
program clean pages (never in place), garbage collection really copies
payloads between physical pages, and erases really destroy them — the
page store is physical, not an accounting fiction.

Two additions over the plain disk:

* :meth:`discard` — the TRIM channel.  A log-structured store calls it
  on dead blocks so GC stops copying garbage; on a plain disk the same
  call just wipes the contents, so callers stay device-agnostic.
* :meth:`bind_stats` — mirrors the device's counters into the
  :class:`~repro.em.model.IOStats` of whatever context currently
  drives it.  The cumulative :class:`~repro.flash.ftl.FlashStats`
  lives on the device itself and survives reboots (a fresh
  :class:`~repro.em.model.EMContext` over the same disk re-binds and
  keeps counting), exactly like a real drive's SMART counters.
"""

from __future__ import annotations

from typing import List, Optional

from repro.em.model import Disk, IOStats, block_checksum
from repro.flash.ftl import FlashConfig, FlashStats, FlashTranslationLayer


class FlashDisk(Disk):
    """A flash device behind the block-disk interface (module docstring)."""

    def __init__(
        self,
        config: Optional[FlashConfig] = None,
        checksums: bool = False,
        label: str = "",
    ) -> None:
        super().__init__(checksums=checksums, label=label)
        self.ftl = FlashTranslationLayer(config)
        self._logical_blocks = 0
        self._stats: Optional[IOStats] = None

    # ------------------------------------------------------------------
    # Stats plumbing
    # ------------------------------------------------------------------
    @property
    def flash_stats(self) -> FlashStats:
        """Cumulative device counters (reboot-surviving)."""
        return self.ftl.stats

    def bind_stats(self, stats: IOStats) -> None:
        """Mirror device counters into ``stats`` from now on.

        :class:`~repro.em.model.EMContext` calls this on construction,
        so whichever machine currently owns the disk sees flash traffic
        in its own I/O accounting; the previous binding (a crashed
        machine's stats) is simply abandoned with that machine.
        """
        self._stats = stats
        self._refresh_gauges()

    def _mirror(self, before: FlashStats) -> None:
        stats = self._stats
        if stats is None:
            return
        after = self.ftl.stats
        stats.flash_host_writes += after.host_writes - before.host_writes
        stats.flash_device_writes += after.device_writes - before.device_writes
        stats.flash_erases += after.erases - before.erases
        stats.flash_gc_copies += after.gc_page_copies - before.gc_page_copies
        stats.flash_gc_stalls += after.gc_stalls - before.gc_stalls
        stats.flash_trims += after.trims - before.trims
        self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        if self._stats is None:
            return
        self._stats.flash_max_wear = self.ftl.max_wear
        self._stats.flash_mean_wear = self.ftl.mean_wear

    def _snap(self) -> FlashStats:
        s = self.ftl.stats
        return FlashStats(
            host_writes=s.host_writes,
            device_writes=s.device_writes,
            erases=s.erases,
            gc_runs=s.gc_runs,
            gc_page_copies=s.gc_page_copies,
            gc_stalls=s.gc_stalls,
            trims=s.trims,
            emergency_growths=s.emergency_growths,
        )

    # ------------------------------------------------------------------
    # Disk surface
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Reserve a fresh logical block id (no page is programmed)."""
        block_id = self._logical_blocks
        self._logical_blocks += 1
        if self._checksums_enabled:
            self._checksums.append(block_checksum([]))
        return block_id

    def raw_read(self, block_id: int) -> List[object]:
        if block_id >= self._logical_blocks:
            raise IndexError(f"block {block_id} was never allocated")
        records = self.ftl.read(block_id)
        return [] if records is None else records

    def raw_write(self, block_id: int, records: List[object]) -> None:
        if block_id >= self._logical_blocks:
            raise IndexError(f"block {block_id} was never allocated")
        before = self._snap()
        try:
            self.ftl.write(block_id, records)
        finally:
            # Mirror even when a scheduled mid-GC crash aborts the
            # program: relocations already performed are real device
            # work the counters must not lose.
            self._mirror(before)
        if self._checksums_enabled:
            self._checksums[block_id] = block_checksum(records)

    def torn_write(self, block_id: int, records: List[object], keep: int) -> None:
        """Crash mid-transfer: only a prefix page-program survives.

        Same contract as the plain disk: the stored checksum is that of
        the *intended* full contents, so the surviving prefix fails
        verification.  On flash the torn program still consumed a clean
        page and invalidated the previous version — exactly what an
        interrupted program does to the medium.
        """
        keep = max(0, min(keep, len(records)))
        before = self._snap()
        try:
            self.ftl.write(block_id, list(records[:keep]))
        finally:
            self._mirror(before)
        if self._checksums_enabled:
            self._checksums[block_id] = block_checksum(list(records))

    def discard(self, block_id: int) -> None:
        """TRIM: declare the block dead so GC reclaims it for free."""
        before = self._snap()
        self.ftl.trim(block_id)
        self._mirror(before)
        if self._checksums_enabled:
            self._checksums[block_id] = block_checksum([])

    @property
    def num_blocks(self) -> int:
        return self._logical_blocks

    def enable_checksums(self) -> None:
        if self._checksums_enabled:
            return
        self._checksums = [
            block_checksum(self.ftl.read(bid) or [])
            for bid in range(self._logical_blocks)
        ]
        self._checksums_enabled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlashDisk(label={self.label!r}, blocks={self._logical_blocks}, "
            f"WA={self.ftl.stats.write_amplification:.2f})"
        )


__all__ = ["FlashDisk"]
