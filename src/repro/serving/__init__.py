"""High-throughput serving: batching, LSN-versioned caching, dispatch.

The serving layer amortises work across the query *stream* — the axis
the per-query reductions cannot optimise:

* :mod:`repro.serving.batch` — group concurrent requests by predicate
  shape and pay one coreset/level traversal per group (top-k answers
  are prefix-closed, so one ``max_k`` traversal serves every member);
* :mod:`repro.serving.cache` — an LRU of answers stamped with the
  backend's ``(commit_epoch, applied LSN)`` read stamp; repeated hot
  queries are O(1) until an update (or a failover promotion) moves the
  stamp past the configured staleness bound;
* :mod:`repro.serving.engine` — :class:`ServingEngine`: admission
  control (bounded queue + load-shed counting), batch execution, and
  parallel dispatch of a batch's groups across the replicas of a
  :class:`~repro.replication.cluster.ReplicaSet` that are eligible to
  serve within the staleness bound.

The engine is itself a :class:`~repro.core.interfaces.TopKIndex`, so
it stacks under a :class:`~repro.resilience.guard.ResilientTopKIndex`
or serves directly; its metrics (QPS, latency, hit rate, sheds) mirror
into a :class:`~repro.resilience.guard.HealthSummary`.
"""

from repro.serving.batch import (
    BatchGroup,
    BatchPlan,
    QueryRequest,
    execute_batch,
    plan_batch,
    predicate_key,
)
from repro.serving.brownout import (
    LEVEL_HEALTHY,
    LEVEL_PARTIAL,
    LEVEL_REDUCED_K,
    LEVEL_STALE,
    BrownoutController,
    BrownoutPolicy,
    BrownoutStats,
)
from repro.serving.cache import CacheStats, ResultCache
from repro.serving.engine import (
    ServedMeta,
    ServingEngine,
    ServingStats,
    serving_engine,
)

__all__ = [
    "QueryRequest",
    "BatchGroup",
    "BatchPlan",
    "plan_batch",
    "execute_batch",
    "predicate_key",
    "ResultCache",
    "CacheStats",
    "BrownoutController",
    "BrownoutPolicy",
    "BrownoutStats",
    "LEVEL_HEALTHY",
    "LEVEL_STALE",
    "LEVEL_REDUCED_K",
    "LEVEL_PARTIAL",
    "ServedMeta",
    "ServingEngine",
    "ServingStats",
    "serving_engine",
]
