"""E9 — Theorem 3 (d>=3 regimes) + Corollary 1: polynomial Q_pri erases
the reduction overhead; circular = lifted halfspace.

Paper remarks (Section 1.3): when ``Q_pri(n) >= (n/B)^eps``, eq. (4)
collapses to ``Q_top = O(Q_pri)`` — "top-k reporting is asymptotically
as difficult as prioritized reporting for hard queries".  Corollary 1
then transfers the halfspace bounds to circular queries by lifting.

Measured: (a) on kd-tree substrates in d = 3, 4 — the Theorem 1
top-k / prioritized time ratio must stay O(1) while both costs grow
polynomially; (b) the lifted circular index agrees with the kd-tree's
native best-first top-k and stays within a constant factor of it.
"""

import time

from repro.bench.runner import fit_loglog_slope
from repro.bench.tables import render_table
from repro.bench.workloads import make_problem
from repro.core.theorem1 import WorstCaseTopKIndex
from repro.core.problem import top_k_of

from helpers import bounded_predicates

SIZES = (1_000, 2_000, 4_000, 8_000)
K = 10
QUERIES = 15


def _sweep_halfspace(d):
    rows, pri_costs, ratio_list = [], [], []
    for n in SIZES:
        problem = make_problem(f"halfspace{d}d", n, seed=9 + d)
        index = WorstCaseTopKIndex(problem.elements, problem.prioritized_factory, seed=12)
        ground = problem.prioritized_factory(problem.elements)
        predicates = bounded_predicates(problem, QUERIES, target=60, seed=n)
        start = time.perf_counter()
        for p in predicates:
            index.query(p, K)
        topk = (time.perf_counter() - start) / QUERIES
        start = time.perf_counter()
        for p in predicates:
            ground.query(p, -float("inf"), limit=4 * K)
        pri = (time.perf_counter() - start) / QUERIES
        ratio = topk / max(pri, 1e-9)
        rows.append([n, round(1e6 * pri, 1), round(1e6 * topk, 1), round(ratio, 2)])
        pri_costs.append(pri)
        ratio_list.append(ratio)
    pri_slope = fit_loglog_slope(list(SIZES), pri_costs)
    return rows, pri_slope, ratio_list


def _circular_agreement():
    problem = make_problem("circular3d", 2_000, seed=13)
    lifted = WorstCaseTopKIndex(problem.elements, problem.prioritized_factory, seed=14)
    rows = []
    start = time.perf_counter()
    predicates = problem.predicates(QUERIES, seed=15)
    for p in predicates:
        expect = top_k_of(problem.elements, p, K)
        assert lifted.query(p, K) == expect
    wall = (time.perf_counter() - start) / QUERIES
    rows.append([2_000, round(1e6 * wall, 1), "exact"])
    return rows


def bench_e9_highdim_circular(benchmark, results_sink):
    for d in (3, 4):
        rows, pri_slope, ratios = _sweep_halfspace(d)
        results_sink(
            render_table(
                f"E9.{d}  Halfspace d={d}: Theorem 1 overhead in the polynomial regime",
                ["n", "Q_pri us", "Q_top us", "Q_top/Q_pri"],
                rows,
                note=(
                    f"Q_pri grows polynomially (slope {pri_slope:.2f}); "
                    "the top-k/prioritized ratio stays O(1) — eq. (4)'s collapse"
                ),
            )
        )
        ratio_slope = fit_loglog_slope(list(SIZES), ratios)
        assert ratio_slope < 0.35, f"d={d}: reduction overhead grows (slope {ratio_slope:.2f})"

    circ_rows = _circular_agreement()
    results_sink(
        render_table(
            "E9c  Corollary 1: lifted circular top-k (d=3) vs brute force",
            ["n", "query us", "answers"],
            circ_rows,
            note="circular queries answered through the lifting map, exactly",
        )
    )

    problem = make_problem("halfspace3d", SIZES[-1], seed=12)
    index = WorstCaseTopKIndex(problem.elements, problem.prioritized_factory, seed=12)
    predicates = bounded_predicates(problem, QUERIES, target=60, seed=4)

    def run_batch():
        for p in predicates:
            index.query(p, K)

    benchmark(run_batch)
