"""Tests for the Theorem 1 (worst-case) reduction."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import oracle_top_k
from repro.core.params import TuningParams
from repro.core.theorem1 import WorstCaseTopKIndex
from toy import RangePredicate, ToyPrioritized, make_toy_elements


def build(n=600, seed=0, **kwargs):
    elements = make_toy_elements(n, seed)
    index = WorstCaseTopKIndex(elements, ToyPrioritized, seed=seed, **kwargs)
    return elements, index


def random_predicate(rng, n):
    a, b = sorted((rng.uniform(0, 10 * n), rng.uniform(0, 10 * n)))
    return RangePredicate(a, b)


class TestCorrectness:
    def test_small_k_exact(self):
        elements, index = build()
        rng = random.Random(1)
        for _ in range(40):
            p = random_predicate(rng, 600)
            for k in (1, 2, index.f):
                assert index.query(p, k) == oracle_top_k(elements, p, k)

    def test_large_k_exact(self):
        elements, index = build()
        rng = random.Random(2)
        for _ in range(40):
            p = random_predicate(rng, 600)
            for k in (index.f + 1, 3 * index.f, 250):
                assert index.query(p, k) == oracle_top_k(elements, p, k)

    def test_k_near_n_uses_scan(self):
        elements, index = build()
        p = RangePredicate(-1, math.inf)
        before = index.stats.full_scans
        result = index.query(p, len(elements) - 1)
        assert index.stats.full_scans == before + 1
        assert result == oracle_top_k(elements, p, len(elements) - 1)

    def test_k_exceeds_n(self):
        elements, index = build(n=100)
        p = RangePredicate(-1, math.inf)
        assert index.query(p, 10**6) == oracle_top_k(elements, p, 10**6)

    def test_k_zero_and_negative(self):
        _, index = build(n=50)
        p = RangePredicate(0, 100)
        assert index.query(p, 0) == []
        assert index.query(p, -3) == []

    def test_empty_dataset(self):
        index = WorstCaseTopKIndex([], ToyPrioritized)
        assert index.query(RangePredicate(0, 1), 5) == []

    def test_empty_result_predicate(self):
        elements, index = build(n=200)
        p = RangePredicate(-100, -50)
        assert index.query(p, 10) == []

    def test_results_sorted_descending(self):
        elements, index = build(n=300)
        result = index.query(RangePredicate(0, math.inf), 50)
        weights = [e.weight for e in result]
        assert weights == sorted(weights, reverse=True)


class TestStructure:
    def test_f_respects_formula(self):
        elements = make_toy_elements(500, 1)
        params = TuningParams(small_k_factor=2.0, lam=1.0)
        index = WorstCaseTopKIndex(elements, ToyPrioritized, params=params, B=4)
        q_pri = math.log2(500)
        assert index.f == min(500, math.ceil(2.0 * 1.0 * 4 * q_pri))

    def test_space_within_constant_of_ground(self):
        """S_top = O(S_pri): the reduction's total space stays bounded."""
        elements, index = build(n=2000)
        assert index.space_units() <= 10 * index.ground_space_units()

    def test_ladder_depth_logarithmic(self):
        elements, index = build(n=2000)
        assert len(index._ladder) <= math.log2(2000) + 1

    def test_paper_faithful_constants_trivialise_small_n(self):
        """With the proof's constants, f exceeds n at bench scale, so
        every query runs through the (always correct) small-k path."""
        elements = make_toy_elements(300, 5)
        index = WorstCaseTopKIndex(
            elements, ToyPrioritized, params=TuningParams.paper_faithful(), B=64
        )
        assert index.f == 300
        rng = random.Random(6)
        for _ in range(15):
            p = random_predicate(rng, 300)
            assert index.query(p, 7) == oracle_top_k(elements, p, 7)


class TestFailureInjection:
    def test_starved_coresets_fall_back_correctly(self):
        """A near-zero sampling rate produces useless core-sets; every
        answer must still be exact via the detected-fallback path."""
        elements = make_toy_elements(500, 7)
        params = TuningParams(coreset_rate_c=1e-6, rank_threshold_c=1e-6)
        index = WorstCaseTopKIndex(elements, ToyPrioritized, params=params, seed=7)
        rng = random.Random(8)
        for _ in range(30):
            p = random_predicate(rng, 500)
            k = rng.choice([1, 5, index.f, index.f + 3, 200])
            assert index.query(p, k) == oracle_top_k(elements, p, k)

    def test_oversampled_coresets_still_correct(self):
        """Saturated rates (p = 1) collapse the hierarchy to one level."""
        elements = make_toy_elements(300, 9)
        params = TuningParams(coreset_rate_c=1e9)
        index = WorstCaseTopKIndex(elements, ToyPrioritized, params=params, seed=9)
        rng = random.Random(10)
        for _ in range(20):
            p = random_predicate(rng, 300)
            assert index.query(p, 4) == oracle_top_k(elements, p, 4)


class TestPreconditions:
    def test_duplicate_weights_rejected_at_construction(self):
        from repro.core.problem import Element
        from repro.resilience.errors import ContractViolation

        tied = [Element(0, 1.0), Element(1, 2.0), Element(2, 1.0)]
        with pytest.raises(ContractViolation, match="distinct-weights"):
            WorstCaseTopKIndex(tied, ToyPrioritized)

    def test_preprocessed_ties_are_accepted(self):
        from repro.core.problem import Element, ensure_distinct_weights

        tied = [Element(i, float(i % 3)) for i in range(9)]
        index = WorstCaseTopKIndex(ensure_distinct_weights(tied), ToyPrioritized)
        assert index.query(RangePredicate(0, 10), 2)


class TestStatsAccounting:
    def test_queries_counted(self):
        elements, index = build(n=200)
        index.stats.reset()
        for _ in range(7):
            index.query(RangePredicate(0, 1000), 3)
        assert index.stats.queries == 7

    def test_monitored_probes_happen(self):
        elements, index = build(n=600)
        index.stats.reset()
        index.query(RangePredicate(0, math.inf), 2)
        assert index.stats.monitored_probes >= 1


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(5, 250),
    seed=st.integers(0, 1000),
    k=st.integers(1, 300),
    qseed=st.integers(0, 1000),
)
def test_property_matches_oracle(n, seed, k, qseed):
    elements = make_toy_elements(n, seed)
    index = WorstCaseTopKIndex(elements, ToyPrioritized, seed=seed)
    rng = random.Random(qseed)
    p = random_predicate(rng, n)
    assert index.query(p, k) == oracle_top_k(elements, p, k)
