"""Tests for online sorted reporting and colored top-k."""

import itertools
import math
import random

import pytest

from oracles import oracle_top_k
from repro.core.extensions import ColoredTopKIndex, iter_top
from repro.core.theorem2 import ExpectedTopKIndex
from toy import RangePredicate, ToyMax, ToyPrioritized, make_toy_elements


def build_index(n=300, seed=0):
    elements = make_toy_elements(n, seed)
    return elements, ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=seed)


def random_predicate(rng, n):
    a, b = sorted((rng.uniform(0, 10 * n), rng.uniform(0, 10 * n)))
    return RangePredicate(a, b)


class TestIterTop:
    def test_full_stream_in_descending_order(self):
        elements, index = build_index(200, 1)
        p = RangePredicate(-1, math.inf)
        stream = list(iter_top(index, p))
        assert stream == oracle_top_k(elements, p, len(elements))

    def test_prefix_matches_direct_query(self):
        elements, index = build_index(250, 2)
        rng = random.Random(3)
        for _ in range(15):
            p = random_predicate(rng, 250)
            prefix = list(itertools.islice(iter_top(index, p), 7))
            assert prefix == oracle_top_k(elements, p, 7)

    def test_lazy_consumption_stops_early(self):
        """Consuming one item must not force large k queries."""
        elements, index = build_index(400, 4)
        index.stats.reset()
        p = RangePredicate(-1, math.inf)
        first = next(iter_top(index, p))
        assert first == oracle_top_k(elements, p, 1)[0]
        assert index.stats.queries <= 2

    def test_empty_match(self):
        _, index = build_index(50, 5)
        assert list(iter_top(index, RangePredicate(-10, -5))) == []

    def test_custom_start_k(self):
        elements, index = build_index(120, 6)
        p = RangePredicate(-1, math.inf)
        stream = list(iter_top(index, p, start_k=16))
        assert stream == oracle_top_k(elements, p, len(elements))

    def test_invalid_start_k(self):
        _, index = build_index(10, 7)
        with pytest.raises(ValueError):
            next(iter_top(index, RangePredicate(0, 1), start_k=0))


class TestColoredTopK:
    def make_colored(self, n, colors, seed):
        from repro.core.problem import Element

        rng = random.Random(seed)
        weights = rng.sample(range(10 * n), n)
        positions = rng.sample(range(10 * n), n)
        elements = [
            Element(positions[i], float(weights[i]), payload=f"c{rng.randrange(colors)}")
            for i in range(n)
        ]
        index = ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=seed)
        return elements, ColoredTopKIndex(index)

    @staticmethod
    def oracle_colored(elements, predicate, k):
        matching = sorted(
            (e for e in elements if predicate.matches(e.obj)),
            key=lambda e: -e.weight,
        )
        seen = {}
        for element in matching:
            if element.payload not in seen:
                seen[element.payload] = element
                if len(seen) == k:
                    break
        return list(seen.values())

    def test_matches_colored_oracle(self):
        elements, colored = self.make_colored(300, colors=12, seed=8)
        rng = random.Random(9)
        for _ in range(25):
            p = random_predicate(rng, 300)
            for k in (1, 3, 8, 20):
                assert colored.query(p, k) == self.oracle_colored(elements, p, k)

    def test_fewer_colors_than_k(self):
        elements, colored = self.make_colored(100, colors=4, seed=10)
        p = RangePredicate(-1, math.inf)
        result = colored.query(p, 50)
        assert len(result) == len({e.payload for e in elements})

    def test_one_element_per_color(self):
        elements, colored = self.make_colored(200, colors=30, seed=11)
        p = RangePredicate(-1, math.inf)
        result = colored.query(p, 10)
        assert len({e.payload for e in result}) == len(result) == 10

    def test_k_zero(self):
        _, colored = self.make_colored(40, colors=5, seed=12)
        assert colored.query(RangePredicate(0, 100), 0) == []

    def test_custom_color_function(self):
        elements, index = build_index(150, 13)
        colored = ColoredTopKIndex(index, color_of=lambda e: int(e.weight) % 7)
        p = RangePredicate(-1, math.inf)
        result = colored.query(p, 7)
        assert len({int(e.weight) % 7 for e in result}) == len(result)

    def test_colors_matching_count(self):
        elements, colored = self.make_colored(120, colors=9, seed=14)
        p = RangePredicate(-1, math.inf)
        assert colored.colors_matching(p) == len({e.payload for e in elements})
