"""Crash-sweep oracle: served answers never violate the staleness bound.

The PR-3 crash-sweep pattern applied to the serving layer: a fixed
mixed workload (inserts interleaved with served batches) runs once with
no faults to produce the oracle, then once per crash point with the
primary machine killed at that durability transfer.  With
``max_staleness=0`` every answer the engine serves — cached, batched,
or dispatched — must be bit-for-bit what a brute-force scan of the
*current* element set returns, crashes, promotions, and epoch bumps
included.
"""

from __future__ import annotations

from repro.core.problem import Element, top_k_of
from repro.core.theorem2 import ExpectedTopKIndex
from repro.replication import ReplicaSet
from repro.serving import ServingEngine
from toy import RangePredicate, ToyMax, ToyPrioritized

from serving_util import make_requests

BASE_N = 32
STEPS = 12
SWEEP_POINTS = 24


def elem(i: int) -> Element:
    return Element(i * 7 % (BASE_N * 10), 1000.0 + i)


def build_fn(elements):
    return ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, B=2, seed=3)


def restore_fn(state):
    return ExpectedTopKIndex.restore(state, ToyPrioritized, ToyMax)


def _run_workload(crash_at=None):
    """Insert/serve interleaving; returns (answers, engine)."""
    base = [elem(i) for i in range(BASE_N)]
    cluster = ReplicaSet(
        base, build_fn, restore_fn, num_replicas=3, B=8
    )
    if crash_at is not None:
        cluster.primary.plan.schedule_crash(at_io=crash_at)
    engine = ServingEngine(cluster, max_staleness=0, parallel_threshold=2)
    live = list(base)
    requests = make_requests(6, seed=23, max_k=7)
    answers = []
    checked = 0
    with engine:
        for step in range(STEPS):
            extra = elem(BASE_N + step)
            cluster.insert(extra)
            live.append(extra)
            batch = requests[step % 3:][:4]
            served = engine.serve(batch)
            # The zero-staleness oracle: every served answer matches a
            # brute-force scan of the elements live right now.
            for request, answer in zip(batch, served):
                assert answer == top_k_of(live, request.predicate, request.k)
                checked += 1
            answers.extend(served)
    assert checked > 0
    return answers, engine


def test_serving_crash_sweep_matches_oracle():
    oracle_answers, _ = _run_workload(None)
    crashed = 0
    epoch_invalidated = 0
    for at_io in range(1, SWEEP_POINTS + 1):
        answers, engine = _run_workload(at_io)
        # Same workload, same answers — failover is invisible to clients.
        assert answers == oracle_answers, (
            f"crash at transfer {at_io}: served answers diverged"
        )
        cluster = engine.backend
        if cluster.stats.primary_crashes:
            crashed += 1
            assert cluster.commit_epoch >= 1
            epoch_invalidated += engine.cache.stats.epoch_invalidations
    # The sweep must actually have exercised failovers to mean anything.
    assert crashed >= SWEEP_POINTS // 3, (
        f"sweep degenerated: only {crashed}/{SWEEP_POINTS} points crashed"
    )


def test_warm_cache_survives_failover_soundly():
    """Answers cached pre-promotion are re-computed, not replayed."""
    base = [elem(i) for i in range(BASE_N)]
    cluster = ReplicaSet(base, build_fn, restore_fn, num_replicas=3, B=8)
    predicate = RangePredicate(0.0, float(BASE_N * 10))
    with ServingEngine(cluster, max_staleness=0) as engine:
        warm = engine.query(predicate, 5)
        assert warm == top_k_of(base, predicate, 5)
        cluster.primary.mark_dead()
        cluster.stats.primary_crashes += 1
        after = engine.query(predicate, 5)
        assert after == top_k_of(base, predicate, 5)
        assert engine.cache.stats.epoch_invalidations == 1
