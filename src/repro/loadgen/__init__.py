"""`repro.loadgen`: open-loop traffic against the serving stack.

The robustness harness the serving layer is graded with.  Everything in
here is deterministic and virtual-time — arrivals come from seeded
open-loop schedules (independent of completions, so queueing collapse
is *visible*, not silently absorbed as in closed-loop generators), and
service time is counted from engine stat deltas rather than slept.

Layers, bottom-up:

* :mod:`~repro.loadgen.histogram` — log-bucketed latency histograms
  (p50/p99/p999, mergeable, no sampling);
* :mod:`~repro.loadgen.arrivals` — rate shapes (constant, diurnal,
  flash crowd) and the :class:`OpenLoopSchedule` that turns them into
  timestamp streams;
* :mod:`~repro.loadgen.workload` — query mixes (uniform, Zipf,
  hot-key storm);
* :mod:`~repro.loadgen.harness` — :class:`LoadGenerator`, the
  virtual-time queueing simulation that drives a real
  :class:`~repro.serving.engine.ServingEngine` (deadline admission,
  retry budgets, oracle spot-checks) and emits a :class:`LoadReport`;
* :mod:`~repro.loadgen.scenarios` — scripted end-to-end scenarios
  (diurnal, flash crowd, hot-key storm, fault overlap) with optional
  operator autoscaling and engine brownout arms.
"""

from repro.loadgen.arrivals import (
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    OpenLoopSchedule,
)
from repro.loadgen.harness import LoadGenerator, LoadReport, ServiceModel
from repro.loadgen.histogram import LatencyHistogram
from repro.loadgen.scenarios import (
    DEFAULT_LOAD_SCENARIOS,
    SHAPE_DIURNAL,
    SHAPE_FAULT_OVERLAP,
    SHAPE_FLASH_CROWD,
    SHAPE_HOT_KEY,
    LoadScenarioResult,
    LoadScenarioRunner,
    LoadScenarioSpec,
)
from repro.loadgen.workload import HotKeyStorm, UniformMix, ZipfMix

__all__ = [
    "ConstantRate",
    "DiurnalRate",
    "FlashCrowdRate",
    "OpenLoopSchedule",
    "LatencyHistogram",
    "LoadGenerator",
    "LoadReport",
    "ServiceModel",
    "UniformMix",
    "ZipfMix",
    "HotKeyStorm",
    "LoadScenarioSpec",
    "LoadScenarioResult",
    "LoadScenarioRunner",
    "DEFAULT_LOAD_SCENARIOS",
    "SHAPE_DIURNAL",
    "SHAPE_FLASH_CROWD",
    "SHAPE_HOT_KEY",
    "SHAPE_FAULT_OVERLAP",
]
