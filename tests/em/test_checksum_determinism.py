"""block_checksum must agree across independent interpreter processes.

Regression: the checksum is CRC32 over ``repr`` of the records, and the
default ``object.__repr__`` embeds the instance's memory address — so
two processes (or two runs) checksumming *identical logical content*
used to disagree, which made every cross-process durability comparison
(recover on machine B what machine A wrote) flag phantom corruption.
``stable_repr`` masks the addresses; these tests pin that contract.
"""

import os
import subprocess
import sys

import repro
from repro.em.model import block_checksum, stable_repr

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

# Records whose reprs are address-bearing but otherwise process-neutral
# (a locally-defined class would drag its __module__ name into the repr,
# which legitimately differs between a test module and a -c script).
_SNIPPET = """\
import sys
sys.path.insert(0, sys.argv[1])
from repro.em.model import block_checksum

records = ["header", 3.25, object(), ("pair", object()), [1, {"k": object()}]]
print(block_checksum(records))
"""


def _subprocess_checksum(hash_seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    out = subprocess.run(
        [sys.executable, "-c", _SNIPPET, SRC_DIR],
        capture_output=True, text=True, env=env, check=True,
    )
    return int(out.stdout.strip())


class TestCrossProcessDeterminism:
    def test_stable_repr_masks_addresses(self):
        masked = stable_repr(object())
        assert "0xADDR" in masked
        assert stable_repr(object()) == masked

    def test_checksum_agrees_with_a_fresh_interpreter(self):
        here = block_checksum(
            ["header", 3.25, object(), ("pair", object()), [1, {"k": object()}]]
        )
        assert _subprocess_checksum(hash_seed=1) == here

    def test_checksum_is_hash_seed_independent(self):
        # Two interpreters with different string-hash randomisation must
        # still agree — the checksum depends on content, not hashing.
        assert _subprocess_checksum(hash_seed=7) == _subprocess_checksum(
            hash_seed=4242
        )
