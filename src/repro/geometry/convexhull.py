"""Convex hulls and convex layers.

The halfplane-reporting structure of Section 5.4 follows the shape of
Chazelle–Guibas–Lee [15]: points are organised into nested *convex
layers*; a query halfplane is answered per layer by locating an extreme
vertex and walking the hull while still inside the halfplane, stopping
at the first layer containing no point of the halfplane (inner layers
then cannot either).
"""

from __future__ import annotations

import bisect
import math
from typing import List, Sequence, Tuple

from repro.geometry.primitives import Point, cross


def convex_hull(points: Sequence[Point]) -> List[Point]:
    """The convex hull in counter-clockwise order (monotone chain).

    Collinear points on the boundary are dropped; for fewer than three
    distinct points the distinct points are returned in sorted order.
    """
    pts = sorted(set(points))
    if len(pts) <= 2:
        return pts
    lower: List[Point] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: List[Point] = []
    for p in reversed(pts):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]


def convex_layers(points: Sequence[Point]) -> List[List[Point]]:
    """Peel the point set into nested convex hulls (outermost first).

    The straightforward peeling runs in ``O(n * layers)``; it is a
    preprocessing cost only (queries never re-peel), matching the
    repository's policy that construction is allowed superlinear time as
    long as query costs honour the paper's bounds.
    """
    remaining = list(set(points))
    layers: List[List[Point]] = []
    while remaining:
        hull = convex_hull(remaining)
        if not hull:
            break
        layers.append(hull)
        hull_set = set(hull)
        remaining = [p for p in remaining if p not in hull_set]
    return layers


class PreparedHull:
    """A CCW convex hull with ``O(log h)`` extreme-vertex queries.

    Walking a convex polygon CCW, the edge direction angles increase
    monotonically and cover exactly one full turn.  The vertex extreme
    in direction ``d`` is the start of the first edge whose direction
    angle reaches ``angle(d) + pi/2`` (the edge along which the dot
    product with ``d`` starts decreasing).  Precomputing the *unrolled*
    (strictly increasing) edge-angle sequence turns that into one
    ``bisect`` — the predecessor-search the paper's Section 5.4 query
    begins with.
    """

    def __init__(self, hull: Sequence[Point]) -> None:
        self.hull: List[Point] = list(hull)
        n = len(self.hull)
        self._angles: List[float] = []
        if n < 3:
            return
        base = None
        previous = None
        for j in range(n):
            p, q = self.hull[j], self.hull[(j + 1) % n]
            theta = math.atan2(q[1] - p[1], q[0] - p[0])
            if base is None:
                base = theta
                previous = theta
            else:
                while theta < previous:
                    theta += 2.0 * math.pi
                previous = theta
            self._angles.append(theta)

    def extreme_index(self, direction: Tuple[float, float]) -> int:
        """Index of the vertex maximising ``direction . vertex``."""
        n = len(self.hull)
        if n == 0:
            raise ValueError("empty hull")
        if n < 3:
            return max(
                range(n),
                key=lambda i: self.hull[i][0] * direction[0] + self.hull[i][1] * direction[1],
            )
        target = math.atan2(direction[1], direction[0]) + math.pi / 2.0
        lo = self._angles[0]
        while target < lo:
            target += 2.0 * math.pi
        while target >= lo + 2.0 * math.pi:
            target -= 2.0 * math.pi
        j = bisect.bisect_left(self._angles, target)
        index = j % n
        # Guard against floating-point ties at the transition: check the
        # two neighbours and keep the true maximum.
        best = index
        best_value = self._value(best, direction)
        for candidate in ((index - 1) % n, (index + 1) % n):
            value = self._value(candidate, direction)
            if value > best_value:
                best, best_value = candidate, value
        return best

    def _value(self, i: int, direction: Tuple[float, float]) -> float:
        p = self.hull[i]
        return p[0] * direction[0] + p[1] * direction[1]

    def __len__(self) -> int:
        return len(self.hull)
