"""Tests for interval stabbing structures against the brute-force oracle."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import oracle_max, oracle_prioritized, sorted_desc
from repro.core.problem import Element
from repro.em.model import EMContext
from repro.geometry.primitives import Interval
from repro.structures.interval_stabbing import (
    DynamicIntervalStabbingMax,
    SegmentTreeIntervalPrioritized,
    StabbingPredicate,
    StaticIntervalStabbingMax,
)


def make_intervals(n, seed=0, universe=100.0, weight_offset=0.0):
    """Random intervals with distinct weights.

    ``weight_offset`` keeps weights distinct across *separately*
    generated batches (the paper's distinct-weights convention).
    """
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    out = []
    for i in range(n):
        a, b = rng.uniform(0, universe), rng.uniform(0, universe)
        out.append(
            Element(
                Interval(min(a, b), max(a, b)),
                float(weights[i]) + weight_offset,
                payload=i,
            )
        )
    return out


def stab_points(elements, rng, count):
    """Query points biased to hit endpoints (the tricky cases)."""
    points = []
    for _ in range(count):
        if rng.random() < 0.4 and elements:
            e = rng.choice(elements)
            points.append(rng.choice([e.obj.lo, e.obj.hi]))
        else:
            points.append(rng.uniform(-10, 110))
    return points


class TestPredicates:
    def test_matches_closed_endpoints(self):
        p = StabbingPredicate(5.0)
        assert p.matches(Interval(5, 9))
        assert p.matches(Interval(1, 5))
        assert not p.matches(Interval(5.001, 9))


class TestPrioritized:
    def test_matches_oracle(self):
        elements = make_intervals(250, 1)
        index = SegmentTreeIntervalPrioritized(elements)
        rng = random.Random(2)
        for x in stab_points(elements, rng, 60):
            tau = rng.uniform(0, 2500)
            got = sorted_desc(index.query(StabbingPredicate(x), tau).elements)
            assert got == oracle_prioritized(elements, StabbingPredicate(x), tau)

    def test_tau_minus_inf_reports_all_matches(self):
        elements = make_intervals(100, 3)
        index = SegmentTreeIntervalPrioritized(elements)
        x = elements[0].obj.lo
        got = index.query(StabbingPredicate(x), -math.inf)
        assert len(got.elements) == sum(1 for e in elements if e.obj.contains(x))

    def test_limit_truncates_with_flag(self):
        elements = make_intervals(200, 4)
        index = SegmentTreeIntervalPrioritized(elements)
        # A point stabbing many intervals:
        x = 50.0
        full = index.query(StabbingPredicate(x), -math.inf)
        if len(full.elements) > 3:
            r = index.query(StabbingPredicate(x), -math.inf, limit=3)
            assert r.truncated and len(r.elements) == 4

    def test_limit_not_reached_not_truncated(self):
        elements = make_intervals(50, 5)
        index = SegmentTreeIntervalPrioritized(elements)
        r = index.query(StabbingPredicate(50.0), -math.inf, limit=10**6)
        assert not r.truncated

    def test_empty_structure(self):
        index = SegmentTreeIntervalPrioritized([])
        r = index.query(StabbingPredicate(1.0), 0.0)
        assert r.elements == []

    def test_point_intervals(self):
        elements = [Element(Interval(5.0, 5.0), 1.0), Element(Interval(5.0, 5.0), 2.0)]
        index = SegmentTreeIntervalPrioritized(elements)
        assert len(index.query(StabbingPredicate(5.0), -math.inf).elements) == 2
        assert index.query(StabbingPredicate(5.1), -math.inf).elements == []

    def test_query_cost_bound_logarithmic(self):
        elements = make_intervals(1024, 6)
        index = SegmentTreeIntervalPrioritized(elements)
        assert index.query_cost_bound() == pytest.approx(10.0)

    def test_space_is_n_log_n_ish(self):
        elements = make_intervals(512, 7)
        index = SegmentTreeIntervalPrioritized(elements)
        assert 512 <= index.space_units() <= 512 * 12


class TestPrioritizedDynamic:
    def test_insert_off_grid_endpoints(self):
        base = make_intervals(100, 8)
        index = SegmentTreeIntervalPrioritized(base)
        extra = make_intervals(60, 9, weight_offset=0.5)  # off-grid, distinct weights
        current = list(base)
        for e in extra:
            index.insert(e)
            current.append(e)
        rng = random.Random(10)
        for x in stab_points(current, rng, 40):
            got = sorted_desc(index.query(StabbingPredicate(x), -math.inf).elements)
            assert got == oracle_prioritized(current, StabbingPredicate(x), -math.inf)

    def test_delete(self):
        elements = make_intervals(150, 11)
        index = SegmentTreeIntervalPrioritized(elements)
        current = list(elements)
        for e in elements[:70]:
            index.delete(e)
            current.remove(e)
        rng = random.Random(12)
        for x in stab_points(current, rng, 30):
            got = sorted_desc(index.query(StabbingPredicate(x), 0.0).elements)
            assert got == oracle_prioritized(current, StabbingPredicate(x), 0.0)

    def test_rebuild_keeps_answers(self):
        base = make_intervals(40, 13)
        index = SegmentTreeIntervalPrioritized(base)
        extra = make_intervals(150, 14, weight_offset=0.5)
        current = list(base)
        for e in extra:  # forces at least one grid rebuild (n > 2 n0)
            index.insert(e)
            current.append(e)
        rng = random.Random(15)
        for x in stab_points(current, rng, 25):
            got = sorted_desc(index.query(StabbingPredicate(x), -math.inf).elements)
            assert got == oracle_prioritized(current, StabbingPredicate(x), -math.inf)

    def test_em_mode_is_static(self):
        ctx = EMContext(B=8, M=32)
        index = SegmentTreeIntervalPrioritized(make_intervals(30, 16), ctx=ctx)
        with pytest.raises(TypeError, match="static"):
            index.insert(Element(Interval(0, 1), 0.5))


class TestEMMode:
    def test_matches_oracle_with_io_counting(self):
        ctx = EMContext(B=8, M=64)
        elements = make_intervals(200, 17)
        index = SegmentTreeIntervalPrioritized(elements, ctx=ctx)
        ctx.stats.reset()
        rng = random.Random(18)
        for x in stab_points(elements, rng, 30):
            tau = rng.uniform(0, 2000)
            got = sorted_desc(index.query(StabbingPredicate(x), tau).elements)
            assert got == oracle_prioritized(elements, StabbingPredicate(x), tau)
        assert ctx.stats.total > 0

    def test_output_term_is_blocked(self):
        """Reporting t elements from one node costs ~t/B extra I/Os."""
        B = 16
        ctx = EMContext(B=B, M=4 * B)
        # 512 intervals all containing x = 50.
        elements = [
            Element(Interval(0.0, 100.0 + i * 1e-9), float(i)) for i in range(512)
        ]
        index = SegmentTreeIntervalPrioritized(elements, ctx=ctx)
        ctx.drop_cache()
        ctx.stats.reset()
        result = index.query(StabbingPredicate(50.0), -math.inf)
        assert len(result.elements) == 512
        # Within a small constant of t/B (canonical lists + path blocks).
        assert ctx.stats.total <= 6 * (512 / B) + 64


class TestStaticMax:
    def test_matches_oracle(self):
        elements = make_intervals(250, 19)
        index = StaticIntervalStabbingMax(elements)
        rng = random.Random(20)
        for x in stab_points(elements, rng, 80):
            assert index.query(StabbingPredicate(x)) == oracle_max(
                elements, StabbingPredicate(x)
            )

    def test_empty(self):
        index = StaticIntervalStabbingMax([])
        assert index.query(StabbingPredicate(0.0)) is None

    def test_query_left_and_right_of_everything(self):
        elements = [Element(Interval(10, 20), 1.0)]
        index = StaticIntervalStabbingMax(elements)
        assert index.query(StabbingPredicate(5.0)) is None
        assert index.query(StabbingPredicate(25.0)) is None
        assert index.query(StabbingPredicate(10.0)) is not None

    def test_em_mode_uses_btree_predecessor(self):
        ctx = EMContext(B=16, M=64)
        elements = make_intervals(300, 21)
        index = StaticIntervalStabbingMax(elements, ctx=ctx)
        rng = random.Random(22)
        ctx.drop_cache()
        ctx.stats.reset()
        for x in stab_points(elements, rng, 20):
            assert index.query(StabbingPredicate(x)) == oracle_max(
                elements, StabbingPredicate(x)
            )
        # O(log_B n) per query: generous constant-factor envelope.
        per_query = ctx.stats.total / 20
        assert per_query <= 4 * math.log(600, 16) + 4

    def test_rebuild_updates(self):
        elements = make_intervals(60, 23)
        index = StaticIntervalStabbingMax(elements[:40])
        for e in elements[40:]:
            index.insert(e)
        index.delete(elements[0])
        current = elements[1:]
        rng = random.Random(24)
        for x in stab_points(current, rng, 20):
            assert index.query(StabbingPredicate(x)) == oracle_max(
                current, StabbingPredicate(x)
            )


class TestDynamicMax:
    def test_matches_oracle_through_updates(self):
        elements = make_intervals(200, 25)
        index = DynamicIntervalStabbingMax(elements[:120])
        current = elements[:120]
        for e in elements[120:]:
            index.insert(e)
            current.append(e)
        for e in elements[:50]:
            index.delete(e)
            current.remove(e)
        rng = random.Random(26)
        for x in stab_points(current, rng, 50):
            assert index.query(StabbingPredicate(x)) == oracle_max(
                current, StabbingPredicate(x)
            )

    def test_empty(self):
        index = DynamicIntervalStabbingMax([])
        assert index.query(StabbingPredicate(0.0)) is None


interval_strategy = st.builds(
    lambda a, b: Interval(min(a, b), max(a, b)),
    st.integers(0, 60),
    st.integers(0, 60),
)


@settings(max_examples=30, deadline=None)
@given(
    objs=st.lists(interval_strategy, min_size=1, max_size=60),
    x=st.integers(-5, 65),
    tau_rank=st.floats(0, 1),
    seed=st.integers(0, 100),
)
def test_property_prioritized_and_max(objs, x, tau_rank, seed):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * len(objs)), len(objs))
    elements = [Element(o, float(w)) for o, w in zip(objs, weights)]
    tau = tau_rank * 10 * len(objs)
    predicate = StabbingPredicate(float(x))
    index = SegmentTreeIntervalPrioritized(elements)
    assert sorted_desc(index.query(predicate, tau).elements) == oracle_prioritized(
        elements, predicate, tau
    )
    static = StaticIntervalStabbingMax(elements)
    assert static.query(predicate) == oracle_max(elements, predicate)
