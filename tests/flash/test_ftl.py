"""FTL unit tests: mapping, GC under pressure, wear, trim, crash hook."""

import pytest

from repro.flash.ftl import (
    GC_COST_BENEFIT,
    GC_GREEDY,
    FlashConfig,
    FlashTranslationLayer,
)
from repro.resilience.errors import InvalidConfiguration, SimulatedCrash


def fixed_ftl(pages=32, ppb=4, op=0.25, policy=GC_GREEDY, reserve=1):
    return FlashTranslationLayer(FlashConfig(
        pages_per_block=ppb, capacity_pages=pages, overprovision=op,
        gc_policy=policy, gc_reserve=reserve,
    ))


def interleaved_fill(ftl, hot, cold):
    """Pack hot and cold logical pages into the *same* erase blocks.

    A round-robin overwrite workload invalidates whole blocks at once
    (victims are fully invalid, GC copies nothing); mixing cold pages
    in forces GC to relocate them — the source of write amplification.
    """
    order = []
    for i in range(max(len(hot), len(cold))):
        if i < len(hot):
            order.append(hot[i])
        if i < len(cold):
            order.append(cold[i])
    for lpn in order:
        ftl.write(lpn, ("init", lpn))


class TestMapping:
    def test_write_read_roundtrip(self):
        ftl = FlashTranslationLayer()
        ftl.write(3, "hello")
        assert ftl.read(3) == "hello"
        assert ftl.read(4) is None
        assert ftl.is_mapped(3) and not ftl.is_mapped(4)

    def test_overwrite_never_in_place(self):
        ftl = FlashTranslationLayer()
        ftl.write(0, "v1")
        first = ftl.physical_page(0)
        ftl.write(0, "v2")
        second = ftl.physical_page(0)
        assert second != first, "flash programmed the same page twice"
        assert ftl.read(0) == "v2"
        assert ftl.valid_pages == 1  # the v1 page is invalid, not valid

    def test_trim_unmaps_and_counts(self):
        ftl = FlashTranslationLayer()
        ftl.write(7, "x")
        assert ftl.trim(7) is True
        assert ftl.read(7) is None
        assert ftl.trim(7) is False  # second trim: nothing mapped
        assert ftl.stats.trims == 1

    def test_invalid_configs_rejected(self):
        with pytest.raises(InvalidConfiguration):
            FlashConfig(pages_per_block=1)
        with pytest.raises(InvalidConfiguration):
            FlashConfig(gc_policy="random")
        with pytest.raises(InvalidConfiguration):
            FlashConfig(overprovision=-0.1)
        with pytest.raises(InvalidConfiguration):
            FlashConfig(capacity_pages=0)


class TestGarbageCollection:
    @pytest.mark.parametrize("policy", [GC_GREEDY, GC_COST_BENEFIT])
    def test_steady_state_overwrites_reclaim_without_growing(self, policy):
        ftl = fixed_ftl(pages=32, ppb=4, op=0.25, policy=policy)
        physical_before = ftl.physical_pages
        live = 24  # 75% of logical capacity stays live
        shadow = {}
        for lpn in range(live):
            shadow[lpn] = f"init-{lpn}"
            ftl.write(lpn, shadow[lpn])
        for round_no in range(50):
            for lpn in range(live):
                shadow[lpn] = f"r{round_no}-{lpn}"
                ftl.write(lpn, shadow[lpn])
        assert ftl.stats.gc_runs > 0, "pressure workload never triggered GC"
        assert ftl.stats.emergency_growths == 0
        assert ftl.physical_pages == physical_before
        assert ftl.valid_pages == live
        for lpn, payload in shadow.items():
            assert ftl.read(lpn) == payload

    def test_partial_gc_frontier_is_not_stranded(self):
        # Regression: GC relocations open their own frontier block; the
        # next host write must keep filling it rather than popping a
        # fresh free block and leaking the partial one (not open, not
        # full, not free, not a victim candidate) until the pool starves.
        ftl = fixed_ftl(pages=48, ppb=8, op=0.15)
        live = 40
        for lpn in range(live):
            ftl.write(lpn, lpn)
        for round_no in range(200):
            lpn = round_no % live
            ftl.write(lpn, (round_no, lpn))
        assert ftl.stats.emergency_growths == 0
        # Accounting closes: every physical page is valid, invalid, or clean.
        assert ftl.valid_pages == live
        assert ftl.free_pages + ftl.valid_pages <= ftl.physical_pages

    def test_write_amplification_accounting(self):
        # Tight pool: at GC time no block is ever fully invalid, so the
        # victim always carries live cold pages that must be relocated.
        ftl = fixed_ftl(pages=24, ppb=4, op=0.25)
        interleaved_fill(ftl, hot=list(range(8)), cold=list(range(8, 24)))
        for i in range(300):
            ftl.write(i % 8, i)
        stats = ftl.stats
        assert stats.host_writes == 324
        assert stats.device_writes == stats.host_writes + stats.gc_page_copies
        assert stats.gc_page_copies > 0, "cold pages were never relocated"
        assert stats.write_amplification == pytest.approx(
            stats.device_writes / stats.host_writes
        )
        assert stats.write_amplification > 1.0

    def test_trim_lowers_gc_copying(self):
        # The no-TRIM pathology: logically-dead but untrimmed pages get
        # relocated forever.  The same workload with trims must copy less.
        def churn(trim):
            ftl = fixed_ftl(pages=24, ppb=4, op=0.25)
            hot, cold = list(range(8)), list(range(8, 24))
            interleaved_fill(ftl, hot, cold)
            if trim:
                for lpn in cold:  # the host deletes its cold data
                    ftl.trim(lpn)
            for i in range(300):
                ftl.write(hot[i % 8], i)
            return ftl.stats.gc_page_copies

        assert churn(trim=True) < churn(trim=False)

    def test_elastic_mode_grows_instead_of_collecting_live_data(self):
        ftl = FlashTranslationLayer(FlashConfig(pages_per_block=4))
        for lpn in range(100):  # all live, nothing reclaimable
            ftl.write(lpn, lpn)
        assert ftl.num_erase_blocks > FlashConfig().initial_blocks
        assert ftl.stats.emergency_growths == 0  # elastic growth is normal
        assert ftl.valid_pages == 100


class TestWear:
    def test_erase_counters_accumulate(self):
        ftl = fixed_ftl(pages=16, ppb=4, op=0.25)
        for i in range(200):
            ftl.write(i % 12, i)
        assert ftl.stats.erases > 0
        assert sum(ftl.wear_counters()) == ftl.stats.erases
        assert ftl.max_wear >= ftl.mean_wear > 0.0

    def test_determinism(self):
        def profile(policy):
            ftl = fixed_ftl(pages=24, ppb=4, policy=policy)
            for i in range(300):
                ftl.write(i % 20, i)
            return (ftl.wear_counters(), ftl.stats.device_writes,
                    ftl.stats.gc_runs)

        for policy in (GC_GREEDY, GC_COST_BENEFIT):
            assert profile(policy) == profile(policy)


class TestGCCrashHook:
    def test_mid_gc_crash_loses_nothing(self):
        ftl = fixed_ftl(pages=24, ppb=4, op=0.25)
        shadow = {lpn: ("init", lpn) for lpn in range(24)}
        interleaved_fill(ftl, hot=list(range(8)), cold=list(range(8, 24)))
        ftl.schedule_gc_crash(after_copies=1)
        died = False
        i = 0
        while not died and i < 400:
            try:
                ftl.write(i % 8, i)
                shadow[i % 8] = i
            except SimulatedCrash:
                died = True
            i += 1
        assert died, "workload never relocated a page under GC"
        # Per-page remap is atomic and the victim is erased only after
        # every copy landed: all surviving mappings read intact payloads.
        for lpn, payload in shadow.items():
            assert ftl.read(lpn) == payload
        # The hook is one-shot: the device keeps working afterwards.
        for i in range(400, 500):
            ftl.write(i % 8, i)
            shadow[i % 8] = i
        for lpn, payload in shadow.items():
            assert ftl.read(lpn) == payload
