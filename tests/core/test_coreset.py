"""Tests for Lemma-2 core-sets and their nested hierarchies."""

import math
import random

from repro.core.coreset import (
    build_coreset,
    build_hierarchy,
    doubling_coresets,
)
from repro.core.params import TuningParams
from repro.core.problem import Element


def make_elements(n, seed=0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    return [Element(i, float(weights[i])) for i in range(n)]


class TestBuildCoreset:
    def test_empty_input(self):
        assert build_coreset([], 10.0, TuningParams(), random.Random(0)) == []

    def test_subset_of_input(self):
        elements = make_elements(500)
        core = build_coreset(elements, 20.0, TuningParams(), random.Random(1))
        assert set(core) <= set(elements)

    def test_expected_size_scales_inversely_with_K(self):
        elements = make_elements(3000)
        rng = random.Random(2)
        params = TuningParams()
        small_K = sum(len(build_coreset(elements, 10.0, params, rng)) for _ in range(10))
        large_K = sum(len(build_coreset(elements, 100.0, params, rng)) for _ in range(10))
        assert small_K > 3 * large_K

    def test_size_tracks_lemma_bound(self):
        """|R| stays within a constant of c * lam * (n/K) ln n."""
        n, K = 4000, 50.0
        params = TuningParams.paper_faithful(lam=2.0)
        elements = make_elements(n)
        sizes = [
            len(build_coreset(elements, K, params, random.Random(s))) for s in range(10)
        ]
        bound = 12 * params.lam * (n / K) * math.log(n)  # the lemma's 12*lam*(n/K)*ln n
        assert sum(sizes) / len(sizes) <= bound


class TestHierarchy:
    def test_levels_shrink(self):
        elements = make_elements(2000)
        h = build_hierarchy(elements, 16.0, TuningParams(), random.Random(3))
        sizes = h.stats.sizes
        assert sizes[0] == 2000
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_bottom_level_small(self):
        elements = make_elements(2000)
        params = TuningParams()
        h = build_hierarchy(elements, 16.0, params, random.Random(4))
        # Either it bottomed out below slack*K, or the rate saturated.
        assert len(h.levels[-1]) <= params.slack * 16 or h.stats.rates[-1] >= 1.0

    def test_level_zero_is_input(self):
        elements = make_elements(100)
        h = build_hierarchy(elements, 8.0, TuningParams(), random.Random(5))
        assert h.levels[0] == elements

    def test_rates_recorded_per_level(self):
        elements = make_elements(1000)
        h = build_hierarchy(elements, 16.0, TuningParams(), random.Random(6))
        assert len(h.stats.rates) == h.depth
        assert h.stats.rates[0] == 1.0

    def test_custom_stop_size(self):
        elements = make_elements(1000)
        h = build_hierarchy(elements, 8.0, TuningParams(), random.Random(7), stop_size=500)
        assert len(h.levels[-1]) <= 500 or h.stats.rates[-1] >= 1.0

    def test_saturated_rate_terminates(self):
        """K ~ 1 saturates p at 1; the build must not loop forever."""
        elements = make_elements(200)
        params = TuningParams(coreset_rate_c=100.0)
        h = build_hierarchy(elements, 1.0, params, random.Random(8))
        assert h.depth >= 1  # completing at all is the assertion


class TestDoublingLadder:
    def test_ladder_levels_cover_n(self):
        elements = make_elements(1000)
        ladder = doubling_coresets(elements, 16, TuningParams(), random.Random(9))
        # h is the largest i with 2^{i-1} f <= n.
        expected_h = int(math.log2(1000 / 16)) + 1
        assert abs(len(ladder) - expected_h) <= 1

    def test_ladder_sizes_decrease_geometrically(self):
        elements = make_elements(4000)
        ladder = doubling_coresets(elements, 8, TuningParams(), random.Random(10))
        sizes = [len(level) for level in ladder]
        assert sizes[0] > sizes[-1]

    def test_f_larger_than_n_gives_empty_ladder(self):
        elements = make_elements(10)
        assert doubling_coresets(elements, 100, TuningParams(), random.Random(11)) == []

    def test_each_level_is_subset_of_input(self):
        elements = make_elements(500)
        for level in doubling_coresets(elements, 8, TuningParams(), random.Random(12)):
            assert set(level) <= set(elements)
