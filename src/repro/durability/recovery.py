"""Recovery: snapshot + WAL replay + invariant audit (+ rebuild fallback).

The recovery sequence after a crash:

1. **Mount** — :meth:`DurableStore.open` reads the dual superblocks and
   adopts the newest valid generation (done by the caller).
2. **Snapshot** — try the manifest's snapshots newest-first; each is
   verified three ways (block seals, record count, stream CRC) by
   :func:`~repro.durability.snapshot.read_snapshot` before being
   trusted.
3. **Replay** — committed WAL groups with LSNs past the snapshot's
   ``last_lsn`` are re-applied *idempotently*: an insert already
   present or a delete already absent is skipped, so running recovery
   twice (or recovering a state that partially contains the log)
   converges to the same index.
4. **Audit** — structural invariants of the recovered index are
   checked (:func:`audit_index`): weight distinctness, size
   consistency, sample-ladder membership for Theorem 2, core-set
   nesting for Theorem 1, and the durable bytes themselves.
5. **Rebuild fallback** — if the audit fails and a ``build_fn`` is
   given, the index is rebuilt from scratch from the recovered element
   set (the durable record of ``D``) and re-audited; otherwise
   recovery raises :class:`~repro.resilience.errors.RecoveryError`.

The returned :class:`RecoveryResult` carries the counters the health
machinery reports (recoveries, records replayed, groups discarded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.problem import Element
from repro.core.theorem1 import WorstCaseTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex
from repro.durability.snapshot import read_snapshot
from repro.durability.store import DurableStore, SnapshotEntry
from repro.durability.wal import OP_DELETE, OP_INSERT, WALRecord, read_committed
from repro.resilience.errors import (
    ContractViolation,
    ElementMembershipError,
    RecoveryError,
    SerializationError,
    SnapshotIntegrityError,
)


@dataclass(frozen=True)
class AuditCheck:
    """One invariant verdict from the post-recovery auditor."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class AuditReport:
    """The full post-recovery invariant audit."""

    checks: List[AuditCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[AuditCheck]:
        return [check for check in self.checks if not check.ok]

    def add(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append(AuditCheck(name, ok, detail))


@dataclass
class RecoveryResult:
    """What recovery did and what it produced."""

    index: object
    elements: List[Element]
    snapshot_id: Optional[int]
    snapshots_tried: int
    last_lsn: int
    wal_records_replayed: int
    wal_groups_discarded: int
    rebuilt: bool
    audit: AuditReport
    # Highest committed LSN observed anywhere (snapshot or log) — a
    # rebooted replica resumes the cluster's LSN sequence from here.
    highest_lsn: int = 0


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def apply_record(index: object, record: WALRecord) -> bool:
    """Apply one log record idempotently; ``True`` if it changed state.

    Prefers an explicit membership check (indexes exposing
    ``__contains__``); otherwise falls back to catching the membership
    errors the mutators raise.  Either way, skipped records consume no
    randomness, so replay never perturbs the index's RNG stream.
    """
    supports_contains = hasattr(type(index), "__contains__")
    if record.op == OP_INSERT:
        if supports_contains and record.element in index:  # type: ignore[operator]
            return False
        try:
            index.insert(record.element)  # type: ignore[attr-defined]
        except (ElementMembershipError, ContractViolation):
            return False
        return True
    if record.op == OP_DELETE:
        if supports_contains and record.element not in index:  # type: ignore[operator]
            return False
        try:
            index.delete(record.element)  # type: ignore[attr-defined]
        except (ElementMembershipError, KeyError):
            return False
        return True
    raise RecoveryError(f"unknown WAL op {record.op!r} at lsn {record.lsn}")


# ----------------------------------------------------------------------
# Audit
# ----------------------------------------------------------------------
def audit_index(
    index: object,
    elements: List[Element],
    store: Optional[DurableStore] = None,
    entry: Optional[SnapshotEntry] = None,
) -> AuditReport:
    """Check the structural invariants of a recovered index.

    ``elements`` is the element set the index is supposed to hold (the
    snapshot's set plus the replayed committed updates).  When a store
    and snapshot entry are given, the durable bytes backing the
    recovery are re-verified too.
    """
    report = AuditReport()
    element_set = set(elements)

    weights = {element.weight for element in elements}
    report.add(
        "weights-distinct",
        len(weights) == len(elements),
        f"{len(elements) - len(weights)} duplicate weights"
        if len(weights) != len(elements)
        else "",
    )

    n = getattr(index, "n", None)
    report.add(
        "size-consistent",
        n == len(elements),
        f"index.n={n}, expected {len(elements)}" if n != len(elements) else "",
    )

    if isinstance(index, ExpectedTopKIndex):
        _audit_expected(index, element_set, report)
    if isinstance(index, WorstCaseTopKIndex):
        _audit_worstcase(index, element_set, report)

    if store is not None and entry is not None:
        try:
            read_snapshot(store, entry)
            report.add("durable-blocks", True)
        except (SnapshotIntegrityError, SerializationError) as exc:
            report.add("durable-blocks", False, str(exc))
    return report


def _audit_expected(
    index: ExpectedTopKIndex, element_set: set, report: AuditReport
) -> None:
    """Theorem 2 invariants: the sample ladder is a coherent view of D."""
    ladder_ok = (
        len(index._samples) == len(index._K) == len(index._max_indexes)
    )
    report.add(
        "t2-ladder-shape",
        ladder_ok,
        "" if ladder_ok else (
            f"samples={len(index._samples)}, K={len(index._K)}, "
            f"max={len(index._max_indexes)}"
        ),
    )
    increasing = all(
        index._K[i] < index._K[i + 1] for i in range(len(index._K) - 1)
    )
    report.add("t2-ladder-increasing", increasing)
    stray = sum(
        1
        for sample in index._samples
        for element in sample
        if element not in element_set
    )
    report.add(
        "t2-samples-subset",
        stray == 0,
        f"{stray} sampled elements outside D" if stray else "",
    )
    membership_ok = True
    for i, sample in enumerate(index._samples):
        for element in sample:
            if i not in index._membership.get(element, []):
                membership_ok = False
    for element, levels in index._membership.items():
        for i in levels:
            if i >= len(index._samples) or element not in index._samples[i]:
                membership_ok = False
    report.add("t2-membership-consistent", membership_ok)
    sizes_ok = all(
        getattr(max_index, "n", len(sample)) == len(sample)
        for sample, max_index in zip(index._samples, index._max_indexes)
    )
    report.add("t2-max-structure-sizes", sizes_ok)


def _audit_worstcase(
    index: WorstCaseTopKIndex, element_set: set, report: AuditReport
) -> None:
    """Theorem 1 invariants: core-set chains really nest inside D."""
    small_levels = index._small.hierarchy.levels
    ground_ok = bool(small_levels) and set(small_levels[0]) == element_set
    report.add(
        "t1-small-ground",
        ground_ok,
        "" if ground_ok else "small chain's level 0 is not D",
    )
    nested = True
    for chain in [index._small.hierarchy] + [s.hierarchy for s in index._ladder]:
        previous: Optional[set] = None
        for level in chain.levels:
            level_set = set(level)
            if previous is not None and not level_set <= previous:
                nested = False
            if not level_set <= element_set:
                nested = False
            previous = level_set
    report.add("t1-coresets-nested", nested)
    sizes_ok = all(
        chain.stats.sizes == [len(level) for level in chain.levels]
        for chain in [index._small.hierarchy]
        + [s.hierarchy for s in index._ladder]
    )
    report.add("t1-recorded-sizes", sizes_ok)


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
def recover_index(
    store: DurableStore,
    restore_fn: Callable[[dict], object],
    build_fn: Optional[Callable[[List[Element]], object]] = None,
) -> RecoveryResult:
    """Run the full recovery sequence over a mounted store.

    ``restore_fn`` maps an index snapshot state (the ``"index"`` entry
    of the durable state dict, whose ``"elements"`` key is the durable
    record of ``D``) to a live index; ``build_fn``, when given, builds
    a fresh index from an element list if the audit rejects the
    restored one.
    """
    snapshot_state: Optional[dict] = None
    used_entry: Optional[SnapshotEntry] = None
    tried = 0
    last_error: Optional[Exception] = None
    for entry in store.snapshots:
        tried += 1
        try:
            snapshot_state = read_snapshot(store, entry)
            used_entry = entry
            break
        except (SnapshotIntegrityError, SerializationError) as exc:
            last_error = exc
    if snapshot_state is None or used_entry is None:
        raise RecoveryError(
            f"no usable snapshot among {len(store.snapshots)} manifest "
            "entries — the durable record of D is gone"
        ) from last_error

    index_state = snapshot_state.get("index")
    if not isinstance(index_state, dict) or "elements" not in index_state:
        raise RecoveryError(
            f"snapshot {used_entry.snapshot_id} carries no index state"
        )
    last_lsn = snapshot_state.get("last_lsn", 0)

    groups, discarded = read_committed(store, store.wal_head)
    index = restore_fn(index_state)
    elements: List[Element] = list(index_state["elements"])
    element_set = set(elements)
    replayed = 0
    highest_lsn = last_lsn
    for group in groups:
        for record in group:
            highest_lsn = max(highest_lsn, record.lsn)
            if record.lsn <= last_lsn:
                continue  # already folded into the snapshot
            apply_record(index, record)
            replayed += 1
            if record.op == OP_INSERT and record.element not in element_set:
                element_set.add(record.element)
                elements.append(record.element)
            elif record.op == OP_DELETE and record.element in element_set:
                element_set.discard(record.element)
                elements.remove(record.element)

    audit = audit_index(index, elements, store=store, entry=used_entry)
    rebuilt = False
    if not audit.ok:
        if build_fn is None:
            raise RecoveryError(
                "post-recovery audit failed with no rebuild fallback: "
                + "; ".join(f"{c.name}: {c.detail}" for c in audit.failures)
            )
        index = build_fn(list(elements))
        rebuilt = True
        audit = audit_index(index, elements)
        if not audit.ok:
            raise RecoveryError(
                "audit failed even after a full rebuild: "
                + "; ".join(f"{c.name}: {c.detail}" for c in audit.failures)
            )

    return RecoveryResult(
        index=index,
        elements=elements,
        snapshot_id=used_entry.snapshot_id,
        snapshots_tried=tried,
        last_lsn=last_lsn,
        wal_records_replayed=replayed,
        wal_groups_discarded=discarded,
        rebuilt=rebuilt,
        audit=audit,
        highest_lsn=highest_lsn,
    )


__all__ = [
    "AuditCheck",
    "AuditReport",
    "RecoveryResult",
    "apply_record",
    "audit_index",
    "recover_index",
]
