"""E13 — the EM model's other parameter: memory M.

The model requires ``M >= 2B`` (Section 1.1); the paper's bounds are
stated per cold query, but the simulator's LRU frame cache makes the
effect of memory visible: with more frames, repeated queries keep the
upper tree levels resident, and the measured I/Os per *warm* query drop
toward just the output term.

Measured: I/Os per query over a batch (shared cache, not reset between
queries) as ``M/B`` grows from the model minimum — a sanity check that
the simulated machine behaves like the model's machine.
"""

from repro.bench.tables import render_table
from repro.core.theorem2 import ExpectedTopKIndex
from repro.em.model import EMContext
from repro.structures.interval_stabbing import (
    SegmentTreeIntervalPrioritized,
    StaticIntervalStabbingMax,
)

from helpers import interval_elements_scaled, stab_queries

N = 4_000
B = 16
FRAMES = (2, 4, 8, 32, 128, 512)
K = 10
QUERIES = 30


def _measure(frames: int) -> float:
    ctx = EMContext(B=B, M=frames * B)
    elements = list(interval_elements_scaled(N, seed=13))
    index = ExpectedTopKIndex(
        elements,
        lambda subset: SegmentTreeIntervalPrioritized(subset, ctx=ctx),
        lambda subset: StaticIntervalStabbingMax(subset, ctx=ctx),
        B=B,
        seed=1,
    )
    predicates = stab_queries(QUERIES, seed=14)
    ctx.drop_cache()
    ctx.stats.reset()
    for p in predicates:
        index.query(p, K)  # warm cache across the batch on purpose
    return ctx.stats.total / QUERIES


def bench_e13_memory_sweep(benchmark, results_sink):
    rows = []
    costs = []
    for frames in FRAMES:
        ios = _measure(frames)
        rows.append([frames, frames * B, round(ios, 1)])
        costs.append(ios)
    results_sink(
        render_table(
            f"E13  Warm-cache I/Os per query vs memory (n={N}, B={B}, k={K})",
            ["frames M/B", "M (words)", "I/Os per query"],
            rows,
            note="more frames keep upper tree levels resident; cost must fall monotonically-ish",
        )
    )
    assert costs[-1] < costs[0], f"memory had no effect: {costs}"
    assert costs[-1] <= min(costs) + 1e-9, f"largest memory not cheapest: {costs}"

    def run_batch():
        _measure(8)

    benchmark(run_batch)
