"""repro — a reproduction of *Efficient Top-k Indexing via General Reductions*.

Rahul & Tao, PODS 2016.  The package provides:

* the paper's two black-box reductions —
  :class:`~repro.core.theorem1.WorstCaseTopKIndex` (prioritized -> top-k,
  worst case) and :class:`~repro.core.theorem2.ExpectedTopKIndex`
  (prioritized + max -> top-k, no degradation in expectation);
* the prior binary-search reduction used as the baseline
  (:class:`~repro.core.baseline.BinarySearchTopKIndex`);
* prioritized/max structures for the paper's five application problems
  (interval stabbing, 2D point enclosure, 3D dominance, halfplane and
  circular range reporting) in :mod:`repro.structures`;
* an external-memory model simulator with exact I/O counting in
  :mod:`repro.em`;
* workload generators and the experiment harness in :mod:`repro.bench`.

Quickstart::

    from repro import Element, ExpectedTopKIndex
    from repro.structures import (
        StabbingPredicate, SegmentTreeIntervalPrioritized,
        DynamicIntervalStabbingMax)
    from repro.geometry import Interval

    data = [Element(Interval(0, 10), 5.0), Element(Interval(3, 7), 9.0)]
    index = ExpectedTopKIndex(
        data, SegmentTreeIntervalPrioritized, DynamicIntervalStabbingMax)
    index.query(StabbingPredicate(5.0), k=1)
"""

from repro.core import (
    BinarySearchTopKIndex,
    CountingIndex,
    CountingTopKIndex,
    DynamicMaxIndex,
    DynamicPrioritizedIndex,
    Element,
    ExpectedTopKIndex,
    MaxIndex,
    Predicate,
    PrioritizedFromTopK,
    PrioritizedIndex,
    PrioritizedResult,
    TopKIndex,
    TuningParams,
    WorstCaseTopKIndex,
    ensure_distinct_weights,
)

__version__ = "1.0.0"

__all__ = [
    "Element",
    "Predicate",
    "ensure_distinct_weights",
    "PrioritizedIndex",
    "PrioritizedResult",
    "MaxIndex",
    "TopKIndex",
    "DynamicPrioritizedIndex",
    "DynamicMaxIndex",
    "TuningParams",
    "WorstCaseTopKIndex",
    "ExpectedTopKIndex",
    "BinarySearchTopKIndex",
    "CountingTopKIndex",
    "CountingIndex",
    "PrioritizedFromTopK",
    "__version__",
]
