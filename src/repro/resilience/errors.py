"""Structured error taxonomy for the resilience subsystem.

The reductions treat prioritized/max structures as black boxes, so the
failures a production deployment must survive come in three flavours:

* **transient environment faults** — a flaky simulated disk read or
  write (:class:`TransientIOError`), or a block whose checksum no
  longer matches (:class:`CorruptBlockError`).  Retrying is both safe
  and likely to succeed.
* **contract violations** — a user-supplied structure (or the caller)
  broke a precondition: duplicate weights, updates against a static
  structure, an answer that fails a runtime spot-check
  (:class:`ContractViolation` and friends).  Retrying is pointless;
  the query must be answered by a different rung of the degradation
  ladder.
* **budget exhaustion** — Theorem 2's round ladder or the guard's
  retry loop ran out of its per-query budget
  (:class:`RetryBudgetExhausted`).

Several classes multiply inherit from the builtin exception previously
raised at the same site (``KeyError``, ``TypeError``, ``ValueError``,
``AssertionError``) so pre-taxonomy callers and tests keep working.
"""

from __future__ import annotations

from typing import Any, Optional


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` package."""


class TransientIOError(ReproError):
    """A retryable I/O fault (injected or environmental).

    Carries the block id when known; the guard's retry loop treats any
    ``TransientIOError`` as safe to retry with backoff.
    """

    def __init__(self, message: str, block_id: Optional[int] = None) -> None:
        super().__init__(message)
        self.block_id = block_id


class CorruptBlockError(TransientIOError):
    """A block transfer whose contents fail checksum verification.

    Raised by :meth:`repro.em.model.EMContext.read_block` when per-block
    checksums are enabled.  The disk copy itself is intact (corruption
    is modelled in-flight), so a re-read is expected to succeed — hence
    the :class:`TransientIOError` parentage.
    """


class ContractViolation(ReproError):
    """A black-box contract or API precondition was broken.

    Not retryable: the same call would fail the same way.  The guard
    responds by degrading to the next rung of its ladder.
    """


class ValidationFailure(ContractViolation, AssertionError):
    """A :class:`~repro.core.validation.ValidationReport` with failures.

    Subclasses ``AssertionError`` for backwards compatibility with
    pre-taxonomy callers of ``raise_if_failed``.
    """


class ElementMembershipError(ContractViolation, KeyError):
    """Insert of a present element, or delete of an absent one.

    Subclasses ``KeyError`` for backwards compatibility.
    """

    def __str__(self) -> str:  # KeyError repr-quotes its argument
        return self.args[0] if self.args else ""


class StaticStructureError(ContractViolation, TypeError):
    """An update was attempted against a static (non-dynamic) structure.

    Subclasses ``TypeError`` for backwards compatibility.
    """


class BlockOverflowError(ContractViolation, ValueError):
    """More than ``B`` records were written to one block.

    Subclasses ``ValueError`` for backwards compatibility.
    """


class InvalidConfiguration(ReproError, ValueError):
    """Nonsensical machine or policy parameters (``B < 2``, ``M < 2B``...).

    Subclasses ``ValueError`` for backwards compatibility.
    """


class SerializationError(ContractViolation):
    """A value that the durability codec cannot encode or decode.

    Raised at snapshot time (an element carries an unregistered object
    type) or at restore time (an unknown tag, a format-version
    mismatch).  Not retryable: the payload itself is at fault.
    """


class SnapshotIntegrityError(ReproError):
    """Durable state on disk failed validation during recovery.

    A torn block (embedded seal missing or mismatched), a broken chain
    pointer, or a whole-snapshot checksum mismatch.  Unlike
    :class:`CorruptBlockError` this is *not* transient — the bytes on
    disk are genuinely damaged — so recovery responds by falling back
    to an older snapshot or a full rebuild, never by retrying.
    """

    def __init__(self, message: str, block_id: Optional[int] = None) -> None:
        super().__init__(message)
        self.block_id = block_id


class RecoveryError(ReproError):
    """Recovery could not produce a usable index.

    No superblock validates, every retained snapshot is damaged, or the
    restored index failed its audit and no rebuild path was provided.
    """


class SimulatedCrash(ReproError):
    """The simulated machine was killed at an injected crash point.

    Raised by a :class:`~repro.resilience.faults.FaultPlan` carrying a
    crash schedule.  Deliberately *not* a :class:`TransientIOError`:
    retry loops must not survive a machine death — the process is gone,
    and only a fresh :class:`~repro.em.model.EMContext` over the same
    :class:`~repro.em.model.Disk` (i.e. a reboot plus recovery) may
    continue.  When the crash interrupted a block write, ``torn_keep``
    records how many records of the in-flight block reached the disk.
    """

    def __init__(
        self,
        message: str,
        block_id: Optional[int] = None,
        torn_keep: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.block_id = block_id
        self.torn_keep = torn_keep


class ReplicaUnavailable(ReproError):
    """No replica can serve the request right now.

    Raised by :class:`~repro.replication.cluster.ReplicaSet` when every
    machine is dead (or too stale for the caller's freshness bound) and
    the rebuild-from-durable-record rung also failed.  The guard treats
    it like any other rung failure: the next rung of the degradation
    ladder (ultimately the host-memory scan) takes over.
    """

    def __init__(self, message: str, replica: Optional[str] = None) -> None:
        super().__init__(message)
        self.replica = replica


class FailoverError(ReproError):
    """Primary promotion failed: no live follower is eligible.

    Raised by :class:`~repro.replication.failover.FailoverController`
    when the primary is dead and no alive follower remains to promote.
    The cluster then degrades to the rebuild-from-durable-record rung.
    """


class WALShippingGap(ReproError):
    """A shipped WAL tail does not splice onto the replica's log.

    The first shipped record's LSN is beyond the follower's
    ``next_lsn`` — records in between were truncated on the source
    (e.g. the follower slept through a checkpoint).  Incremental
    shipping cannot proceed; the follower needs a full snapshot +
    WAL-tail resync (the anti-entropy repair path).
    """

    def __init__(self, message: str, expected_lsn: int = 0, got_lsn: int = 0) -> None:
        super().__init__(message)
        self.expected_lsn = expected_lsn
        self.got_lsn = got_lsn


class AdmissionRejected(ReproError):
    """The serving engine shed this request at admission.

    Backpressure, not failure: the query was *shed* (counted in
    :class:`~repro.serving.engine.ServingStats.load_sheds`), never
    queued unboundedly.  Two admission rules shed — a full pending
    queue (``reason="queue_full"``) and a deadline that the estimated
    queue wait already makes unmeetable (``reason="deadline"``).

    The exception is machine-readable so clients back off
    intelligently instead of parsing the message: ``pending`` /
    ``max_pending`` carry the queue state at rejection time, and
    ``retry_after`` is the engine's estimate (in the caller's clock
    units) of how long until a resubmission could be admitted — the
    hint a retry budget combines with its token bucket.
    """

    REASON_QUEUE_FULL = "queue_full"
    REASON_DEADLINE = "deadline"

    def __init__(
        self,
        message: str,
        pending: int = 0,
        max_pending: int = 0,
        retry_after: float = 0.0,
        reason: str = REASON_QUEUE_FULL,
    ) -> None:
        super().__init__(message)
        self.pending = pending
        self.max_pending = max_pending
        self.retry_after = retry_after
        self.reason = reason


class RetryBudgetExhausted(ReproError):
    """A per-query retry/round budget ran out before an answer was found.

    ``attempts`` records how many rounds or attempts were consumed.
    """

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class DegradedAnswer(ReproError):
    """A correct answer was produced, but not by the primary index.

    Only raised when :class:`~repro.resilience.guard.GuardPolicy` sets
    ``raise_on_degraded``; by default degradation is merely recorded in
    the query's :class:`~repro.resilience.guard.HealthReport`.  The
    exception carries both the (exact) answer and the report.
    """

    def __init__(self, message: str, answer: Any = None, report: Any = None) -> None:
        super().__init__(message)
        self.answer = answer
        self.report = report


class ShardUnavailable(ReplicaUnavailable):
    """A shard of a partitioned index cannot serve and cannot recover.

    Raised by :class:`~repro.sharding.sharded.ShardedTopKIndex` when a
    shard's machine died, recovery from its surviving disk failed (or
    its replica set is wholly down), and the query did not opt into a
    partial answer (``allow_partial``).  Subclasses
    :class:`ReplicaUnavailable` so existing degradation ladders treat a
    lost shard like a lost replica set: the next rung takes over.
    ``shard`` names the machine.
    """

    def __init__(self, message: str, shard: Optional[str] = None) -> None:
        super().__init__(message, replica=shard)
        self.shard = shard


class PartitionedError(ReproError):
    """A message could not cross a network link.

    Deliberately *not* a :class:`TransientIOError`: a transport failure
    says nothing about the health of the machine behind the link, so it
    must never feed the failure detector's per-machine fault streaks —
    condemning a healthy replica because the wire to it is down is how
    real systems turn a partition into an outage.

    ``indeterminate`` is the crucial bit.  ``False`` means the fabric
    *knows* the message never arrived (the link is partitioned — the
    send was refused outright).  ``True`` means the sender timed out:
    the message **may have been delivered** and only the reply lost, so
    a retry must be idempotent (carry the same idempotency key) and an
    acknowledged-side effect may exist even though the caller saw a
    failure — the history checker's ``info`` verdict.
    """

    def __init__(
        self,
        message: str,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        indeterminate: bool = False,
    ) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst
        self.indeterminate = indeterminate


class FencedError(ReproError):
    """A message carried a fencing epoch older than the current one.

    Raised at the *receiver* when a deposed primary (or any stale
    sender) ships records stamped with a dead epoch, and at the *old
    primary itself* when it fails to renew its lease and self-demotes.
    Not retryable at the same epoch: the sender must rejoin the cluster
    (resync, observe the new epoch) before it may write again.
    ``epoch`` is the stale epoch the message carried; ``current`` the
    fencing epoch in force.
    """

    def __init__(self, message: str, epoch: int = 0, current: int = 0) -> None:
        super().__init__(message)
        self.epoch = epoch
        self.current = current


class StaleShardMap(ReproError):
    """A scatter-gather ran against a shard map that changed mid-flight.

    Every scatter-gather pins the router's epoch at planning time and
    re-checks it after the gather; a split/merge between the two bumps
    the epoch, so answers computed against the old map are discarded
    and the query retried against the fresh map — never silently wrong.
    The exception only escapes when the retry budget is exhausted
    (a pathological storm of rebalances).  ``epoch`` is the epoch the
    query planned against; ``current`` the router's epoch at detection.
    """

    def __init__(self, message: str, epoch: int = 0, current: int = 0) -> None:
        super().__init__(message)
        self.epoch = epoch
        self.current = current


__all__ = [
    "ReproError",
    "TransientIOError",
    "CorruptBlockError",
    "ContractViolation",
    "ValidationFailure",
    "ElementMembershipError",
    "StaticStructureError",
    "BlockOverflowError",
    "InvalidConfiguration",
    "SerializationError",
    "SnapshotIntegrityError",
    "RecoveryError",
    "SimulatedCrash",
    "ReplicaUnavailable",
    "ShardUnavailable",
    "StaleShardMap",
    "PartitionedError",
    "FencedError",
    "FailoverError",
    "WALShippingGap",
    "AdmissionRejected",
    "RetryBudgetExhausted",
    "DegradedAnswer",
]
